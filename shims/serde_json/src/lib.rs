//! JSON rendering and parsing for the std-only serde shim.
//!
//! Works over the shim's [`Value`] tree: `to_string`/`to_vec` render any
//! `Serialize` type, `from_str`/`from_slice` parse text and reconstruct any
//! `Deserialize` type.

pub use serde::{Error, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt::Write as _;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ----------------------------------------------------------------- rendering

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip float formatting; force a decimal
                // point so the number parses back as a float.
                let text = format!("{f}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (ix, item) in items.iter().enumerate() {
                if ix > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (ix, (key, item)) in fields.iter().enumerate() {
                if ix > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.keyword("null", Value::Null),
            b't' => self.keyword("true", Value::Bool(true)),
            b'f' => self.keyword("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid JSON at offset {}",
                self.pos
            )))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // writer; map lone surrogates to the replacement
                            // character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let text = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("invalid JSON at offset {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::custom("integer out of range"));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}
