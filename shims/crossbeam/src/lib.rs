//! Minimal stand-in for the `crossbeam` crate: the `channel` module only,
//! backed by `std::sync::mpsc` (sufficient for the workspace's duplex
//! control-plane transport).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel. Clonable (receivers share the
    /// queue), matching crossbeam's multi-consumer semantics.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = self.inner.lock().expect("channel mutex poisoned");
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receives, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().expect("channel mutex poisoned");
            guard.recv().map_err(|_| RecvError)
        }
    }

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}
