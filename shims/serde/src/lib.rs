//! Minimal stand-in for the `serde` crate, implemented with the standard
//! library only (the build environment has no crates.io access).
//!
//! Instead of serde's visitor architecture, this shim uses a concrete
//! [`Value`] tree as the interchange representation: `Serialize` converts a
//! type *to* a `Value`, `Deserialize` reconstructs it *from* one. The
//! companion `serde_json` shim renders `Value` to JSON text and parses it
//! back. The derive macros (`serde_derive`) generate the same externally
//! tagged representation real serde uses, so JSON produced by this shim looks
//! like ordinary serde JSON for the shapes this workspace uses.

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::Value;

use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the interchange [`Value`] tree.
pub trait Serialize {
    /// The `Value` representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the interchange [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a `Value`, or explains why it cannot.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module as used by this workspace.
pub mod de {
    pub use crate::Error;

    /// Owned deserialization marker — in this shim every `Deserialize` type
    /// is already owned, so this is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// The `serde::ser` module (error type only; kept for path compatibility).
pub mod ser {
    pub use crate::Error;
}

/// Support function used by derive-generated code: fetches `key` from an
/// object's fields, treating a missing key as `Null` (so `Option` fields
/// tolerate omission).
pub fn __from_field<T: Deserialize>(fields: &[(String, Value)], key: &str) -> Result<T, Error> {
    let value = fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(value).map_err(|e| Error::custom(format!("field `{key}`: {e}")))
}
