//! `Serialize`/`Deserialize` implementations for the standard-library types
//! this workspace serializes.

use crate::{Deserialize, Error, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------- primitives

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, found {}", value.kind())))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = value.as_u64().ok_or_else(|| {
            Error::custom(format!("expected unsigned integer, found {}", value.kind()))
        })?;
        usize::try_from(raw).map_err(|_| Error::custom("integer out of range"))
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, found {}", value.kind())))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = i64::from_value(value)?;
        isize::try_from(raw).map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", value.kind())))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected single-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", value.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ------------------------------------------------------------------ wrappers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(Into::into)
    }
}

impl<'a, T: Serialize + Clone> Serialize for std::borrow::Cow<'a, T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}
impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for std::borrow::Cow<'static, str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(std::borrow::Cow::Owned)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------- sequences

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let found = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {found}")))
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident . $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, found {}", value.kind())))?;
                let expected = [$($ix,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$ix])?,)+))
            }
        }
    )*};
}
tuple_impl! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --------------------------------------------------------------------- maps
//
// Maps serialize as arrays of `[key, value]` pairs so non-string keys (MAC
// addresses, five-tuples, ids) survive the trip without a string codec.

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_entries<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    value
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected map array, found {}", value.kind())))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            Ok((K::from_value(&items[0])?, V::from_value(&items[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_entries::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into_iter().collect())
    }
}

// ------------------------------------------------------------ network types

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for Ipv4Addr {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected IPv4 string, found {}", value.kind())))?
            .parse()
            .map_err(|e| Error::custom(format!("invalid IPv4 address: {e}")))
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = value
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("expected duration object"))?;
        let nanos = value.get("nanos").and_then(Value::as_u64).unwrap_or(0);
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}
