//! The interchange tree shared by the `serde` and `serde_json` shims.

use crate::{Deserialize, Error, Serialize};
use std::ops::Index;

/// A JSON-shaped value tree.
///
/// Integers keep their signedness (`Int`/`UInt`) so `u64` round-trips exactly
/// instead of being squeezed through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any parsed integer with a leading `-`).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating point numbers.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks a field up by name in an `Object`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        self.as_array().and_then(|a| a.get(ix)).unwrap_or(&NULL)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
