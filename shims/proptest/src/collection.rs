//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// A permissible length range for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.min as u64, self.size.max_exclusive as u64 - 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
