//! Minimal stand-in for the `proptest` crate.
//!
//! Provides the API shape this workspace's property tests use — the
//! `proptest!` macro, `Strategy` with `prop_map`, `any::<T>()`, integer/float
//! range strategies, `proptest::collection::vec`, string-regex strategies and
//! the `prop_assert*` macros — over a deterministic splitmix64 generator.
//! There is no shrinking: a failing case panics with its case number, and
//! cases are reproducible because the per-case seed depends only on the test
//! name and case index.

pub mod collection;
mod regex;
mod rng;
mod strategy;

pub use rng::TestRng;
pub use strategy::{any, Any, Just, Map, Strategy};

use std::fmt;

/// Error produced by a failing `prop_assert*` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Test-runner configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The common imports, proptest-style.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each `fn` runs `config.cases` times with inputs
/// drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__err) = __outcome {
                        panic!("case {} of {}: {}", __case, stringify!($name), __err);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}
