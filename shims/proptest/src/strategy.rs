//! The `Strategy` trait and the built-in strategies.

use crate::rng::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Generates random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ----------------------------------------------------------------- arbitrary

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` — `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Creates the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text debuggable.
        char::from(rng.range_u64(0x20, 0x7e) as u8)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// -------------------------------------------------------------------- ranges

macro_rules! range_strategies_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, <$t>::MAX as u64) as $t
            }
        }
    )*};
}
range_strategies_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategies_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i64(self.start as i64, self.end as i64 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i64(*self.start() as i64, *self.end() as i64) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i64(self.start as i64, <$t>::MAX as i64) as $t
            }
        }
    )*};
}
range_strategies_int!(i8, i16, i32, i64);

macro_rules! range_strategies_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = rng.unit_f64() as $t;
                self.start() + (self.end() - self.start()) * unit
            }
        }
    )*};
}
range_strategies_float!(f32, f64);

// -------------------------------------------------------- string strategies

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate_matching(self, rng)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// --------------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($name:ident . $ix:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
