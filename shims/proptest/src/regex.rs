//! Generation of strings matching a small regex subset.
//!
//! Supported syntax — everything the workspace's string strategies use:
//! literal characters, `\`-escapes, character classes `[a-z0-9_.-]` (ranges
//! and literals, no negation), groups `(...)` with `|` alternation, and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (starred/plussed nodes repeat at
//! most 8 times).

use crate::rng::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Char(char),
    /// Inclusive character ranges; single characters are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternation of concatenations.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> Result<String, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let alternatives = parse_alternation(&chars, &mut pos)?;
    if pos != chars.len() {
        return Err(format!("unexpected `{}` at offset {pos}", chars[pos]));
    }
    let mut out = String::new();
    emit(&Node::Group(alternatives), rng, &mut out);
    Ok(out)
}

fn parse_alternation(chars: &[char], pos: &mut usize) -> Result<Vec<Vec<Node>>, String> {
    let mut alternatives = vec![Vec::new()];
    while *pos < chars.len() {
        match chars[*pos] {
            ')' => break,
            '|' => {
                *pos += 1;
                alternatives.push(Vec::new());
            }
            _ => {
                let node = parse_one(chars, pos)?;
                let node = parse_quantifier(chars, pos, node)?;
                alternatives.last_mut().unwrap().push(node);
            }
        }
    }
    Ok(alternatives)
}

fn parse_one(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            if chars.get(*pos) == Some(&'^') {
                return Err("negated classes are not supported".to_string());
            }
            while *pos < chars.len() && chars[*pos] != ']' {
                let mut c = chars[*pos];
                if c == '\\' {
                    *pos += 1;
                    c = *chars.get(*pos).ok_or("truncated escape in class")?;
                }
                *pos += 1;
                if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|c| *c != ']') {
                    let hi = chars[*pos + 1];
                    *pos += 2;
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
            if chars.get(*pos) != Some(&']') {
                return Err("unterminated character class".to_string());
            }
            *pos += 1;
            Ok(Node::Class(ranges))
        }
        '(' => {
            *pos += 1;
            let alternatives = parse_alternation(chars, pos)?;
            if chars.get(*pos) != Some(&')') {
                return Err("unterminated group".to_string());
            }
            *pos += 1;
            Ok(Node::Group(alternatives))
        }
        '\\' => {
            *pos += 1;
            let c = *chars.get(*pos).ok_or("truncated escape")?;
            *pos += 1;
            Ok(Node::Char(c))
        }
        '.' => {
            *pos += 1;
            Ok(Node::Class(vec![('a', 'z'), ('0', '9')]))
        }
        c => {
            *pos += 1;
            Ok(Node::Char(c))
        }
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, node: Node) -> Result<Node, String> {
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut min = String::new();
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min.parse().map_err(|_| "bad repeat count")?;
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                let mut max = String::new();
                while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                    max.push(chars[*pos]);
                    *pos += 1;
                }
                max.parse().map_err(|_| "bad repeat bound")?
            } else {
                min
            };
            if chars.get(*pos) != Some(&'}') {
                return Err("unterminated quantifier".to_string());
            }
            *pos += 1;
            Ok(Node::Repeat(Box::new(node), min, max))
        }
        Some('?') => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(node), 0, 1))
        }
        Some('*') => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(node), 0, 8))
        }
        Some('+') => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(node), 1, 8))
        }
        _ => Ok(node),
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Char(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32) + 1)
                .sum();
            let mut pick = rng.range_u64(0, total - 1);
            for (lo, hi) in ranges {
                let span = u64::from(*hi as u32 - *lo as u32) + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                    return;
                }
                pick -= span;
            }
        }
        Node::Group(alternatives) => {
            let pick = rng.range_u64(0, alternatives.len() as u64 - 1) as usize;
            for child in &alternatives[pick] {
                emit(child, rng, out);
            }
        }
        Node::Repeat(child, min, max) => {
            let count = rng.range_u64(u64::from(*min), u64::from(*max));
            for _ in 0..count {
                emit(child, rng, out);
            }
        }
    }
}
