//! Deterministic generator: splitmix64 seeded from (test name, case index).

/// The per-case random generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream depends only on the test name and case index,
    /// so failures reproduce across runs and machines.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi]` (inclusive on both ends).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Modulo bias is irrelevant for test-input generation.
        lo + self.next_u64() % (span + 1)
    }

    /// Uniform draw from `[lo, hi]` for signed integers.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi as i128 - lo as i128) as u128;
        if span == u64::MAX as u128 {
            return self.next_u64() as i64;
        }
        (lo as i128 + (u128::from(self.next_u64()) % (span + 1)) as i128) as i64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
