//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the std-only serde
//! shim.
//!
//! The macros parse the item declaration directly from the proc-macro token
//! stream (no `syn`/`quote` available offline) and generate implementations
//! of the shim's `to_value`/`from_value` traits using serde's externally
//! tagged enum representation. Supported shapes — all this workspace uses:
//! plain (non-generic) structs with named fields, tuple structs, unit
//! structs, and enums with unit/tuple/struct variants. The only honored
//! attribute is `#[serde(transparent)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        transparent: bool,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut ix = 0;
    let transparent = skip_attributes(&tokens, &mut ix)?;
    skip_visibility(&tokens, &mut ix);

    let keyword = expect_ident(&tokens, &mut ix)?;
    let name = expect_ident(&tokens, &mut ix)?;
    if matches!(tokens.get(ix), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(ix) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct {
                name,
                transparent,
                fields,
            })
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(ix) else {
                return Err("expected enum body".to_string());
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Skips leading attributes, returning whether `#[serde(transparent)]` was
/// among them. Unknown `#[serde(...)]` options are rejected loudly so silent
/// misbehavior is impossible.
fn skip_attributes(tokens: &[TokenTree], ix: &mut usize) -> Result<bool, String> {
    let mut transparent = false;
    while matches!(tokens.get(*ix), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *ix += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*ix) else {
            return Err("malformed attribute".to_string());
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
            if let Some(TokenTree::Group(options)) = inner.get(1) {
                for opt in options.stream() {
                    match opt {
                        TokenTree::Ident(i) if i.to_string() == "transparent" => {
                            transparent = true;
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' => {}
                        other => {
                            return Err(format!(
                                "serde shim derive does not support attribute option `{other}`"
                            ));
                        }
                    }
                }
            }
        }
        *ix += 1;
    }
    Ok(transparent)
}

fn skip_visibility(tokens: &[TokenTree], ix: &mut usize) {
    if matches!(tokens.get(*ix), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *ix += 1;
        if matches!(
            tokens.get(*ix),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *ix += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], ix: &mut usize) -> Result<String, String> {
    match tokens.get(*ix) {
        Some(TokenTree::Ident(i)) => {
            *ix += 1;
            Ok(i.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Collects the field names of a named-field body, skipping attributes,
/// visibility and the type tokens (commas inside `<...>` do not split).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut ix = 0;
    let mut fields = Vec::new();
    while ix < tokens.len() {
        skip_attributes(&tokens, &mut ix)?;
        if ix >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut ix);
        fields.push(expect_ident(&tokens, &mut ix)?);
        match tokens.get(ix) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => ix += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(ix) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        ix += 1;
                        break;
                    }
                    _ => {}
                }
            }
            ix += 1;
        }
    }
    Ok(fields)
}

/// Counts tuple-struct / tuple-variant fields (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut ix = 0;
    let mut variants = Vec::new();
    while ix < tokens.len() {
        skip_attributes(&tokens, &mut ix)?;
        if ix >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut ix)?;
        let fields = match tokens.get(ix) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ix += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ix += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while let Some(token) = tokens.get(ix) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                ix += 1;
                break;
            }
            ix += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// --------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            transparent,
            fields,
        } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) if *transparent && names.len() == 1 => {
                    format!("::serde::Serialize::to_value(&self.{})", names[0])
                }
                Fields::Named(names) => {
                    let pushes: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{tag} => ::serde::Value::String({tag:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{tag}(__f0) => ::serde::Value::Object(vec![({tag:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{tag}({}) => ::serde::Value::Object(vec![({tag:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                                .collect();
                            format!(
                                "{name}::{tag} {{ {} }} => ::serde::Value::Object(vec![({tag:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                                fields.join(", "),
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            transparent,
            fields,
        } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(names) if *transparent && names.len() == 1 => format!(
                    "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(value)? }})",
                    names[0]
                ),
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::__from_field(__fields, {f:?})?"))
                        .collect();
                    format!(
                        "let __fields = value.as_object().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected object for {name}, found {{}}\", value.kind())))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = value.as_array().filter(|a| a.len() == {n}).ok_or_else(|| \
                             ::serde::Error::custom(\"expected {n}-element array for {name}\"))?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let tag = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{tag:?} => ::std::result::Result::Ok({name}::{tag}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{tag:?} => {{\n\
                                     let __items = __inner.as_array().filter(|a| a.len() == {n}).ok_or_else(|| \
                                         ::serde::Error::custom(\"expected {n}-element array for {name}::{tag}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{tag}({}))\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::__from_field(__fields, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{tag:?} => {{\n\
                                     let __fields = __inner.as_object().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected object for {name}::{tag}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{tag} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::std::option::Option::Some(__tag) = value.as_str() {{\n\
                             return match __tag {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                             }};\n\
                         }}\n\
                         let __fields = value.as_object().filter(|f| f.len() == 1).ok_or_else(|| \
                             ::serde::Error::custom(format!(\"expected {name} variant, found {{}}\", value.kind())))?;\n\
                         let (__tag, __inner) = (&__fields[0].0, &__fields[0].1);\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
