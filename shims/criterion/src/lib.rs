//! Minimal stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `criterion_group!`,
//! `criterion_main!`) with a straightforward measure-and-print harness:
//! each benchmark is warmed up, then timed over a fixed measurement window,
//! and the per-iteration latency plus derived throughput is printed in a
//! criterion-like one-line format. No statistics beyond mean-of-window are
//! computed — the point is comparable relative numbers, offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            std::hint::black_box(routine());
            iterations += 1;
            // Check the clock in batches to keep timer overhead negligible.
            if iterations.is_multiple_of(64) && start.elapsed() >= self.elapsed {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the sample count (accepted for API compatibility; the shim's
    /// single measurement window makes it a no-op).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark that needs no input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: R,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut routine);
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| routine(b, input));
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        // Warm-up pass.
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: self.warm_up,
        };
        routine(&mut bencher);
        // Measurement pass.
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: self.measurement,
        };
        routine(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib = bytes as f64 / per_iter * 1e9 / (1024.0 * 1024.0 * 1024.0);
                format!("  thrpt: {gib:10.3} GiB/s")
            }
            Some(Throughput::Elements(elements)) => {
                let meps = elements as f64 / per_iter * 1e9 / 1e6;
                format!("  thrpt: {meps:10.3} Melem/s")
            }
            None => String::new(),
        };
        println!("{full:<48} time: {:>12}{rate}", format_ns(per_iter));
    }
}

fn format_ns(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:8.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:8.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:8.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:8.2} s ", nanos / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (a single positional benchmark-name
    /// filter is honored; harness flags are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside a group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: R,
    ) -> &mut Self {
        let name = id.to_string();
        let mut group = BenchmarkGroup {
            criterion: self,
            name,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        };
        group.run("", &mut routine);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
