//! Minimal stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply clonable, immutable byte buffer (an `Arc<[u8]>`
//! under the hood — cloning a parsed packet never copies the frame).
//! [`BytesMut`] is a growable buffer with an efficient consumed-prefix
//! cursor so `advance`/`split_to` are O(1) amortized, as the real crate
//! promises. Only the API surface this workspace uses is provided.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::ops::{Deref, Index};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for byte in self.iter() {
            for escaped in std::ascii::escape_default(*byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Serialize for Bytes {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl Deserialize for Bytes {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Vec::<u8>::from_value(value).map(Bytes::from)
    }
}

/// A growable byte buffer with a consumed-prefix cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before this offset have been consumed by `advance`/`split_to`.
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.data.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let split = BytesMut {
            data: self.data[self.start..self.start + at].to_vec(),
            start: 0,
        };
        self.start += at;
        self.compact_if_large();
        split
    }

    /// Copies the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes::from(self.data)
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }

    fn compact_if_large(&mut self) {
        // Reclaim the consumed prefix once it dominates the buffer so a
        // long-lived receive buffer cannot grow without bound.
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.compact();
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        BytesMut {
            data: slice.to_vec(),
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl<I: std::slice::SliceIndex<[u8]>> Index<I> for BytesMut {
    type Output = I::Output;
    fn index(&self, index: I) -> &I::Output {
        &self.as_slice()[index]
    }
}

impl<I: std::slice::SliceIndex<[u8]>> std::ops::IndexMut<I> for BytesMut {
    fn index_mut(&mut self, index: I) -> &mut I::Output {
        let start = self.start;
        &mut self.data[start..][index]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for byte in self.as_slice() {
            for escaped in std::ascii::escape_default(*byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read-cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    /// Discards the first `count` unconsumed bytes.
    fn advance(&mut self, count: usize);
    /// Number of unconsumed bytes.
    fn remaining(&self) -> usize;
}

impl Buf for BytesMut {
    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance out of bounds");
        self.start += count;
        self.compact_if_large();
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

/// Write-cursor operations (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}
