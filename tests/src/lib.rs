//! This crate only hosts the workspace-level integration tests (see the
//! `tests/*.rs` files next to this library); it exports nothing.
