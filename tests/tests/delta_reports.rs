//! Property-based tests over the delta-report protocol: for any sequence of
//! counter churn, agent crashes (forced resyncs) and stale-frame replays, the
//! receiver's reconstruction must stay byte-for-byte identical to the full
//! report the sender would have produced — and stale/reordered frames must be
//! rejected without corrupting the held state.

use gnf_telemetry::{DeltaEncoder, ReportDelta, ReportReassembler, StationReport};
use gnf_types::{AgentId, ClientId, HostClass, ResourceSpec, ResourceUsage, SimTime, StationId};
use proptest::prelude::*;

/// One step of the generated timeline: a mutation applied to the station's
/// live state, plus optional fault/adversary behaviour riding the step.
#[derive(Debug, Clone)]
struct Step {
    /// Which section to churn (see `apply_churn`); high values are no-ops,
    /// so idle reporting intervals (empty deltas) are exercised too.
    op: u8,
    /// Magnitude of the churn.
    value: u16,
    /// The agent crashes before this step's report: all soft state is lost
    /// and the encoder must force a keyframe resync.
    crash: bool,
    /// After delivering this step's frame, replay an earlier frame out of
    /// order: the reassembler must reject it and keep its reconstruction.
    replay_stale: bool,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>()).prop_map(|(op, value, c, r)| Step {
        op,
        value,
        crash: c < 24,        // ~9% of steps crash
        replay_stale: r < 48, // ~19% of steps replay a stale frame
    })
}

fn base_report() -> StationReport {
    StationReport {
        station: StationId::new(7),
        agent: AgentId::new(7),
        produced_at: SimTime::ZERO,
        host_class: HostClass::EdgeServer,
        capacity: HostClass::EdgeServer.capacity(),
        usage: ResourceUsage::default(),
        connected_clients: Vec::new(),
        running_nfs: 0,
        cached_images: 0,
        flow_cache: Default::default(),
        megaflow: Default::default(),
        batches: Default::default(),
        shards: Vec::new(),
        chaos: Default::default(),
    }
}

/// Mutates one section of the live report, the way Agent counter paths do.
fn apply_churn(report: &mut StationReport, op: u8, value: u16) {
    let v = value as u64;
    match op % 9 {
        0 => {
            report.flow_cache.stats.hits += v;
            report.flow_cache.stats.misses += v / 3;
            report.flow_cache.entries = (value % 512) as usize;
        }
        1 => {
            report.megaflow.stats.hits += v;
            report.megaflow.entries = (value % 128) as usize;
            report.megaflow.masks = (value % 7) as usize;
        }
        2 => {
            report.connected_clients = (0..(value % 6) as u64).map(ClientId::new).collect();
        }
        3 => {
            report.running_nfs = (value % 9) as usize;
            report.cached_images = (value % 5) as usize;
        }
        4 => {
            report.usage.cpu_fraction = f64::from(value % 1000) / 1000.0;
            report.usage.memory_mb = v % 4096;
            report.usage.rx_bps = f64::from(value) * 8_000.0;
        }
        5 => {
            report.batches.batches += v / 7 + 1;
            report.batches.packets += v;
            report.batches.max_batch = report.batches.max_batch.max(v % 300);
            report.batches.size_buckets[(value % 9) as usize] += 1;
        }
        6 => {
            report.chaos.steering_churn_rules += v;
            report.chaos.cache_invalidations += v % 3;
        }
        7 => {
            // A capacity re-probe after maintenance: identity churn.
            report.capacity = ResourceSpec {
                cpu_millicores: 1000 * u64::from(value % 8 + 1),
                memory_mb: 1024 + v % 8192,
                disk_mb: 10_000,
            };
        }
        _ => {} // idle interval: nothing changed since the last report
    }
}

/// A crash wipes the station's volatile counters (what the Agent rebuilds
/// from scratch after a restart).
fn apply_crash(report: &mut StationReport) {
    report.flow_cache = Default::default();
    report.megaflow = Default::default();
    report.batches = Default::default();
    report.connected_clients.clear();
    report.running_nfs = 0;
    report.usage = ResourceUsage::default();
    report.chaos.crashes += 1;
    report.chaos.generation += 1;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// apply(delta_stream) == full report, byte for byte, at every instant —
    /// under random churn, mid-stream crashes and stale-frame replays.
    #[test]
    fn delta_stream_reconstructs_full_reports_byte_for_byte(
        steps in proptest::collection::vec(arb_step(), 1..40),
        keyframe_interval in 0u64..6,
    ) {
        let mut live = base_report();
        let mut encoder = DeltaEncoder::new(keyframe_interval);
        let mut reassembler = ReportReassembler::new();
        let mut history: Vec<ReportDelta> = Vec::new();
        let mut crashes = 0u64;

        for (ix, step) in steps.iter().enumerate() {
            if step.crash {
                apply_crash(&mut live);
                encoder.force_resync();
                crashes += 1;
            }
            apply_churn(&mut live, step.op, step.value);
            live.produced_at = SimTime::from_millis(250 * (ix as u64 + 1));

            let frame = encoder.encode(&live);
            if step.crash {
                prop_assert!(frame.is_keyframe(), "a crash must force a keyframe");
                prop_assert!(frame.forced);
            }
            let rebuilt = reassembler
                .apply(&frame)
                .expect("an in-order frame always applies");
            prop_assert_eq!(
                serde_json::to_string(&rebuilt).unwrap(),
                serde_json::to_string(&live).unwrap()
            );
            history.push(frame);

            if step.replay_stale && history.len() > 1 {
                // Replay an earlier frame (reordered delivery / duplicate):
                // the reassembler must reject it...
                let stale = history[(step.value as usize) % (history.len() - 1)].clone();
                prop_assert!(
                    reassembler.apply(&stale).is_err(),
                    "a stale or duplicate frame must be rejected"
                );
                // ...and the held reconstruction must be unharmed: the next
                // no-change frame still matches the live report exactly.
                let check = encoder.encode(&live);
                let rebuilt = reassembler.apply(&check).expect("in-order frame");
                prop_assert_eq!(
                    serde_json::to_string(&rebuilt).unwrap(),
                    serde_json::to_string(&live).unwrap()
                );
                history.push(check);
            }
        }

        let stats = reassembler.stats();
        // Every crash forces a keyframe; a crash before the very first frame
        // merges with the stream-opening keyframe, so >= max, not a sum.
        prop_assert!(stats.keyframes >= crashes.max(1));
        prop_assert_eq!(stats.forced_resyncs, crashes);
    }
}
