//! Integration tests driving the Manager and Agents together through the real
//! control-plane API (messages crossing the `gnf-api` codec), without the
//! emulator in between — the "distributed system on a workbench" view.

use gnf_agent::{Agent, AgentConfig};
use gnf_api::codec;
use gnf_api::messages::{AgentToManager, ManagerToAgent};
use gnf_container::ImageRepository;
use gnf_manager::{Manager, ManagerAction};
use gnf_nf::testing::sample_specs;
use gnf_switch::TrafficSelector;
use gnf_types::{AgentId, ChainId, ClientId, GnfConfig, HostClass, MacAddr, SimTime, StationId};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A tiny harness that shuttles messages between one Manager and N Agents,
/// round-tripping every message through the wire codec so the protocol is the
/// one actually exercised.
struct Bench {
    manager: Manager,
    agents: BTreeMap<StationId, Agent>,
    now: SimTime,
}

impl Bench {
    fn new(stations: u64) -> Self {
        let mut bench = Bench {
            manager: Manager::new(GnfConfig::default()),
            agents: BTreeMap::new(),
            now: SimTime::ZERO,
        };
        for ix in 0..stations {
            let station = StationId::new(ix);
            let (agent, register) = Agent::new(
                AgentConfig {
                    agent: AgentId::new(ix),
                    station,
                    host_class: HostClass::EdgeServer,
                },
                ImageRepository::with_standard_images(),
            );
            bench.agents.insert(station, agent);
            bench.deliver_to_manager(station, register);
        }
        bench
    }

    fn advance(&mut self, secs: u64) {
        self.now += gnf_types::SimDuration::from_secs(secs);
    }

    /// Encodes, decodes and delivers an Agent message, then recursively
    /// delivers whatever the Manager sends back.
    fn deliver_to_manager(&mut self, station: StationId, msg: AgentToManager) {
        let bytes = codec::encode_to_vec(&msg).expect("encodable");
        let mut buf = bytes::BytesMut::from(&bytes[..]);
        let decoded: AgentToManager = codec::decode(&mut buf).unwrap().unwrap();
        let actions = self.manager.handle_agent_msg(station, decoded, self.now);
        self.dispatch(actions);
    }

    fn dispatch(&mut self, actions: Vec<ManagerAction>) {
        for action in actions {
            let ManagerAction::Send { station, message } = action;
            let bytes = codec::encode_to_vec(&message).expect("encodable");
            let mut buf = bytes::BytesMut::from(&bytes[..]);
            let decoded: ManagerToAgent = codec::decode(&mut buf).unwrap().unwrap();
            let replies = {
                let agent = self.agents.get_mut(&station).expect("agent exists");
                agent.handle_manager_msg(decoded, self.now)
            };
            for reply in replies {
                self.deliver_to_manager(station, reply);
            }
        }
    }

    fn connect_client(&mut self, station: u64, client: u64) {
        let station = StationId::new(station);
        let msgs = {
            let agent = self.agents.get_mut(&station).unwrap();
            agent.client_associated(
                ClientId::new(client),
                MacAddr::derived(1, client as u32),
                Ipv4Addr::new(172, 16, 0, client as u8 + 2),
            )
        };
        for msg in msgs {
            self.deliver_to_manager(station, msg);
        }
    }

    fn roam_client(&mut self, from: u64, to: u64, client: u64) {
        let from = StationId::new(from);
        let msgs = {
            let agent = self.agents.get_mut(&from).unwrap();
            agent.client_disassociated(ClientId::new(client))
        };
        for msg in msgs {
            self.deliver_to_manager(from, msg);
        }
        self.connect_client(to, client);
    }

    fn report_all(&mut self) {
        let stations: Vec<StationId> = self.agents.keys().copied().collect();
        for station in stations {
            let report = self.agents.get_mut(&station).unwrap().make_report(self.now);
            self.deliver_to_manager(station, report);
        }
    }
}

#[test]
fn registration_attachment_and_reporting_end_to_end() {
    let mut bench = Bench::new(3);
    assert_eq!(bench.manager.stations().count(), 3);

    bench.advance(1);
    bench.connect_client(0, 0);
    bench.connect_client(1, 1);

    // Attach a full chain to client 0 — the Manager deploys it on station 0
    // and the Agent's confirmation flows back synchronously.
    bench.advance(1);
    let (chain, actions) = bench
        .manager
        .attach_chain(
            ClientId::new(0),
            sample_specs(),
            TrafficSelector::all(),
            bench.now,
        )
        .unwrap();
    bench.dispatch(actions);

    let attachment = bench.manager.attachment(chain).unwrap();
    assert!(attachment.active);
    assert_eq!(attachment.station, Some(StationId::new(0)));
    assert!(attachment.last_deploy_latency.unwrap().as_millis() > 0);

    let agent0 = bench.agents.get(&StationId::new(0)).unwrap();
    assert_eq!(agent0.running_nfs(), sample_specs().len());
    assert_eq!(agent0.switch().steering().len(), 1);

    // Periodic reports populate the monitoring store.
    bench.advance(2);
    bench.report_all();
    assert_eq!(bench.manager.monitoring().online_count(), 3);
    assert_eq!(
        bench.manager.monitoring().running_nfs(),
        sample_specs().len()
    );
}

#[test]
fn roaming_migrates_chains_and_preserves_nf_state_end_to_end() {
    let mut bench = Bench::new(2);
    bench.advance(1);
    bench.connect_client(0, 0);

    bench.advance(1);
    let (chain, actions) = bench
        .manager
        .attach_chain(
            ClientId::new(0),
            vec![sample_specs()[0].clone()], // stateful firewall
            TrafficSelector::all(),
            bench.now,
        )
        .unwrap();
    bench.dispatch(actions);

    // Let the firewall on station 0 track a connection, so there is real NF
    // state to migrate.
    {
        let agent0 = bench.agents.get_mut(&StationId::new(0)).unwrap();
        let flow = gnf_packet::builder::tcp_syn(
            MacAddr::derived(1, 0),
            MacAddr::derived(0xA0, 0),
            Ipv4Addr::new(172, 16, 0, 2),
            Ipv4Addr::new(203, 0, 113, 9),
            41_000,
            443,
        );
        agent0.process_upstream_packet(flow, bench.now);
    }

    // The client roams: the whole checkpoint → deploy → remove pipeline runs
    // synchronously through the harness.
    bench.advance(10);
    bench.roam_client(0, 1, 0);

    let migration = bench.manager.migrations().next().expect("one migration");
    assert!(migration.is_finished());
    assert!(
        migration.state_bytes > 0,
        "firewall conntrack state travelled"
    );
    assert_eq!(migration.from, StationId::new(0));
    assert_eq!(migration.to, StationId::new(1));

    // The chain is gone from station 0 and alive (with state) on station 1.
    assert_eq!(bench.agents[&StationId::new(0)].running_nfs(), 0);
    let agent1 = bench.agents.get(&StationId::new(1)).unwrap();
    assert_eq!(agent1.running_nfs(), 1);
    let deployed = agent1
        .chain(chain)
        .expect("chain present on the new station");
    assert!(deployed.chain.state_size_bytes() > 0);

    // And the manager's view agrees.
    let attachment = bench.manager.attachment(chain).unwrap();
    assert_eq!(attachment.station, Some(StationId::new(1)));
    assert!(attachment.active);
}

#[test]
fn repeated_roaming_keeps_exactly_one_chain_instance() {
    let mut bench = Bench::new(3);
    bench.advance(1);
    bench.connect_client(0, 0);
    bench.advance(1);
    let (chain, actions) = bench
        .manager
        .attach_chain(
            ClientId::new(0),
            vec![sample_specs()[1].clone()],
            TrafficSelector::http_only(),
            bench.now,
        )
        .unwrap();
    bench.dispatch(actions);

    // Bounce the client across stations 0 → 1 → 2 → 0.
    for (from, to) in [(0, 1), (1, 2), (2, 0)] {
        bench.advance(30);
        bench.roam_client(from, to, 0);
    }

    assert_eq!(bench.manager.stats().migrations_started, 3);
    assert_eq!(bench.manager.stats().migrations_completed, 3);
    // Exactly one station hosts the chain at the end.
    let hosting: Vec<u64> = bench
        .agents
        .iter()
        .filter(|(_, agent)| agent.chain(chain).is_some())
        .map(|(station, _)| station.raw())
        .collect();
    assert_eq!(hosting, vec![0]);
    // Every intermediate station released its containers.
    assert_eq!(bench.agents[&StationId::new(1)].running_nfs(), 0);
    assert_eq!(bench.agents[&StationId::new(2)].running_nfs(), 0);
}

#[test]
fn nf_alerts_reach_the_manager_notification_log() {
    let mut bench = Bench::new(1);
    bench.advance(1);
    bench.connect_client(0, 0);
    bench.advance(1);
    let (_, actions) = bench
        .manager
        .attach_chain(
            ClientId::new(0),
            vec![sample_specs()[1].clone()], // HTTP filter blocking ads/tracker
            TrafficSelector::all(),
            bench.now,
        )
        .unwrap();
    bench.dispatch(actions);

    // The client requests a blocked URL.
    let notifications = {
        let agent = bench.agents.get_mut(&StationId::new(0)).unwrap();
        let blocked = gnf_packet::builder::http_get(
            MacAddr::derived(1, 0),
            MacAddr::derived(0xA0, 0),
            Ipv4Addr::new(172, 16, 0, 2),
            Ipv4Addr::new(203, 0, 113, 9),
            41_001,
            "ads.example",
            "/banner",
        );
        agent.process_upstream_packet(blocked, bench.now);
        agent.drain_nf_notifications(bench.now)
    };
    assert_eq!(notifications.len(), 1);
    for msg in notifications {
        bench.deliver_to_manager(StationId::new(0), msg);
    }
    assert!(bench
        .manager
        .notifications()
        .entries()
        .any(|n| n.category == "blocked-url"));
}

#[test]
fn detach_tears_down_the_remote_chain() {
    let mut bench = Bench::new(1);
    bench.advance(1);
    bench.connect_client(0, 0);
    bench.advance(1);
    let (chain, actions) = bench
        .manager
        .attach_chain(
            ClientId::new(0),
            vec![sample_specs()[0].clone(), sample_specs()[3].clone()],
            TrafficSelector::all(),
            bench.now,
        )
        .unwrap();
    bench.dispatch(actions);
    assert_eq!(bench.agents[&StationId::new(0)].running_nfs(), 2);

    bench.advance(5);
    let actions = bench.manager.detach_chain(chain, bench.now).unwrap();
    bench.dispatch(actions);
    assert_eq!(bench.agents[&StationId::new(0)].running_nfs(), 0);
    assert!(bench.manager.attachment(chain).is_none());
    assert_eq!(
        bench.agents[&StationId::new(0)].switch().steering().len(),
        0,
        "steering rules removed with the chain"
    );
    let _ = ChainId::new(0);
}
