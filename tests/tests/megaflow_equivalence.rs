//! Property tests for the megaflow (wildcard) cache layer: a pipeline with
//! wildcarding enabled must be **verdict/state/stats-equivalent** to the
//! uncached pipeline — same packet outcomes in the same order, same NF
//! statistics and exported state, same switch port counters — across random
//! rule sets, traffic mixes and worker counts. Only the cache-level
//! telemetry (how lookups distribute between the exact and wildcard levels)
//! may differ, which is exactly what the wildcard layer exists to change.

use gnf_agent::{Agent, AgentConfig, PacketOutcome};
use gnf_api::messages::ManagerToAgent;
use gnf_container::ImageRepository;
use gnf_core::{Emulator, Scenario};
use gnf_edge::TrafficProfile;
use gnf_nf::firewall::{
    CidrV4, FirewallConfig, FirewallRule, PortMatch, ProtocolMatch, RuleAction,
};
use gnf_nf::http_filter::HttpFilterConfig;
use gnf_nf::{NfConfig, NfSpec};
use gnf_packet::{builder, Packet, PacketBatch};
use gnf_switch::{SoftwareSwitch, SteeringRule, SwitchDecision, TrafficSelector};
use gnf_types::{
    AgentId, ChainId, ClientId, GnfConfig, HostClass, MacAddr, SimDuration, SimTime, StationId,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Ports the traffic and the rule generator draw from, so rules regularly
/// match, miss, and partition the traffic.
const PORT_POOL: [u16; 6] = [22, 53, 80, 443, 8080, 40_000];

fn arb_rule() -> impl Strategy<Value = FirewallRule> {
    (
        0usize..3,               // action
        0usize..4,               // protocol constraint
        0usize..4,               // dst-port constraint kind
        0usize..PORT_POOL.len(), // port drawn from the shared pool
        0usize..3,               // dst CIDR kind
        0u8..4,                  // CIDR octet
    )
        .prop_map(|(action, proto, port_kind, port_ix, cidr_kind, octet)| {
            let action = [RuleAction::Accept, RuleAction::Drop, RuleAction::Reject][action];
            let port = PORT_POOL[port_ix];
            FirewallRule {
                protocol: [
                    ProtocolMatch::Any,
                    ProtocolMatch::Tcp,
                    ProtocolMatch::Udp,
                    ProtocolMatch::Icmp,
                ][proto],
                dst_port: match port_kind {
                    0 => PortMatch::Any,
                    1 => PortMatch::Exact(port),
                    2 => PortMatch::Range(port, port.saturating_add(100)),
                    _ => PortMatch::Range(1, 1023),
                },
                dst: match cidr_kind {
                    0 => CidrV4::any(),
                    1 => CidrV4::new(Ipv4Addr::new(203, 0, octet, 0), 24),
                    _ => CidrV4::new(Ipv4Addr::new(203, 0, 0, 0), 16),
                },
                action,
                ..FirewallRule::any(format!("r-{proto}-{port_kind}-{port}"), action)
            }
        })
}

fn arb_firewall_config() -> impl Strategy<Value = FirewallConfig> {
    (
        proptest::collection::vec(arb_rule(), 0..8),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(rules, drop_default, track)| FirewallConfig {
            rules,
            default_action: if drop_default {
                RuleAction::Drop
            } else {
                RuleAction::Accept
            },
            track_connections: track,
            conntrack_idle_timeout_secs: 60,
        })
}

fn client_mac() -> MacAddr {
    MacAddr::derived(1, 0)
}

fn client_ip() -> Ipv4Addr {
    Ipv4Addr::new(172, 16, 0, 2)
}

/// A traffic mix of repeated flows, brand-new flows of a shared shape (the
/// wildcard workload) and the occasional HTTP request / non-IP frame.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u16..600,               // ephemeral source-port offset (new flows)
        0usize..PORT_POOL.len(), // destination port
        0u8..4,                  // destination subnet octet
        0usize..5,               // kind
    )
        .prop_map(|(sport, dport_ix, octet, kind)| {
            let server = MacAddr::derived(0xA0, 0);
            let dst = Ipv4Addr::new(203, 0, octet, 10);
            let sport = 40_000 + sport;
            let dport = PORT_POOL[dport_ix];
            match kind {
                0 | 1 => builder::tcp_syn(client_mac(), server, client_ip(), dst, sport, dport),
                2 => builder::udp_packet(
                    client_mac(),
                    server,
                    client_ip(),
                    dst,
                    sport,
                    dport,
                    b"payload",
                ),
                3 => builder::http_get(
                    client_mac(),
                    server,
                    client_ip(),
                    dst,
                    sport,
                    "prop.example",
                    "/x",
                ),
                _ => builder::arp_request(client_mac(), client_ip(), Ipv4Addr::new(172, 16, 0, 1)),
            }
        })
}

/// A scan-shaped traffic mix: TCP SYNs sweeping a small privileged-port set
/// with churning source ports (every packet a brand-new flow), plus benign
/// high-port flows — the dropped-flow churn wildcard drop entries exist for.
/// The small destination pool makes masked drop patterns repeat quickly.
fn arb_attack_packet() -> impl Strategy<Value = Packet> {
    (
        0u16..400,     // ephemeral source-port offset (fresh flow each)
        0usize..4,     // scanned destination port
        any::<bool>(), // scan vs benign
    )
        .prop_map(|(sport, dport_ix, scan)| {
            let server = MacAddr::derived(0xA0, 0);
            let dst = Ipv4Addr::new(203, 0, 0, 10);
            let sport = 40_000 + sport;
            let dport = if scan {
                [22u16, 23, 25, 445][dport_ix]
            } else {
                [8_080u16, 8_443, 9_000, 9_090][dport_ix]
            };
            builder::tcp_syn(client_mac(), server, client_ip(), dst, sport, dport)
        })
}

fn build_agent(
    megaflow: bool,
    drops: bool,
    specs: Vec<NfSpec>,
    selector: TrafficSelector,
) -> Agent {
    let (mut agent, _) = Agent::new(
        AgentConfig {
            agent: AgentId::new(1),
            station: StationId::new(1),
            host_class: HostClass::EdgeServer,
        },
        ImageRepository::with_standard_images(),
    );
    agent.set_megaflow_enabled(megaflow);
    agent.set_megaflow_drop_enabled(drops);
    agent.client_associated(ClientId::new(0), client_mac(), client_ip());
    agent.handle_manager_msg(
        ManagerToAgent::DeployChain {
            chain: ChainId::new(1),
            client: ClientId::new(0),
            client_mac: client_mac(),
            specs,
            selector,
            restore_state: None,
            migration: None,
        },
        SimTime::from_secs(1),
    );
    agent
}

/// Attack-mix traffic spread over three clients (distinct MACs/IPs), so the
/// RSS-sharded agent actually routes work to several execution lanes.
fn arb_sharded_attack_packet() -> impl Strategy<Value = Packet> {
    (
        0u32..3,       // originating client
        0u16..400,     // ephemeral source-port offset (fresh flow each)
        0usize..4,     // destination port
        any::<bool>(), // scan vs benign
    )
        .prop_map(|(client, sport, dport_ix, scan)| {
            let server = MacAddr::derived(0xA0, 0);
            let dst = Ipv4Addr::new(203, 0, 0, 10);
            let sport = 40_000 + sport;
            let dport = if scan {
                [22u16, 23, 25, 445][dport_ix]
            } else {
                [8_080u16, 8_443, 9_000, 9_090][dport_ix]
            };
            builder::tcp_syn(
                MacAddr::derived(1, client),
                server,
                Ipv4Addr::new(172, 16, 0, 2 + client as u8),
                dst,
                sport,
                dport,
            )
        })
}

/// Three associated clients, each with its own deployed chain of `specs`.
fn build_multi_client_agent(specs: Vec<NfSpec>) -> Agent {
    let (mut agent, _) = Agent::new(
        AgentConfig {
            agent: AgentId::new(1),
            station: StationId::new(1),
            host_class: HostClass::EdgeServer,
        },
        ImageRepository::with_standard_images(),
    );
    agent.set_megaflow_enabled(true);
    agent.set_megaflow_drop_enabled(true);
    for client in 0..3u32 {
        let mac = MacAddr::derived(1, client);
        agent.client_associated(
            ClientId::new(client as u64),
            mac,
            Ipv4Addr::new(172, 16, 0, 2 + client as u8),
        );
        agent.handle_manager_msg(
            ManagerToAgent::DeployChain {
                chain: ChainId::new(client as u64 + 1),
                client: ClientId::new(client as u64),
                client_mac: mac,
                specs: specs.clone(),
                selector: TrafficSelector::all(),
                restore_state: None,
                migration: None,
            },
            SimTime::from_secs(1),
        );
    }
    agent
}

/// Packet-outcome + NF-state + port-counter equivalence between two agents.
fn assert_station_equivalent(a: &Agent, b: &Agent) -> Result<(), proptest::TestCaseError> {
    // The agents store chains in a HashMap, so pair them up by id rather
    // than trusting the two maps to iterate in the same order.
    let mut xs: Vec<_> = a.chains().collect();
    let mut ys: Vec<_> = b.chains().collect();
    xs.sort_by_key(|c| c.chain_id.raw());
    ys.sort_by_key(|c| c.chain_id.raw());
    prop_assert_eq!(xs.len(), ys.len());
    for (x, y) in xs.into_iter().zip(ys) {
        prop_assert_eq!(x.chain_id, y.chain_id);
        prop_assert_eq!(x.chain.stats(), y.chain.stats());
        prop_assert_eq!(x.chain.per_nf_stats(), y.chain.per_nf_stats());
        prop_assert_eq!(x.chain.export_state(), y.chain.export_state());
    }
    for (x, y) in a.switch().ports().iter().zip(b.switch().ports()) {
        prop_assert_eq!(&x.counters, &y.counters);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The megaflow-enabled station pipeline is outcome/state/stats
    /// equivalent to the uncached one across random rule sets and traffic
    /// mixes — for both the per-packet and the batched entry points.
    #[test]
    fn megaflow_pipeline_equals_uncached_pipeline(
        fw in arb_firewall_config(),
        packets in proptest::collection::vec(arb_packet(), 1..60),
        http_filter in any::<bool>(),
        http_only in any::<bool>(),
    ) {
        let mut specs = vec![NfSpec::new("fw", NfConfig::Firewall(fw))];
        if http_filter {
            specs.push(NfSpec::new(
                "filter",
                NfConfig::HttpFilter(HttpFilterConfig::block_hosts(&["prop.example"])),
            ));
        }
        let selector = if http_only {
            TrafficSelector::http_only()
        } else {
            TrafficSelector::all()
        };
        let now = SimTime::from_secs(2);

        // Reference: megaflow disabled (the historical pipeline).
        let mut off = build_agent(false, true, specs.clone(), selector);
        let expected: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| off.process_upstream_packet(p.clone(), now))
            .collect();
        let expected_notifications = off.drain_nf_notifications(now).len();

        // Megaflow on, per-packet.
        let mut on = build_agent(true, true, specs.clone(), selector);
        let outcomes: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| on.process_upstream_packet(p.clone(), now))
            .collect();
        prop_assert_eq!(&outcomes, &expected);
        assert_station_equivalent(&on, &off)?;
        prop_assert_eq!(on.drain_nf_notifications(now).len(), expected_notifications);

        // Megaflow on, batched.
        let mut on_batched = build_agent(true, true, specs, selector);
        let outcomes = on_batched.process_upstream_batch(PacketBatch::from(packets), now);
        prop_assert_eq!(&outcomes, &expected);
        assert_station_equivalent(&on_batched, &off)?;
        prop_assert_eq!(
            on_batched.drain_nf_notifications(now).len(),
            expected_notifications
        );
    }

    /// Drop-bypass equivalence under attack traffic: with random rule sets
    /// (denies, rejects, conntrack on/off) and scan-shaped churn, the
    /// station pipeline produces identical packet outcomes (including drop
    /// reasons), NF statistics, exported state and port counters whether
    /// wildcarded drop entries are enabled, disabled, or the megaflow layer
    /// is off entirely — per-packet and batched (mid-batch sealing
    /// included).
    #[test]
    fn drop_bypass_pipeline_equals_uncached_pipeline(
        fw in arb_firewall_config(),
        packets in proptest::collection::vec(arb_attack_packet(), 1..60),
    ) {
        let specs = vec![NfSpec::new("fw", NfConfig::Firewall(fw))];
        let selector = TrafficSelector::all();
        let now = SimTime::from_secs(2);

        // Reference: megaflow disabled entirely.
        let mut off = build_agent(false, true, specs.clone(), selector);
        let expected: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| off.process_upstream_packet(p.clone(), now))
            .collect();

        // Megaflow on with drop entries, per-packet.
        let mut drops_on = build_agent(true, true, specs.clone(), selector);
        let outcomes: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| drops_on.process_upstream_packet(p.clone(), now))
            .collect();
        prop_assert_eq!(&outcomes, &expected);
        assert_station_equivalent(&drops_on, &off)?;

        // Megaflow on with drop entries disabled (the pre-drop behavior).
        let mut drops_off = build_agent(true, false, specs.clone(), selector);
        let outcomes: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| drops_off.process_upstream_packet(p.clone(), now))
            .collect();
        prop_assert_eq!(&outcomes, &expected);
        assert_station_equivalent(&drops_off, &off)?;
        prop_assert_eq!(drops_off.megaflow_telemetry().stats.drop_installs, 0);
        prop_assert_eq!(drops_off.megaflow_telemetry().stats.drop_hits, 0);

        // Batched with drop entries: outcomes match, and mid-batch sealing
        // makes even the cache telemetry match the per-packet run.
        let mut batched = build_agent(true, true, specs, selector);
        let outcomes = batched.process_upstream_batch(PacketBatch::from(packets), now);
        prop_assert_eq!(&outcomes, &expected);
        assert_station_equivalent(&batched, &off)?;
        prop_assert_eq!(batched.megaflow_telemetry(), drops_on.megaflow_telemetry());
        prop_assert_eq!(batched.flow_cache_telemetry(), drops_on.flow_cache_telemetry());
    }

    /// At the switch level (no chain sealing involved), the batched receive
    /// path with megaflow enabled matches per-packet classification down to
    /// every cache counter: unsteered wildcard entries install inline in
    /// both paths, and run repeats credit the level that actually served
    /// the run.
    #[test]
    fn switch_batch_equals_per_packet_with_megaflow(
        packets in proptest::collection::vec(arb_packet(), 1..60),
        steer in any::<bool>(),
    ) {
        let now = SimTime::from_secs(1);
        let build = || {
            let mut sw = SoftwareSwitch::new();
            sw.set_megaflow_capacity(gnf_switch::DEFAULT_MEGAFLOW_CAPACITY);
            if steer {
                sw.steering_mut().install(SteeringRule {
                    client: ClientId::new(0),
                    client_mac: client_mac(),
                    selector: TrafficSelector::http_only(),
                    chain: ChainId::new(1),
                });
            }
            sw
        };
        let mut reference = build();
        let port = reference.client_port();
        let expected: Vec<SwitchDecision> = packets
            .iter()
            .map(|p| reference.receive(p, port, now).unwrap())
            .collect();

        let mut batched = build();
        let runs = batched
            .receive_batch(&PacketBatch::from(packets), batched.client_port(), now)
            .unwrap();
        let expanded: Vec<SwitchDecision> = runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.decision.clone(), r.count))
            .collect();
        prop_assert_eq!(expanded, expected);
        prop_assert_eq!(batched.flow_cache_stats(), reference.flow_cache_stats());
        prop_assert_eq!(batched.flow_cache_len(), reference.flow_cache_len());
        prop_assert_eq!(batched.megaflow_stats(), reference.megaflow_stats());
        prop_assert_eq!(batched.megaflow_len(), reference.megaflow_len());
        prop_assert_eq!(batched.megaflow_mask_count(), reference.megaflow_mask_count());
    }

    /// Emulator-level equivalence: with a bypassable (conntrack-off)
    /// firewall chain deployed fleet-wide, a megaflow-enabled run reports
    /// the same packet accounting and notifications as a disabled one, and
    /// the megaflow-enabled RunReport is byte-identical for worker counts
    /// 1, 2 and 4.
    #[test]
    fn emulator_megaflow_equivalence_across_worker_counts(seed in 0u64..100) {
        let untracked_fw = NfSpec::new(
            "fw",
            NfConfig::Firewall(FirewallConfig {
                rules: vec![FirewallRule {
                    protocol: ProtocolMatch::Tcp,
                    dst_port: PortMatch::Range(1, 23),
                    action: RuleAction::Drop,
                    ..FirewallRule::any("low-ports", RuleAction::Drop)
                }],
                default_action: RuleAction::Accept,
                track_connections: false,
                conntrack_idle_timeout_secs: 60,
            }),
        );
        let build = || {
            let config = GnfConfig::default().with_seed(seed);
            let mut builder = Scenario::builder(3, HostClass::EdgeServer).with_config(config);
            let clients = builder.add_clients(5, TrafficProfile::smartphone());
            let mut sb = builder.with_duration(SimDuration::from_secs(6));
            for client in &clients {
                sb = sb.attach_policy(
                    *client,
                    vec![untracked_fw.clone()],
                    TrafficSelector::all(),
                    SimTime::from_secs(1),
                );
            }
            sb.build()
        };

        // Megaflow on (the default) vs off: identical packet accounting.
        let report_on = Emulator::new(build()).run();
        let mut disabled = Emulator::new(build());
        disabled.set_megaflow_enabled(false);
        let report_off = disabled.run();
        prop_assert_eq!(report_on.packets, report_off.packets);
        prop_assert_eq!(report_on.notifications, report_off.notifications);
        // The disabled layer stays silent.
        prop_assert_eq!(report_off.megaflow.stats.hits, 0);

        // Worker counts 1/2/4 with megaflow on: byte-identical reports.
        let reports: Vec<String> = [1usize, 2, 4]
            .into_iter()
            .map(|workers| {
                let mut emulator = Emulator::new(build());
                emulator.set_workers(workers);
                serde_json::to_string(&emulator.run()).unwrap()
            })
            .collect();
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
    }

    /// Emulator-level drop-bypass equivalence on an attack-shaped fleet: a
    /// conntrack-off firewall denying the smartphones' DNS traffic turns
    /// every lookup (fresh source port each) into dropped-flow churn. Drop
    /// bypass on vs off reports the same packet accounting, notifications
    /// and NF-visible statistics; with it on, the drop entries actually
    /// engage and the RunReport is byte-identical for workers 1, 2 and 4.
    #[test]
    fn emulator_drop_bypass_equivalence_across_worker_counts(seed in 0u64..100) {
        let dns_denying_fw = NfSpec::new(
            "fw",
            NfConfig::Firewall(FirewallConfig {
                rules: vec![FirewallRule {
                    protocol: ProtocolMatch::Udp,
                    dst_port: PortMatch::Exact(53),
                    action: RuleAction::Drop,
                    ..FirewallRule::any("no-dns", RuleAction::Drop)
                }],
                default_action: RuleAction::Accept,
                track_connections: false,
                conntrack_idle_timeout_secs: 60,
            }),
        );
        let build = || {
            let config = GnfConfig::default().with_seed(seed);
            let mut builder = Scenario::builder(3, HostClass::EdgeServer).with_config(config);
            let clients = builder.add_clients(5, TrafficProfile::smartphone());
            let mut sb = builder.with_duration(SimDuration::from_secs(6));
            for client in &clients {
                sb = sb.attach_policy(
                    *client,
                    vec![dns_denying_fw.clone()],
                    TrafficSelector::all(),
                    SimTime::from_secs(1),
                );
            }
            sb.build()
        };

        // Drop bypass on (the default) vs off: identical packet accounting
        // and notifications; only the cache split may differ.
        let report_on = Emulator::new(build()).run();
        let mut disabled = Emulator::new(build());
        disabled.set_megaflow_drop_enabled(false);
        let report_off = disabled.run();
        prop_assert_eq!(report_on.packets, report_off.packets);
        prop_assert_eq!(report_on.notifications, report_off.notifications);
        prop_assert_eq!(report_off.megaflow.stats.drop_hits, 0);
        prop_assert_eq!(report_off.megaflow.stats.drop_installs, 0);
        // The denied DNS churn actually rides the drop entries.
        prop_assert!(report_on.packets.dropped_by_nf > 0, "the deny rule fired");
        prop_assert!(
            report_on.megaflow.stats.drop_hits > 0,
            "dropped-flow churn must bypass: {:?}",
            report_on.megaflow
        );

        // Worker counts 1/2/4 with drop bypass on: byte-identical reports.
        let reports: Vec<String> = [1usize, 2, 4]
            .into_iter()
            .map(|workers| {
                let mut emulator = Emulator::new(build());
                emulator.set_workers(workers);
                serde_json::to_string(&emulator.run()).unwrap()
            })
            .collect();
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The RSS-sharded station pipeline equals the serial one under
    /// attack-shaped churn across random rule sets and shard counts:
    /// identical packet outcomes, NF statistics and exported state, port
    /// counters, notifications and cache telemetry — and the per-shard
    /// telemetry blocks sum exactly to the station-level aggregates.
    #[test]
    fn sharded_station_equals_serial_station(
        fw in arb_firewall_config(),
        packets in proptest::collection::vec(arb_sharded_attack_packet(), 1..80),
        shards in 2usize..5,
    ) {
        let specs = vec![NfSpec::new("fw", NfConfig::Firewall(fw))];
        let now = SimTime::from_secs(2);

        let mut serial = build_multi_client_agent(specs.clone());
        let expected = serial.process_upstream_batch(PacketBatch::from(packets.clone()), now);
        let expected_notifications = serial.drain_nf_notifications(now).len();

        let mut sharded = build_multi_client_agent(specs);
        sharded.set_station_shards(shards);
        let outcomes = sharded.process_upstream_batch(PacketBatch::from(packets), now);
        prop_assert_eq!(&outcomes, &expected);
        assert_station_equivalent(&sharded, &serial)?;
        prop_assert_eq!(sharded.drain_nf_notifications(now).len(), expected_notifications);
        prop_assert_eq!(sharded.flow_cache_telemetry(), serial.flow_cache_telemetry());
        prop_assert_eq!(sharded.megaflow_telemetry(), serial.megaflow_telemetry());

        // Per-shard attribution is exhaustive: every counter lands in
        // exactly one shard block, so the blocks sum back to the
        // aggregates (drop hits are a subset of hits in both views).
        let blocks = sharded.shard_telemetry();
        prop_assert_eq!(blocks.len(), shards);
        let flow = sharded.flow_cache_telemetry();
        prop_assert_eq!(
            blocks.iter().map(|b| b.flow.hits).sum::<u64>(),
            flow.stats.hits
        );
        prop_assert_eq!(
            blocks.iter().map(|b| b.flow.misses).sum::<u64>(),
            flow.stats.misses
        );
        prop_assert_eq!(
            blocks.iter().map(|b| b.flow.entries).sum::<u64>(),
            flow.entries as u64
        );
        let mega = sharded.megaflow_telemetry();
        prop_assert_eq!(
            blocks.iter().map(|b| b.megaflow.hits).sum::<u64>(),
            mega.stats.hits
        );
        prop_assert_eq!(
            blocks.iter().map(|b| b.megaflow.misses).sum::<u64>(),
            mega.stats.misses
        );
        prop_assert_eq!(
            blocks.iter().map(|b| b.megaflow.entries).sum::<u64>(),
            mega.entries as u64
        );
    }
}

/// Deterministic end-to-end check that the wildcard layer actually engages
/// under emulated new-flow churn (not just stays silently equivalent).
#[test]
fn emulated_churn_hits_the_wildcard_layer() {
    let untracked_fw = NfSpec::new(
        "fw",
        NfConfig::Firewall(FirewallConfig {
            rules: Vec::new(),
            default_action: RuleAction::Accept,
            track_connections: false,
            conntrack_idle_timeout_secs: 60,
        }),
    );
    let mut builder = Scenario::builder(2, HostClass::EdgeServer).with_config(GnfConfig::default());
    let clients = builder.add_clients(4, TrafficProfile::smartphone());
    let mut sb = builder.with_duration(SimDuration::from_secs(10));
    for client in &clients {
        sb = sb.attach_policy(
            *client,
            vec![untracked_fw.clone()],
            TrafficSelector::all(),
            SimTime::from_secs(1),
        );
    }
    let report = Emulator::new(sb.build()).run();
    assert!(
        report.megaflow.stats.installs > 0,
        "wildcard entries were installed: {:?}",
        report.megaflow
    );
    assert!(
        report.megaflow.stats.hits > 0,
        "new flows rode the wildcard entries: {:?}",
        report.megaflow
    );
    assert!(report.summary().contains("megaflow"));
}
