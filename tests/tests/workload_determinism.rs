//! Property tests for the workload subsystem's determinism contract:
//!
//! * the same generator config + seed yields a byte-identical trace;
//! * pcap/pcapng write → read round-trips exactly;
//! * replaying a captured trace through the emulator reproduces the original
//!   run's packet statistics, at any worker count.

use gnf_core::{Emulator, RunReport, Scenario};
use gnf_edge::TrafficProfile;
use gnf_nf::testing::sample_specs;
use gnf_sim::Rng;
use gnf_switch::TrafficSelector;
use gnf_types::{GnfConfig, HostClass, MacAddr, SimDuration, SimTime, StationId};
use gnf_workload::{
    ArrivalModel, CaptureWorkload, FlowSizeModel, Population, SharedBuffer, SyntheticSpec,
    TraceFormat, TraceReader, TraceRecord, TraceWorkload, TraceWriter, TrafficMix, Workload,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

// ----------------------------------------------------------- trace identity

fn mix_for(ix: u8) -> TrafficMix {
    match ix % 3 {
        0 => TrafficMix::web(),
        1 => TrafficMix::attack(),
        _ => TrafficMix::churn(),
    }
}

fn arrivals_for(ix: u8) -> ArrivalModel {
    match ix % 3 {
        0 => ArrivalModel::Poisson {
            flows_per_sec: 800.0,
        },
        1 => ArrivalModel::Periodic {
            flows_per_sec: 600.0,
        },
        _ => ArrivalModel::OnOff {
            on_flows_per_sec: 3_000.0,
            mean_on: SimDuration::from_millis(80),
            mean_off: SimDuration::from_millis(250),
        },
    }
}

/// Drains a workload into nanosecond-pcap bytes — the canonical byte
/// representation of a packet stream.
fn trace_bytes(spec: SyntheticSpec, population: Population) -> Vec<u8> {
    let mut workload = spec.build(population);
    let mut writer = TraceWriter::pcap(Vec::new()).unwrap();
    while let Some(batch) = workload.next_batch() {
        for (_, packet) in &batch.packets {
            writer
                .write_record(batch.at, packet.bytes().as_ref())
                .unwrap();
        }
    }
    writer.into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Same generator config + seed ⇒ byte-identical traces; a different
    // seed diverges.
    #[test]
    fn same_config_and_seed_yields_byte_identical_traces(
        seed in any::<u64>(),
        mix_ix in any::<u8>(),
        arrivals_ix in any::<u8>(),
        stations in 1usize..4,
        clients in 1usize..5,
    ) {
        let spec = || SyntheticSpec::new("prop", seed)
            .with_mix(mix_for(mix_ix))
            .with_arrivals(arrivals_for(arrivals_ix))
            .with_flow_sizes(FlowSizeModel::Zipf { max_packets: 60, exponent: 1.2 })
            .with_packet_gap(SimDuration::from_millis(3))
            .with_packet_budget(600);
        let population = || Population::synthetic(stations, clients);

        let a = trace_bytes(spec(), population());
        let b = trace_bytes(spec(), population());
        prop_assert_eq!(&a, &b);

        let other = trace_bytes(
            SyntheticSpec::new("prop", seed ^ 0x9E37_79B9)
                .with_mix(mix_for(mix_ix))
                .with_arrivals(arrivals_for(arrivals_ix))
                .with_flow_sizes(FlowSizeModel::Zipf { max_packets: 60, exponent: 1.2 })
                .with_packet_gap(SimDuration::from_millis(3))
                .with_packet_budget(600),
            population(),
        );
        prop_assert_ne!(&a, &other);
    }

    // pcap and pcapng round-trip arbitrary records exactly.
    #[test]
    fn pcap_roundtrip_is_exact(seed in any::<u64>(), pcapng in any::<bool>()) {
        let mut rng = Rng::new(seed);
        let mut at = 0u64;
        let records: Vec<TraceRecord> = (0..rng.range_inclusive(1, 40))
            .map(|_| {
                at += rng.range_inclusive(0, 3_000_000_000);
                let payload: Vec<u8> = (0..rng.range_inclusive(0, 400))
                    .map(|_| rng.next_u32() as u8)
                    .collect();
                let frame = gnf_packet::builder::udp_packet(
                    MacAddr::derived(1, rng.next_u32() % 8),
                    MacAddr::derived(0xA0, rng.next_u32() % 4),
                    Ipv4Addr::new(10, 0, 0, 2),
                    Ipv4Addr::new(203, 0, 113, 9),
                    rng.range_inclusive(1024, 65_000) as u16,
                    rng.range_inclusive(1, 65_000) as u16,
                    &payload,
                )
                .bytes()
                .to_vec();
                TraceRecord { at: SimTime::from_nanos(at), frame }
            })
            .collect();

        let format = if pcapng { TraceFormat::PcapNg } else { TraceFormat::Pcap };
        let mut writer = TraceWriter::new(Vec::new(), format).unwrap();
        for r in &records {
            writer.write_record(r.at, &r.frame).unwrap();
        }
        let bytes = writer.into_inner().unwrap();
        let back = TraceReader::new(&bytes[..]).unwrap().read_all().unwrap();
        prop_assert_eq!(&back, &records);

        // And rewriting what was read reproduces the same bytes.
        let mut again = TraceWriter::new(Vec::new(), format).unwrap();
        for r in &back {
            again.write_record(r.at, &r.frame).unwrap();
        }
        prop_assert_eq!(again.into_inner().unwrap(), bytes);
    }
}

// ------------------------------------------------------------- trace replay

/// The fixed scenario both the captured run and its replays execute: idle
/// clients (all traffic comes from the source), every client steered through
/// the sample firewall.
fn replay_scenario() -> Scenario {
    let config = GnfConfig::default().with_seed(0xE8E8);
    let mut builder = Scenario::builder(2, HostClass::EdgeServer).with_config(config);
    let clients = builder.add_clients(6, TrafficProfile::Idle);
    let mut sb = builder.with_duration(SimDuration::from_secs(15));
    for client in &clients {
        sb = sb.attach_policy(
            *client,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            SimTime::from_secs(1),
        );
    }
    sb.build()
}

fn captured_run() -> (RunReport, Vec<u8>, Population) {
    let scenario = replay_scenario();
    let population = Population::from_topology(&scenario.topology);
    let buffer = SharedBuffer::new();
    let writer = TraceWriter::pcap(buffer.clone()).unwrap();
    let synth = SyntheticSpec::new("captured", 99)
        .starting_at(SimTime::from_secs(3))
        .with_mix(TrafficMix::attack())
        .with_flow_sizes(FlowSizeModel::Zipf {
            max_packets: 80,
            exponent: 1.2,
        })
        .with_packet_gap(SimDuration::from_millis(2))
        .with_packet_budget(4_000)
        .build(population.clone());
    let mut emulator = Emulator::new(scenario);
    emulator.add_workload(Box::new(CaptureWorkload::new(synth, writer)));
    let report = emulator.run();
    (report, buffer.take(), population)
}

#[test]
fn replaying_a_captured_trace_reproduces_the_run_at_any_worker_count() {
    let (original, bytes, population) = captured_run();
    assert_eq!(original.packets.generated, 4_000);
    assert!(
        original.packets.dropped_by_nf > 0,
        "the attack mix must trip the firewall: {:?}",
        original.packets
    );
    assert!(!bytes.is_empty(), "the capture recorded the trace");

    let original_json = serde_json::to_string(&original).unwrap();
    for workers in [1usize, 2, 4] {
        let replay = TraceWorkload::new(
            "replay",
            std::io::Cursor::new(bytes.clone()),
            StationId::new(0),
            population.stations_by_gateway(),
            population.clients_by_mac(),
        )
        .unwrap();
        let mut emulator = Emulator::new(replay_scenario());
        emulator.set_workers(workers);
        emulator.add_workload(Box::new(replay));
        let report = emulator.run();
        assert_eq!(
            report.packets, original.packets,
            "replay must reproduce the original packet stats at workers={workers}"
        );
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            original_json,
            "replay reproduces the full report byte-for-byte at workers={workers}"
        );
    }
}

#[test]
fn capture_of_a_replay_is_byte_identical() {
    // Round-tripping through the emulator's input side twice: capture the
    // replay of a capture and compare bytes.
    let (_, bytes, population) = captured_run();
    let replay = TraceWorkload::new(
        "replay",
        &bytes[..],
        StationId::new(0),
        population.stations_by_gateway(),
        population.clients_by_mac(),
    )
    .unwrap();
    let buffer = SharedBuffer::new();
    let mut capture = CaptureWorkload::new(replay, TraceWriter::pcap(buffer.clone()).unwrap());
    while capture.next_batch().is_some() {}
    assert_eq!(buffer.take(), bytes);
}
