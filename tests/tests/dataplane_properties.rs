//! Property-based integration tests over the data plane: arbitrary traffic
//! through arbitrary chains must never panic, never forge packets, and always
//! account for every packet exactly once.

use gnf_nf::testing::sample_specs;
use gnf_nf::{instantiate_chain, Direction, NfContext, Verdict};
use gnf_packet::{builder, Packet, TcpFlags};
use gnf_types::{MacAddr, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    let mac = (any::<u8>(), any::<u32>()).prop_map(|(ns, ix)| MacAddr::derived(ns, ix));
    (
        mac,
        arb_ip(),
        arb_ip(),
        1u16..,
        1u16..,
        any::<u8>(),
        proptest::collection::vec(any::<u8>(), 0..200),
        0usize..5,
    )
        .prop_map(
            |(src_mac, src_ip, dst_ip, sport, dport, flags, payload, kind)| {
                let gw = MacAddr::derived(0xA0, 0);
                match kind {
                    0 => builder::tcp_packet(
                        src_mac,
                        gw,
                        src_ip,
                        dst_ip,
                        sport,
                        dport,
                        TcpFlags::from_byte(flags),
                        &payload,
                    ),
                    1 => builder::udp_packet(src_mac, gw, src_ip, dst_ip, sport, dport, &payload),
                    2 => builder::dns_query(
                        src_mac,
                        gw,
                        src_ip,
                        dst_ip,
                        sport,
                        sport,
                        "prop.example",
                    ),
                    3 => {
                        builder::http_get(src_mac, gw, src_ip, dst_ip, sport, "prop.example", "/x")
                    }
                    _ => builder::icmp_echo_request(src_mac, gw, src_ip, dst_ip, sport, dport),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_chain_accounts_for_every_packet(
        packets in proptest::collection::vec(arb_packet(), 1..60),
        upstream_mask in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        let mut chain = instantiate_chain("prop-chain", &sample_specs());
        let ctx = NfContext::at(SimTime::from_secs(1));
        let mut forwarded = 0u64;
        let mut dropped = 0u64;
        let mut replied = 0u64;
        let total = packets.len() as u64;
        for (ix, packet) in packets.into_iter().enumerate() {
            let direction = if *upstream_mask.get(ix).unwrap_or(&true) {
                Direction::Ingress
            } else {
                Direction::Egress
            };
            match chain.process(packet, direction, &ctx) {
                Verdict::Forward(p) => {
                    forwarded += 1;
                    // A forwarded frame must still be a parseable frame.
                    prop_assert!(Packet::parse(p.bytes().clone()).is_ok());
                }
                Verdict::Drop(reason) => {
                    dropped += 1;
                    prop_assert!(!reason.is_empty());
                }
                Verdict::Reply(replies) => {
                    replied += 1;
                    prop_assert!(!replies.is_empty());
                    for reply in replies {
                        prop_assert!(Packet::parse(reply.bytes().clone()).is_ok());
                    }
                }
            }
        }
        let stats = chain.stats();
        prop_assert_eq!(stats.packets_in, total);
        prop_assert_eq!(forwarded + dropped + replied, total);
        prop_assert_eq!(stats.packets_forwarded, forwarded);
        prop_assert_eq!(stats.packets_dropped, dropped);
        prop_assert_eq!(stats.packets_replied, replied);
    }

    #[test]
    fn chain_state_roundtrips_for_any_traffic(
        packets in proptest::collection::vec(arb_packet(), 1..40),
    ) {
        let mut chain = instantiate_chain("prop-chain", &sample_specs());
        let ctx = NfContext::at(SimTime::from_secs(1));
        for packet in packets {
            let _ = chain.process(packet, Direction::Ingress, &ctx);
        }
        // Export → serialize → deserialize → import into a fresh chain must
        // never fail or panic, whatever state the traffic created.
        let state = chain.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: Vec<gnf_nf::NfStateSnapshot> = serde_json::from_str(&json).unwrap();
        let mut fresh = instantiate_chain("prop-chain", &sample_specs());
        fresh.import_state(back);
        prop_assert!(fresh.state_size_bytes() <= state.iter().map(|s| s.approximate_size_bytes()).sum::<usize>() + 16);
    }

    #[test]
    fn flow_cached_decisions_equal_slow_path_decisions(
        packets in proptest::collection::vec(arb_packet(), 1..50),
        steer_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        use gnf_switch::{SoftwareSwitch, SteeringRule, TrafficSelector};
        use gnf_types::{ChainId, ClientId, SimTime};

        // Two switches with identical steering rules: one processes every
        // packet twice (the second pass rides the flow cache), the other is
        // the uncached reference. Decisions must agree packet for packet.
        let mut cached = SoftwareSwitch::new();
        let mut reference = SoftwareSwitch::new();
        for (ix, steer) in steer_mask.iter().enumerate() {
            if !steer {
                continue;
            }
            for sw in [&mut cached, &mut reference] {
                sw.steering_mut().install(SteeringRule {
                    client: ClientId::new(ix as u64),
                    client_mac: MacAddr::derived(ix as u8, ix as u32),
                    selector: if ix % 2 == 0 {
                        TrafficSelector::all()
                    } else {
                        TrafficSelector::http_only()
                    },
                    chain: ChainId::new(ix as u64),
                });
            }
        }
        // One rule matches every generated packet's destination MAC, so the
        // steering arm of the decision is exercised (downstream direction).
        for sw in [&mut cached, &mut reference] {
            sw.steering_mut().install(SteeringRule {
                client: ClientId::new(99),
                client_mac: MacAddr::derived(0xA0, 0),
                selector: TrafficSelector::all(),
                chain: ChainId::new(99),
            });
        }
        let now = SimTime::from_secs(1);
        for packet in &packets {
            let port = cached.client_port();
            let first = cached.receive(packet, port, now).unwrap();
            let second = cached.receive(packet, port, now).unwrap();
            let expected = reference.receive(packet, reference.client_port(), now).unwrap();
            // The reference switch saw each packet once while the cached
            // switch saw it twice, so MAC learning state is identical after
            // packet one — and repeats must be byte-identical decisions.
            prop_assert_eq!(&first, &second);
            prop_assert_eq!(&second, &expected);
        }
        prop_assert!(cached.flow_cache_stats().hits > 0 || packets.iter().all(|p| p.five_tuple().is_none()));
    }

    #[test]
    fn switch_steering_never_loses_track_of_generation(
        macs in proptest::collection::vec((any::<u8>(), any::<u32>()), 1..30),
    ) {
        use gnf_switch::{SteeringRule, SteeringTable, TrafficSelector};
        use gnf_types::{ChainId, ClientId};
        let mut table = SteeringTable::new();
        let mut expected_len = 0usize;
        for (ix, (ns, id)) in macs.iter().enumerate() {
            let mac = MacAddr::derived(*ns, *id);
            let before = table.rules_for(mac).len();
            table.install(SteeringRule {
                client: ClientId::new(ix as u64),
                client_mac: mac,
                selector: TrafficSelector::all(),
                chain: ChainId::new(ix as u64),
            });
            prop_assert_eq!(table.rules_for(mac).len(), before + 1);
            expected_len += 1;
            prop_assert_eq!(table.len(), expected_len);
        }
        // Generation increases monotonically with changes.
        let g = table.generation();
        prop_assert_eq!(g, expected_len as u64);
    }
}
