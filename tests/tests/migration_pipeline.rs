//! Conformance suite for the pre-copy live-migration pipeline: the
//! baseline + dirty-delta restore path must be indistinguishable from a
//! monolithic checkpoint for every NF kind, no packet may be lost or
//! double-counted across a switchover, concurrent migrations of disjoint
//! clients must commute, and the migration worker pool must never change
//! the `RunReport`.

use gnf_core::{Emulator, Mobility, RunReport, Scenario};
use gnf_edge::{RoamTrace, TrafficProfile};
use gnf_nf::testing::sample_specs;
use gnf_nf::{instantiate_chain, Direction, NfContext, NfStateDelta, NfStateSnapshot};
use gnf_packet::{builder, Packet};
use gnf_sim::Rng;
use gnf_switch::TrafficSelector;
use gnf_types::{
    CellId, ChainId, ClientId, GnfConfig, HostClass, MacAddr, SimDuration, SimTime, StationId,
};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------------
// (a) Pre-copy + delta restore is state-identical to a monolithic
//     checkpoint, for every NF kind, under random traffic.
// ---------------------------------------------------------------------------

/// One random packet from a deterministic stream: varied protocols, ports,
/// sources and hosts so every NF in the chain accumulates non-trivial state.
fn random_packet(rng: &mut Rng, client_mac: MacAddr, gw_mac: MacAddr) -> Packet {
    let client_ip = Ipv4Addr::new(10, 0, 0, 2 + rng.next_below(6) as u8);
    let server = Ipv4Addr::new(198, 51, 100, 1 + rng.next_below(9) as u8);
    let sport = 40_000 + rng.next_below(500) as u16;
    match rng.next_below(6) {
        0 => builder::tcp_syn(client_mac, gw_mac, client_ip, server, sport, 80),
        1 => builder::http_get(
            client_mac,
            gw_mac,
            client_ip,
            server,
            sport,
            ["www.gla.ac.uk", "svc.edge.example", "cdn.example"][rng.next_below(3) as usize],
            ["/", "/img/logo.png", "/api/v1"][rng.next_below(3) as usize],
        ),
        2 => builder::dns_query(
            client_mac,
            gw_mac,
            client_ip,
            Ipv4Addr::new(8, 8, 8, 8),
            5353 + rng.next_below(8) as u16,
            rng.next_below(u16::MAX as u64) as u16,
            ["svc.edge.example", "www.gla.ac.uk"][rng.next_below(2) as usize],
        ),
        3 => builder::udp_packet(
            client_mac,
            gw_mac,
            client_ip,
            server,
            41_000 + rng.next_below(64) as u16,
            5004,
            &[0u8; 120],
        ),
        4 => builder::tcp_data(
            client_mac, gw_mac, client_ip, server, sport, 443, b"tls-ish",
        ),
        _ => builder::icmp_echo_request(
            client_mac,
            gw_mac,
            client_ip,
            server,
            rng.next_below(100) as u16,
            1,
        ),
    }
}

#[test]
fn precopy_delta_restore_matches_monolithic_checkpoint_for_every_nf() {
    let specs = sample_specs();
    let mut source = instantiate_chain("all-nfs", &specs);
    let (client_mac, gw_mac) = gnf_nf::testing::sample_macs();
    let mut rng = Rng::new(42);

    // Phase 1 — the source serves while the baseline is being pre-copied.
    let mut now = SimTime::from_secs(1);
    for _ in 0..300 {
        let pkt = random_packet(&mut rng, client_mac, gw_mac);
        let _ = source.process(pkt, Direction::Ingress, &NfContext::at(now));
        now += SimDuration::from_millis(17);
    }
    let baseline = source.export_state();
    assert_eq!(baseline.len(), specs.len(), "one snapshot per NF");
    assert!(
        baseline.iter().any(|s| !s.is_empty()),
        "phase-1 traffic must build up real state"
    );

    // Phase 2 — the source keeps serving, dirtying the shipped baseline.
    for _ in 0..300 {
        let pkt = random_packet(&mut rng, client_mac, gw_mac);
        let _ = source.process(pkt, Direction::Ingress, &NfContext::at(now));
        now += SimDuration::from_millis(17);
    }
    let monolithic = source.export_state();
    assert_ne!(
        baseline, monolithic,
        "phase-2 traffic must dirty the baseline, or the delta path is vacuous"
    );

    // The monolithic restore path: full checkpoint into a fresh chain.
    let mut classic = instantiate_chain("all-nfs", &specs);
    classic.import_state(monolithic.clone());
    assert_eq!(classic.export_state(), monolithic);

    // The pre-copy restore path: baseline import, then the dirty delta.
    let deltas: Vec<NfStateDelta> = baseline
        .iter()
        .zip(monolithic.iter())
        .map(|(base, current)| NfStateDelta::diff(base, current))
        .collect();
    assert!(
        deltas.iter().any(|d| !matches!(d, NfStateDelta::Unchanged)),
        "at least one NF must ship a non-trivial delta"
    );
    let mut precopied = instantiate_chain("all-nfs", &specs);
    precopied.replace_state(baseline.clone());
    precopied.apply_state_deltas(deltas);
    assert_eq!(
        precopied.export_state(),
        monolithic,
        "baseline + dirty delta must reproduce the monolithic checkpoint byte-for-byte"
    );

    // And the stateful NFs individually, so one Stateless kind can never
    // mask a divergence in another.
    for ((snapshot, spec), restored) in monolithic
        .iter()
        .zip(specs.iter())
        .zip(precopied.export_state())
    {
        assert_eq!(
            *snapshot, restored,
            "NF {:?} diverged across the pre-copy restore",
            spec.name
        );
        let _ = matches!(snapshot, NfStateSnapshot::Stateless);
    }
}

// ---------------------------------------------------------------------------
// Shared storm scenario: a fleet of stateful clients that all roam at once
// with the pre-copy pipeline enabled.
// ---------------------------------------------------------------------------

const STORM_STATIONS: usize = 6;

fn storm_scenario(seed: u64, clients: usize) -> Scenario {
    let config = GnfConfig {
        seed,
        migration_precopy: true,
        ..GnfConfig::default()
    };
    let mut builder = Scenario::builder(STORM_STATIONS, HostClass::EdgeServer).with_config(config);
    let ids = builder.add_clients(clients, TrafficProfile::smartphone());
    let mut sb = builder.with_duration(SimDuration::from_secs(35));
    for client in &ids {
        sb = sb.attach_policy(
            *client,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            SimTime::from_secs(1),
        );
    }
    let mut trace = RoamTrace::new();
    for (ix, client) in ids.iter().enumerate() {
        let target = ((ix % STORM_STATIONS) + 1) % STORM_STATIONS;
        trace = trace.roam(SimTime::from_secs(18), *client, CellId::new(target as u64));
    }
    sb.with_mobility(Mobility::Trace(trace)).build()
}

fn run_storm(seed: u64, clients: usize, migration_workers: usize) -> RunReport {
    let mut emulator = Emulator::new(storm_scenario(seed, clients));
    emulator.set_migration_workers(migration_workers);
    emulator.run()
}

// ---------------------------------------------------------------------------
// (b) No packet is lost or double-counted across the switchover.
// ---------------------------------------------------------------------------

#[test]
fn switchover_neither_loses_nor_double_counts_packets() {
    let report = run_storm(5, 12, 2);
    assert!(report.all_migrations_completed());
    assert_eq!(report.migration.precopied, report.migration.total);
    assert!(
        report.migration.deltas_replayed >= 1,
        "the storm must replay at least one dirty delta: {:?}",
        report.migration
    );

    // Conservation: every generated packet lands in exactly one terminal
    // class. A lost packet breaks `==` low; a double-counted one breaks it
    // high.
    let p = &report.packets;
    let accounted = p.forwarded
        + p.dropped_by_nf
        + p.replied_by_nf
        + p.dropped_in_gap
        + p.bypassed_in_gap
        + p.dropped_station_down;
    assert_eq!(
        p.generated, accounted,
        "packet conservation across the switchover: {p:?}"
    );
    assert!(p.forwarded > 0, "the storm must carry traffic");

    // The make-before-break path was actually exercised: packets arriving
    // at the target mid-pre-copy detoured through the still-serving source
    // (and each also appears exactly once in a terminal class above).
    assert!(
        p.hairpinned >= 1,
        "pre-copy hairpin must carry mid-migration traffic: {p:?}"
    );
    assert!(p.hairpinned <= p.generated);
}

// ---------------------------------------------------------------------------
// (c) Concurrent migrations of disjoint clients commute.
// ---------------------------------------------------------------------------

/// The final, externally observable outcome for one client: where its chain
/// ended up, whether it serves traffic, and the exact NF state it holds.
fn client_outcome(
    emulator: &Emulator,
    client: ClientId,
) -> (StationId, bool, ChainId, Vec<NfStateSnapshot>) {
    let attachment = emulator
        .manager()
        .attachments()
        .find(|a| a.client == client)
        .expect("attachment survives the roam");
    let station = attachment.station.expect("chain is placed");
    let state = emulator
        .agent(station)
        .expect("serving station is alive")
        .chain(attachment.chain)
        .expect("serving station runs the chain")
        .chain
        .export_state();
    (station, attachment.active, attachment.chain, state)
}

#[test]
fn disjoint_client_migrations_commute() {
    // Clients 0..4 start on stations 0..4 (one per station). Client 0 roams
    // 0→1 and client 2 roams 2→3 at the same instant: disjoint sources,
    // disjoint targets. The order the roams are listed in must not matter.
    let scenario_with = |order: &[(usize, u64)]| {
        let config = GnfConfig {
            seed: 9,
            migration_precopy: true,
            ..GnfConfig::default()
        };
        let mut builder = Scenario::builder(4, HostClass::EdgeServer).with_config(config);
        let ids = builder.add_clients(4, TrafficProfile::smartphone());
        let mut sb = builder.with_duration(SimDuration::from_secs(35));
        for client in &ids {
            sb = sb.attach_policy(
                *client,
                vec![sample_specs()[0].clone()],
                TrafficSelector::all(),
                SimTime::from_secs(1),
            );
        }
        let mut trace = RoamTrace::new();
        for (ix, cell) in order {
            trace = trace.roam(SimTime::from_secs(18), ids[*ix], CellId::new(*cell));
        }
        (sb.with_mobility(Mobility::Trace(trace)).build(), ids)
    };

    let run = |order: &[(usize, u64)]| {
        let (scenario, ids) = scenario_with(order);
        let mut emulator = Emulator::new(scenario);
        let report = emulator.run();
        (emulator, report, ids)
    };

    let (emu_ab, report_ab, ids) = run(&[(0, 1), (2, 3)]);
    let (emu_ba, report_ba, ids_ba) = run(&[(2, 3), (0, 1)]);
    assert_eq!(ids, ids_ba, "client identity does not depend on roam order");

    assert_eq!(report_ab.handovers, 2);
    assert_eq!(report_ba.handovers, 2);
    assert!(report_ab.all_migrations_completed());
    assert!(report_ba.all_migrations_completed());

    // Per-client outcomes are identical whichever migration was admitted
    // first: same placement, same liveness, same chain, same NF state.
    for client in &ids {
        assert_eq!(
            client_outcome(&emu_ab, *client),
            client_outcome(&emu_ba, *client),
            "outcome for {client:?} must not depend on roam listing order"
        );
    }

    // The data plane agrees: both runs moved exactly the same traffic.
    assert_eq!(report_ab.packets, report_ba.packets);

    // Migration records match as a set (MigrationId allocation order is the
    // one thing that legitimately differs).
    let key = |r: &RunReport| {
        let mut set: Vec<_> = r
            .migrations
            .iter()
            .map(|m| {
                (
                    m.client,
                    m.from,
                    m.to,
                    m.completed,
                    m.precopy,
                    m.delta_bytes,
                )
            })
            .collect();
        set.sort();
        set
    };
    assert_eq!(key(&report_ab), key(&report_ba));
}

// ---------------------------------------------------------------------------
// (d) The migration worker pool never changes the report.
// ---------------------------------------------------------------------------

#[test]
fn migration_worker_pool_is_invisible_in_a_hundred_roam_storm() {
    let baseline = run_storm(7, 100, 1);
    assert_eq!(baseline.handovers, 100);
    assert!(baseline.all_migrations_completed());
    assert_eq!(baseline.migration.precopied, baseline.migration.total);

    let bytes = serde_json::to_string(&baseline).expect("report serializes");
    for migration_workers in [2usize, 4] {
        let other = run_storm(7, 100, migration_workers);
        assert_eq!(
            bytes,
            serde_json::to_string(&other).expect("report serializes"),
            "RunReport must be byte-identical at migration-workers={migration_workers}"
        );
    }
}
