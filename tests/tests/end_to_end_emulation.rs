//! Workspace-level end-to-end tests of the emulator: whole scenarios run from
//! a seed, checking the behavioural claims of the paper (NFs follow roaming
//! clients, traffic keeps being policed, density and instantiation advantages
//! of containers) across crate boundaries.

use gnf_core::{Emulator, Mobility, Scenario};
use gnf_edge::{RandomWalkMobility, RoamTrace, TrafficProfile};
use gnf_nf::testing::sample_specs;
use gnf_switch::TrafficSelector;
use gnf_types::{CellId, GnfConfig, HostClass, SimDuration, SimTime};
use gnf_ui::Dashboard;

#[test]
fn the_paper_demo_runs_deterministically_and_migrates() {
    let run = |seed: u64| {
        let mut emulator =
            Emulator::new(Scenario::demo_roaming(GnfConfig::default().with_seed(seed)));
        emulator.run()
    };
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(a.packets, b.packets, "same seed, same packet accounting");
    assert_eq!(
        a.migrations[0].downtime_ms, b.migrations[0].downtime_ms,
        "same seed, same downtime"
    );
    // Different seeds change the traffic, not the control-plane outcome.
    assert_eq!(a.handovers, c.handovers);
    assert!(c.all_migrations_completed());
}

#[test]
fn dashboards_reflect_a_running_fleet() {
    let mut builder = Scenario::builder(4, HostClass::EdgeServer);
    let clients = builder.add_clients(6, TrafficProfile::smartphone());
    let mut sb = builder.with_duration(SimDuration::from_secs(40));
    for c in &clients {
        sb = sb.attach_policy(
            *c,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            SimTime::from_secs(2),
        );
    }
    let mut emulator = Emulator::new(sb.build());
    let report = emulator.run();
    let dashboard = Dashboard::capture(emulator.manager(), SimTime::ZERO + report.duration);
    assert_eq!(dashboard.total_stations, 4);
    assert_eq!(dashboard.online_stations, 4);
    assert_eq!(dashboard.connected_clients, 6);
    assert_eq!(dashboard.enabled_chains, 6);
    assert!(dashboard.running_nfs >= 6);
    assert!(dashboard.render_text().contains("edge-server"));
}

#[test]
fn ping_pong_roaming_produces_one_migration_per_handover() {
    let config = GnfConfig::default();
    let mut builder = Scenario::builder(2, HostClass::EdgeServer);
    let client = builder.add_client_at(gnf_edge::Position::new(5.0, 0.0), TrafficProfile::Idle);
    let trace = RoamTrace::ping_pong(
        client,
        CellId::new(0),
        CellId::new(1),
        SimTime::from_secs(30),
        SimDuration::from_secs(60),
        4,
    );
    let scenario = builder
        .with_config(config)
        .with_duration(SimDuration::from_secs(300))
        .with_mobility(Mobility::Trace(trace))
        .attach_policy(
            client,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            SimTime::from_secs(5),
        )
        .build();
    let mut emulator = Emulator::new(scenario);
    let report = emulator.run();
    assert_eq!(report.handovers, 4);
    assert_eq!(report.migrations.len(), 4);
    assert!(report.all_migrations_completed());
    // Warm migrations (images cached after the first visit) are faster than
    // the first, cold one.
    let downtimes: Vec<f64> = report
        .migrations
        .iter()
        .filter_map(|m| m.downtime_ms)
        .collect();
    assert_eq!(downtimes.len(), 4);
    let cold = downtimes[0];
    let warm_min = downtimes[1..].iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        warm_min < cold,
        "a later (warm-cache) migration should beat the first cold one: {downtimes:?}"
    );
}

#[test]
fn random_walk_fleet_keeps_every_migration_consistent() {
    let mut builder = Scenario::builder(9, HostClass::EdgeServer);
    let clients = builder.add_clients(12, TrafficProfile::Idle);
    let mut sb = builder
        .with_duration(SimDuration::from_secs(240))
        .with_mobility(Mobility::RandomWalk(RandomWalkMobility {
            mean_residence: SimDuration::from_secs(60),
            mobile_fraction: 1.0,
        }));
    for c in &clients {
        sb = sb.attach_policy(
            *c,
            vec![sample_specs()[2].clone()], // DNS load balancer
            TrafficSelector::dns_only(),
            SimTime::from_secs(2),
        );
    }
    let mut emulator = Emulator::new(sb.build());
    let report = emulator.run();
    assert!(report.handovers > 0, "random walk must produce handovers");
    // Each handover of a client with a deployed chain triggers at most one
    // migration, and in-flight ones at the end of the run are the only ones
    // allowed to be incomplete.
    assert!(report.migrations.len() as u64 <= report.handovers);
    let incomplete = report.migrations.iter().filter(|m| !m.completed).count();
    assert!(
        incomplete <= 2,
        "only migrations cut off by the end of the run may be incomplete ({incomplete})"
    );
    // No station ends up with more than one instance of the same chain.
    for site in 0..9u64 {
        if let Some(agent) = emulator.agent(gnf_types::StationId::new(site)) {
            let mut seen = std::collections::HashSet::new();
            for chain in agent.chains() {
                assert!(seen.insert(chain.chain_id), "duplicate chain on a station");
            }
        }
    }
}

#[test]
fn policy_enforcement_survives_migration() {
    // The HTTP filter blocks ads.example; verify blocked requests never come
    // back as forwarded regardless of which station serves the client.
    let config = GnfConfig::default();
    let mut builder = Scenario::builder(2, HostClass::EdgeServer);
    let client = builder.add_client_at(
        gnf_edge::Position::new(5.0, 0.0),
        TrafficProfile::WebBrowsing {
            mean_think_time: SimDuration::from_millis(400),
        },
    );
    let scenario = builder
        .with_config(config)
        .with_duration(SimDuration::from_secs(120))
        .with_mobility(Mobility::Trace(RoamTrace::new().roam(
            SimTime::from_secs(60),
            client,
            CellId::new(1),
        )))
        .attach_policy(
            client,
            vec![gnf_nf::NfSpec::new(
                "http-filter-blocked",
                gnf_nf::NfConfig::HttpFilter(gnf_nf::http_filter::HttpFilterConfig::block_hosts(
                    &["blocked.example", "cdn.example"],
                )),
            )],
            TrafficSelector::http_only(),
            SimTime::from_secs(2),
        )
        .build();
    let mut emulator = Emulator::new(scenario);
    let report = emulator.run();
    // The web workload includes ads/tracker hosts with Zipf popularity, so
    // some requests were answered with 403s — on both sides of the roam.
    assert!(
        report.packets.replied_by_nf > 0,
        "the filter answered blocked requests"
    );
    assert!(report.all_migrations_completed());
    // Critical/warning notifications about blocked URLs reached the Manager.
    assert!(report.notifications.1 + report.notifications.2 > 0);
}
