//! Property tests for the batched data plane: processing a batch must be
//! observably equivalent to processing its packets one at a time — same
//! verdicts in the same order, same NF state and statistics, same switch
//! counters — and the emulator's sharded execution must produce an
//! identical `RunReport` for any worker count.

use gnf_core::{Emulator, Scenario};
use gnf_edge::TrafficProfile;
use gnf_nf::firewall::{
    CidrV4, Firewall, FirewallConfig, FirewallRule, PortMatch, ProtocolMatch, RuleAction,
};
use gnf_nf::testing::sample_specs;
use gnf_nf::{instantiate_chain, Direction, NetworkFunction, NfContext};
use gnf_packet::{builder, Packet, PacketBatch, TcpFlags};
use gnf_switch::{SoftwareSwitch, SteeringRule, SwitchDecision, TrafficSelector};
use gnf_types::{ChainId, ClientId, GnfConfig, HostClass, MacAddr, SimDuration, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    // A small address pool so flows repeat and runs of same-flow packets
    // (the batch fast path) actually form.
    (0u8..4, 0u8..4).prop_map(|(a, b)| Ipv4Addr::new(10, 0, a, b))
}

/// Source and destination ports are drawn from one shared pool, so batches
/// regularly contain both directions of "the same flow" (same canonical
/// tuple, different exact tuple) — the shape that distinguishes a correct
/// batch memo from one that wrongly replays across directions.
const PORT_POOL: [u16; 6] = [22, 53, 80, 443, 40_001, 40_002];

fn arb_packet() -> impl Strategy<Value = Packet> {
    let mac = (0u8..3, 0u32..3).prop_map(|(ns, ix)| MacAddr::derived(ns, ix));
    (
        mac,
        arb_ip(),
        arb_ip(),
        0usize..PORT_POOL.len(),
        0usize..PORT_POOL.len(),
        any::<u8>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        0usize..5,
    )
        .prop_map(
            |(src_mac, src_ip, dst_ip, sport_ix, dport_ix, flags, payload, kind)| {
                let gw = MacAddr::derived(0xA0, 0);
                let sport = PORT_POOL[sport_ix];
                let dport = PORT_POOL[dport_ix];
                match kind {
                    0 => builder::tcp_packet(
                        src_mac,
                        gw,
                        src_ip,
                        dst_ip,
                        sport,
                        dport,
                        TcpFlags::from_byte(flags),
                        &payload,
                    ),
                    1 => builder::udp_packet(src_mac, gw, src_ip, dst_ip, sport, dport, &payload),
                    2 => builder::dns_query(
                        src_mac,
                        gw,
                        src_ip,
                        dst_ip,
                        sport,
                        sport,
                        "prop.example",
                    ),
                    3 => {
                        builder::http_get(src_mac, gw, src_ip, dst_ip, sport, "prop.example", "/x")
                    }
                    _ => builder::icmp_echo_request(src_mac, gw, src_ip, dst_ip, sport, dport),
                }
            },
        )
}

/// Deny-heavy firewall configurations: rules drawn from the same port pool
/// as the traffic (so denies, rejects and accepts all fire), with conntrack
/// both on and off and both default policies — the full deny-path surface.
fn arb_deny_firewall() -> impl Strategy<Value = FirewallConfig> {
    let rule = (
        0usize..3,               // action
        0usize..4,               // protocol constraint
        0usize..4,               // dst-port constraint kind
        0usize..PORT_POOL.len(), // port from the shared pool
        0u8..4,                  // dst CIDR octet
        any::<bool>(),           // constrain dst CIDR?
    )
        .prop_map(|(action, proto, port_kind, port_ix, octet, use_cidr)| {
            let action = [RuleAction::Drop, RuleAction::Reject, RuleAction::Accept][action];
            let port = PORT_POOL[port_ix];
            FirewallRule {
                protocol: [
                    ProtocolMatch::Any,
                    ProtocolMatch::Tcp,
                    ProtocolMatch::Udp,
                    ProtocolMatch::Icmp,
                ][proto],
                dst_port: match port_kind {
                    0 => PortMatch::Any,
                    1 => PortMatch::Exact(port),
                    2 => PortMatch::Range(port, port.saturating_add(50)),
                    _ => PortMatch::Range(1, 1023),
                },
                dst: if use_cidr {
                    CidrV4::new(Ipv4Addr::new(10, 0, octet, 0), 24)
                } else {
                    CidrV4::any()
                },
                action,
                ..FirewallRule::any(format!("deny-{proto}-{port_kind}-{port}"), action)
            }
        });
    (
        proptest::collection::vec(rule, 0..8),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(rules, drop_default, track)| FirewallConfig {
            rules,
            default_action: if drop_default {
                RuleAction::Drop
            } else {
                RuleAction::Accept
            },
            track_connections: track,
            conntrack_idle_timeout_secs: 60,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The deny-path equivalence audit: a batched firewall must produce the
    /// exact same verdicts (including drop *reasons*), per-rule hit
    /// counters, default-policy hits, statistics, conntrack state and
    /// wildcard report as per-packet processing — across deny-heavy rule
    /// sets where the batch memo replays drops, rejects and accepts for
    /// runs of same-flow packets.
    #[test]
    fn firewall_deny_batch_equals_per_packet(
        config in arb_deny_firewall(),
        packets in proptest::collection::vec(arb_packet(), 1..50),
        upstream in any::<bool>(),
    ) {
        let direction = if upstream { Direction::Ingress } else { Direction::Egress };
        let ctx = NfContext::at(SimTime::from_secs(1));

        let mut reference = Firewall::new("fw", config.clone());
        let expected: Vec<_> = packets
            .iter()
            .map(|p| reference.process(p.clone(), direction, &ctx))
            .collect();

        let mut batched = Firewall::new("fw", config);
        let verdicts = batched.process_batch(PacketBatch::from(packets), direction, &ctx);

        // Verdicts compare structurally, so drop reasons and reject replies
        // are byte-identical too.
        prop_assert_eq!(&verdicts, &expected);
        prop_assert_eq!(batched.rule_hits(), reference.rule_hits());
        prop_assert_eq!(batched.default_hits(), reference.default_hits());
        prop_assert_eq!(batched.stats(), reference.stats());
        prop_assert_eq!(batched.export_state(), reference.export_state());
        // The wildcard report after the last packet agrees — in particular
        // a batched deny run reports the same PureDrop mask/token/reason
        // the per-packet path would.
        prop_assert_eq!(batched.fields_consulted(), reference.fields_consulted());
    }

    /// Chain batch processing == per-packet processing: verdicts aligned,
    /// chain statistics and per-NF statistics identical.
    #[test]
    fn chain_batch_equals_per_packet(
        packets in proptest::collection::vec(arb_packet(), 1..50),
        upstream in any::<bool>(),
    ) {
        let direction = if upstream { Direction::Ingress } else { Direction::Egress };
        let ctx = NfContext::at(SimTime::from_secs(1));

        let mut reference = instantiate_chain("prop-chain", &sample_specs());
        let expected: Vec<_> = packets
            .iter()
            .map(|p| reference.process(p.clone(), direction, &ctx))
            .collect();

        let mut batched = instantiate_chain("prop-chain", &sample_specs());
        let verdicts = batched.process_batch(PacketBatch::from(packets), direction, &ctx);

        prop_assert_eq!(&verdicts, &expected);
        prop_assert_eq!(batched.stats(), reference.stats());
        prop_assert_eq!(batched.per_nf_stats(), reference.per_nf_stats());
        // State export (conntrack tables, buckets, counters) matches too.
        prop_assert_eq!(batched.export_state(), reference.export_state());
        // Events produced in either mode agree.
        prop_assert_eq!(batched.drain_events(), reference.drain_events());
    }

    /// Switch receive_batch == per-packet receive: expanded decision runs
    /// reproduce the per-packet decisions, and every counter agrees.
    #[test]
    fn switch_batch_equals_per_packet(
        packets in proptest::collection::vec(arb_packet(), 1..60),
        steer_all in any::<bool>(),
    ) {
        let now = SimTime::from_secs(1);
        let install = |sw: &mut SoftwareSwitch| {
            if steer_all {
                for ns in 0u8..3 {
                    for ix in 0u32..3 {
                        sw.steering_mut().install(SteeringRule {
                            client: ClientId::new(u64::from(ix)),
                            client_mac: MacAddr::derived(ns, ix),
                            selector: if ix % 2 == 0 {
                                TrafficSelector::all()
                            } else {
                                TrafficSelector::http_only()
                            },
                            chain: ChainId::new(u64::from(ix)),
                        });
                    }
                }
            }
        };
        let mut reference = SoftwareSwitch::new();
        install(&mut reference);
        let port = reference.client_port();
        let expected: Vec<SwitchDecision> = packets
            .iter()
            .map(|p| reference.receive(p, port, now).unwrap())
            .collect();

        let mut batched = SoftwareSwitch::new();
        install(&mut batched);
        let runs = batched
            .receive_batch(&PacketBatch::from(packets), batched.client_port(), now)
            .unwrap();
        let expanded: Vec<SwitchDecision> = runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.decision.clone(), r.count))
            .collect();
        prop_assert_eq!(expanded, expected);
        prop_assert_eq!(batched.flow_cache_stats(), reference.flow_cache_stats());
        prop_assert_eq!(batched.flow_cache_len(), reference.flow_cache_len());
        prop_assert_eq!(batched.mac_table_len(), reference.mac_table_len());
        for (a, b) in batched.ports().iter().zip(reference.ports()) {
            prop_assert_eq!(a.counters, b.counters);
        }
    }

    /// The emulator's sharded execution is invisible in the results: the
    /// RunReport serializes byte-identically for workers 1, 2 and 4, across
    /// seeds and traffic profiles.
    #[test]
    fn sharded_run_reports_are_identical(seed in 0u64..200, cbr in any::<bool>()) {
        let build = || {
            let config = GnfConfig::default().with_seed(seed);
            let mut builder = Scenario::builder(4, HostClass::EdgeServer).with_config(config);
            let profile = if cbr {
                TrafficProfile::ConstantBitRate { packets_per_sec: 50.0, payload_bytes: 200 }
            } else {
                TrafficProfile::smartphone()
            };
            let clients = builder.add_clients(6, profile);
            let mut sb = builder.with_duration(SimDuration::from_secs(6));
            for client in &clients {
                sb = sb.attach_policy(
                    *client,
                    vec![sample_specs()[0].clone(), sample_specs()[1].clone()],
                    TrafficSelector::all(),
                    SimTime::from_secs(1),
                );
            }
            sb.build()
        };
        let reports: Vec<String> = [1usize, 2, 4]
            .into_iter()
            .map(|workers| {
                let mut emulator = Emulator::new(build());
                emulator.set_workers(workers);
                serde_json::to_string(&emulator.run()).unwrap()
            })
            .collect();
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
    }
}

proptest! {
    // Each case runs the full scenario nine times (the shards × workers
    // matrix), so fewer cases keep the wall time in line with the
    // three-run test above.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Intra-station RSS sharding is invisible in the results: the
    /// RunReport serializes byte-identically for every combination of
    /// shards {1, 2, 4} × workers {1, 2, 4}, and all of them equal the
    /// plain unsharded single-worker run. The chain mix includes the
    /// (opaque) IDS so the sharded lanes carry real chain work, and half
    /// the clients get a different chain so multiple lanes are active.
    #[test]
    fn rss_sharded_run_reports_are_identical(seed in 0u64..200, cbr in any::<bool>()) {
        let build = || {
            let config = GnfConfig::default().with_seed(seed);
            let mut builder = Scenario::builder(4, HostClass::EdgeServer).with_config(config);
            let profile = if cbr {
                TrafficProfile::ConstantBitRate { packets_per_sec: 50.0, payload_bytes: 200 }
            } else {
                TrafficProfile::smartphone()
            };
            let clients = builder.add_clients(6, profile);
            let mut sb = builder.with_duration(SimDuration::from_secs(6));
            for (ix, client) in clients.iter().enumerate() {
                let specs = if ix % 2 == 0 {
                    vec![sample_specs()[0].clone(), sample_specs()[6].clone()]
                } else {
                    vec![sample_specs()[1].clone()]
                };
                sb = sb.attach_policy(
                    *client,
                    specs,
                    TrafficSelector::all(),
                    SimTime::from_secs(1),
                );
            }
            sb.build()
        };
        let baseline = {
            let mut emulator = Emulator::new(build());
            emulator.set_workers(1);
            serde_json::to_string(&emulator.run()).unwrap()
        };
        for workers in [1usize, 2, 4] {
            for shards in [1usize, 2, 4] {
                let mut emulator = Emulator::new(build());
                emulator.set_workers(workers);
                emulator.set_station_shards(shards);
                let report = serde_json::to_string(&emulator.run()).unwrap();
                prop_assert!(
                    report == baseline,
                    "workers={} shards={} diverged",
                    workers,
                    shards
                );
            }
        }
    }
}
