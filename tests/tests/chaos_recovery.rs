//! Recovery invariants under deterministic fault injection: the chaos
//! schedule replays byte-for-byte across the execution matrix, no stale
//! cache entry survives a crash/restart generation bump, and a migration
//! retry storm neither loses nor double-applies NF chains.

use gnf_agent::{Agent, AgentConfig};
use gnf_api::messages::AgentToManager;
use gnf_container::ImageRepository;
use gnf_core::{ChaosSpec, Emulator, FaultKind, FaultSchedule, Mobility, PartitionMode, Scenario};
use gnf_edge::{Position, RoamTrace, TrafficProfile};
use gnf_manager::{Manager, ManagerAction};
use gnf_nf::testing::sample_specs;
use gnf_switch::TrafficSelector;
use gnf_types::{
    AgentId, CellId, ClientId, GnfConfig, HostClass, MacAddr, SimDuration, SimTime, StationId,
};
use std::net::Ipv4Addr;

/// A fleet scenario with a roamer whose mid-storm handover the partition
/// below turns into a timed-out, retried migration.
fn storm_scenario(seed: u64) -> Scenario {
    let config = GnfConfig {
        seed,
        migration_deadline: SimDuration::from_secs(4),
        migration_max_retries: 4,
        migration_backoff_base: SimDuration::from_millis(500),
        migration_backoff_cap: SimDuration::from_secs(2),
        hotspot_scan_interval: SimDuration::from_secs(1),
        ..GnfConfig::default()
    };
    let mut builder = Scenario::builder(4, HostClass::EdgeServer).with_config(config);
    let clients = builder.add_clients(6, TrafficProfile::smartphone());
    let roamer = builder.add_client_at(Position::new(1.0, 1.0), TrafficProfile::smartphone());
    let mut sb = builder
        .with_duration(SimDuration::from_secs(50))
        .with_mobility(Mobility::Trace(RoamTrace::new().roam(
            SimTime::from_secs(30),
            roamer,
            CellId::new(2),
        )));
    for client in clients.iter().chain(std::iter::once(&roamer)) {
        sb = sb.attach_policy(
            *client,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            SimTime::from_secs(2),
        );
    }
    sb.build()
}

fn storm_schedule(seed: u64) -> FaultSchedule {
    let stations: Vec<StationId> = (0..4).map(StationId::new).collect();
    let spec = ChaosSpec {
        crashes: 1,
        crash_down_for: (SimDuration::from_secs(3), SimDuration::from_secs(4)),
        partitions: 1,
        partition_duration: (SimDuration::from_secs(2), SimDuration::from_secs(4)),
        churn_storms: 1,
        churn_rules: (8, 32),
        invalidation_floods: 1,
        flood_size: (1, 3),
        window: (SimTime::from_secs(10), SimTime::from_secs(19)),
    };
    let mut schedule = FaultSchedule::generate(seed, &spec, &stations);
    schedule.push(
        SimTime::from_secs(26),
        FaultKind::StationCrash {
            station: StationId::new(3),
            down_for: SimDuration::from_secs(8),
        },
    );
    schedule.push(
        SimTime::from_secs(29),
        FaultKind::LinkPartition {
            station: StationId::new(0),
            duration: SimDuration::from_secs(7),
            mode: PartitionMode::Drop,
        },
    );
    schedule
}

#[test]
fn fault_storm_reports_are_identical_across_the_execution_matrix() {
    let seed = 11;
    let run = |workers: usize, shards: usize| {
        let mut emulator = Emulator::new(storm_scenario(seed));
        emulator.set_workers(workers);
        emulator.set_station_shards(shards);
        emulator.set_fault_schedule(storm_schedule(seed));
        emulator.run()
    };

    let baseline = run(1, 1);
    assert!(baseline.chaos.crashes >= 1, "{:?}", baseline.chaos);
    assert!(
        baseline.chaos.fully_recovered(),
        "every crashed station must reconverge: {:?}",
        baseline.chaos
    );
    assert!(baseline.chaos.faults_injected >= baseline.chaos.crashes);
    assert!(baseline.packets.dropped_station_down > 0);

    let bytes = serde_json::to_string(&baseline).expect("report serializes");
    for workers in [2usize, 4] {
        for shards in [1usize, 4] {
            let other = run(workers, shards);
            assert_eq!(
                bytes,
                serde_json::to_string(&other).expect("report serializes"),
                "chaos RunReport must be byte-identical at workers={workers}, shards={shards}"
            );
        }
    }
    // And shards alone, at one worker.
    let sharded = run(1, 4);
    assert_eq!(bytes, serde_json::to_string(&sharded).unwrap());
}

#[test]
fn no_stale_cache_entry_survives_a_restart_generation_bump() {
    let station = StationId::new(0);
    let client = ClientId::new(0);
    let mut manager = Manager::new(GnfConfig::default());
    let (mut agent, register) = Agent::new(
        AgentConfig {
            agent: AgentId::new(0),
            station,
            host_class: HostClass::EdgeServer,
        },
        ImageRepository::with_standard_images(),
    );
    let mut now = SimTime::from_secs(1);
    let deliver = |manager: &mut Manager, agent: &mut Agent, msg: AgentToManager, now| {
        let mut inbox = vec![msg];
        while let Some(msg) = inbox.pop() {
            for action in manager.handle_agent_msg(station, msg, now) {
                let ManagerAction::Send { message, .. } = action;
                inbox.extend(agent.handle_manager_msg(message, now));
            }
        }
    };
    deliver(&mut manager, &mut agent, register, now);
    for msg in agent.client_associated(client, MacAddr::derived(1, 0), Ipv4Addr::new(172, 16, 0, 2))
    {
        deliver(&mut manager, &mut agent, msg, now);
    }
    let (_, actions) = manager
        .attach_chain(
            client,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            now,
        )
        .unwrap();
    for action in actions {
        let ManagerAction::Send { message, .. } = action;
        for reply in agent.handle_manager_msg(message, now) {
            deliver(&mut manager, &mut agent, reply, now);
        }
    }

    // Warm the flow cache: same flow twice, the second packet must hit.
    let packet = || {
        gnf_packet::builder::tcp_syn(
            MacAddr::derived(1, 0),
            MacAddr::derived(0xA0, 0),
            Ipv4Addr::new(172, 16, 0, 2),
            Ipv4Addr::new(203, 0, 113, 9),
            41_000,
            443,
        )
    };
    agent.process_upstream_packet(packet(), now);
    agent.process_upstream_packet(packet(), now);
    let warm = agent.flow_cache_telemetry().stats;
    assert!(warm.hits >= 1, "repeat flow must ride the cache: {warm:?}");

    // Crash: the generation bumps and every soft structure empties.
    agent.crash();
    assert_eq!(agent.generation(), 1);
    assert_eq!(agent.running_nfs(), 0);
    assert_eq!(agent.chaos_telemetry().crashes, 1);

    // Rejoin and redeploy through the Manager (re-registration resets the
    // station's attachments; the re-association drives the redeploy).
    now += SimDuration::from_secs(5);
    let register = agent.rejoin();
    deliver(&mut manager, &mut agent, register, now);
    for msg in agent.client_associated(client, MacAddr::derived(1, 0), Ipv4Addr::new(172, 16, 0, 2))
    {
        deliver(&mut manager, &mut agent, msg, now);
    }
    assert_eq!(agent.running_nfs(), 1, "the chain redeployed after rejoin");
    assert_eq!(manager.stats().station_rejoins, 1);

    // The same flow again: it MUST miss — a post-restart hit would mean a
    // pre-crash cache entry served traffic across the generation bump.
    let before = agent.flow_cache_telemetry().stats;
    agent.process_upstream_packet(packet(), now);
    let after = agent.flow_cache_telemetry().stats;
    assert_eq!(
        after.hits, before.hits,
        "no stale flow-cache hit after the restart generation bump"
    );
    assert_eq!(after.misses, before.misses + 1);
}

#[test]
fn source_crash_during_precopy_rolls_back_and_never_serves_staged_state() {
    // A pre-copy migration whose source station dies mid-transfer: the
    // roamer leaves station 0 at t=20s, the pre-copy pipeline starts, and at
    // t=20.25s — with the baseline/delta exchange still in flight — station 0
    // crashes for 8 s. The first attempt must time out and roll back; the
    // backoff retry (finding nothing serving anywhere) must redeploy on the
    // target; and no half-imported staged chain may ever end up serving
    // traffic.
    let config = GnfConfig {
        seed: 17,
        migration_precopy: true,
        migration_deadline: SimDuration::from_secs(3),
        migration_max_retries: 4,
        migration_backoff_base: SimDuration::from_millis(500),
        migration_backoff_cap: SimDuration::from_secs(2),
        hotspot_scan_interval: SimDuration::from_secs(1),
        ..GnfConfig::default()
    };
    let mut builder = Scenario::builder(4, HostClass::EdgeServer).with_config(config);
    let clients = builder.add_clients(4, TrafficProfile::smartphone());
    let roamer = clients[0]; // starts on station 0
    let mut sb = builder
        .with_duration(SimDuration::from_secs(45))
        .with_mobility(Mobility::Trace(RoamTrace::new().roam(
            SimTime::from_secs(20),
            roamer,
            CellId::new(1),
        )));
    for client in &clients {
        sb = sb.attach_policy(
            *client,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            SimTime::from_secs(2),
        );
    }
    let mut schedule = FaultSchedule::new();
    schedule.push(
        SimTime::from_secs(20) + SimDuration::from_millis(250),
        FaultKind::StationCrash {
            station: StationId::new(0),
            down_for: SimDuration::from_secs(8),
        },
    );
    let mut emulator = Emulator::new(sb.build());
    emulator.set_fault_schedule(schedule);
    let report = emulator.run();

    // The first attempt ran the pre-copy pipeline and died with the source.
    assert!(
        report.manager.migrations_timed_out >= 1,
        "the source crash must push the migration past its deadline: {:?}",
        report.manager
    );
    let rolled_back = report
        .migrations
        .iter()
        .filter(|m| m.precopy && m.outcome == "timed-out")
        .count();
    assert!(
        rolled_back >= 1,
        "a pre-copy attempt must be rolled back: {:?}",
        report.migrations
    );

    // The retry completed: the roamer's chain serves on the target.
    let completed = report
        .migrations
        .iter()
        .filter(|m| m.client == roamer.raw() && m.outcome == "complete")
        .count();
    assert!(
        completed >= 1,
        "the backoff retry must complete the move: {:?}",
        report.migrations
    );
    let attachment = emulator
        .manager()
        .attachments()
        .find(|a| a.client == roamer)
        .expect("attachment survives the crash");
    assert!(attachment.active, "the roamer's chain serves traffic");
    assert_eq!(
        attachment.station,
        Some(StationId::new(1)),
        "the retry lands the chain on the roam target"
    );

    // Exactly one live instance — the staged target copy from the aborted
    // attempt was torn down, not promoted.
    let instances = (0..4)
        .filter(|ix| {
            emulator
                .agent(StationId::new(*ix))
                .is_some_and(|agent| agent.chain(attachment.chain).is_some())
        })
        .count();
    assert_eq!(instances, 1, "the chain must exist on exactly one station");

    // No half-imported state anywhere: a staged chain either activated
    // (staged flag cleared, steering installed) or was removed with its
    // migration. Nothing may sit in the staged limbo at the end of the run.
    for ix in 0..4 {
        if let Some(agent) = emulator.agent(StationId::new(ix)) {
            for chain in agent.chains() {
                assert!(
                    !chain.staged,
                    "station {ix}: staged chain {:?} survived the rollback",
                    chain.chain_id
                );
            }
        }
    }
}

#[test]
fn migration_retry_storm_never_loses_or_double_applies_chains() {
    // Four co-located clients mass-roam from cell 0 to cell 2 while station
    // 0's control link drops everything: every checkpoint dies, every
    // migration times out and rolls back, and the backoff retries only land
    // after the heal.
    let config = GnfConfig {
        seed: 3,
        migration_deadline: SimDuration::from_secs(3),
        migration_max_retries: 4,
        migration_backoff_base: SimDuration::from_millis(500),
        migration_backoff_cap: SimDuration::from_secs(2),
        hotspot_scan_interval: SimDuration::from_secs(1),
        ..GnfConfig::default()
    };
    let mut builder = Scenario::builder(3, HostClass::EdgeServer).with_config(config);
    let movers: Vec<ClientId> = (0..4)
        .map(|ix| {
            builder.add_client_at(
                Position::new(1.0 + ix as f64, 1.0),
                TrafficProfile::smartphone(),
            )
        })
        .collect();
    let mut trace = RoamTrace::new();
    for mover in &movers {
        trace = trace.roam(SimTime::from_secs(20), *mover, CellId::new(2));
    }
    let mut sb = builder
        .with_duration(SimDuration::from_secs(45))
        .with_mobility(Mobility::Trace(trace));
    for mover in &movers {
        sb = sb.attach_policy(
            *mover,
            vec![sample_specs()[0].clone()],
            TrafficSelector::all(),
            SimTime::from_secs(2),
        );
    }
    let mut schedule = FaultSchedule::new();
    schedule.push(
        SimTime::from_secs(19),
        FaultKind::LinkPartition {
            station: StationId::new(0),
            duration: SimDuration::from_secs(8),
            mode: PartitionMode::Drop,
        },
    );
    let mut emulator = Emulator::new(sb.build());
    emulator.set_fault_schedule(schedule);
    let report = emulator.run();

    assert!(
        report.manager.migrations_timed_out >= 1,
        "the partition must push migrations past their deadline: {:?}",
        report.manager
    );
    assert!(
        report.manager.migration_retries >= 1,
        "timed-out migrations must be retried: {:?}",
        report.manager
    );
    let retried_ok = report
        .migrations
        .iter()
        .filter(|m| m.outcome == "complete" && m.attempt > 0)
        .count();
    assert!(retried_ok >= 1, "at least one retry must complete");

    // No chain lost: every mover's attachment ends active on station 2.
    for mover in &movers {
        let attachment = emulator
            .manager()
            .attachments()
            .find(|a| a.client == *mover)
            .expect("attachment survives the storm");
        assert!(attachment.active, "chain for {mover:?} serves traffic");
        assert_eq!(attachment.station, Some(StationId::new(2)));

        // No chain double-applied: exactly one agent runs it.
        let instances = (0..3)
            .filter(|ix| {
                emulator
                    .agent(StationId::new(*ix))
                    .is_some_and(|agent| agent.chain(attachment.chain).is_some())
            })
            .count();
        assert_eq!(
            instances, 1,
            "chain {:?} must exist on exactly one station",
            attachment.chain
        );
    }
}
