//! Client traffic generation.
//!
//! The demo's clients are smartphones browsing the web, resolving names and
//! streaming; the UI shows their live traffic. This module turns those
//! behaviours into seeded packet workloads: each client has a
//! [`TrafficProfile`] and a [`TrafficGenerator`] that produces the time of the
//! next packet and the packet itself (a real `gnf-packet` frame).

use crate::topology::{ClientDevice, StationSite};
use gnf_packet::{builder, Packet};
use gnf_sim::Rng;
use gnf_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The application mix a client generates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficProfile {
    /// Web browsing: DNS lookups followed by HTTP requests, Zipf-popular
    /// hosts, think times between page loads.
    WebBrowsing {
        /// Mean think time between requests.
        mean_think_time: SimDuration,
    },
    /// A constant-bit-rate stream (e.g. video or VoIP): fixed packet size and
    /// interval.
    ConstantBitRate {
        /// Packets per second.
        packets_per_sec: f64,
        /// Payload size in bytes.
        payload_bytes: usize,
    },
    /// DNS-heavy IoT-style chatter.
    DnsHeavy {
        /// Mean interval between queries.
        mean_interval: SimDuration,
    },
    /// Silent client (control-plane only).
    Idle,
}

impl TrafficProfile {
    /// A typical smartphone browsing profile.
    pub fn smartphone() -> Self {
        TrafficProfile::WebBrowsing {
            mean_think_time: SimDuration::from_millis(800),
        }
    }
}

/// A single generated packet plus the virtual time it enters the network.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedPacket {
    /// When the packet arrives at the client's station.
    pub at: SimTime,
    /// The packet itself (upstream, from the client).
    pub packet: Packet,
}

/// The set of destination hosts web traffic is spread over (Zipf popularity).
const WEB_HOSTS: [&str; 8] = [
    "www.gla.ac.uk",
    "video.example",
    "news.example",
    "social.example",
    "cdn.example",
    "blocked.example",
    "mail.example",
    "svc.edge.example",
];

/// Generates a client's upstream workload.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    profile: TrafficProfile,
    rng: Rng,
    next_src_port: u16,
    dns_id: u16,
    /// Persistent (keep-alive) HTTP connection per host rank: consecutive
    /// requests to the same host reuse the ephemeral port, like a real
    /// browser reusing a TCP connection — and like real traffic, repeated
    /// packets of these flows ride the switch's flow-cache fast path.
    http_ports: HashMap<usize, u16>,
}

impl TrafficGenerator {
    /// Creates a generator for a client with the given profile and seed
    /// stream.
    pub fn new(profile: TrafficProfile, rng: Rng) -> Self {
        TrafficGenerator {
            profile,
            rng,
            next_src_port: 40_000,
            dns_id: 1,
            http_ports: HashMap::new(),
        }
    }

    /// Generates the client's packet arrivals in `(from, until]`, given the
    /// station currently serving it (for gateway addressing).
    pub fn generate(
        &mut self,
        client: &ClientDevice,
        site: &StationSite,
        from: SimTime,
        until: SimTime,
    ) -> Vec<GeneratedPacket> {
        let mut out = Vec::new();
        let mut now = from;
        loop {
            let (delay, packet) = match self.profile {
                TrafficProfile::Idle => break,
                TrafficProfile::WebBrowsing { mean_think_time } => {
                    let delay = self.rng.exponential_duration(mean_think_time);
                    let packet = self.next_web_packet(client, site);
                    (delay, packet)
                }
                TrafficProfile::ConstantBitRate {
                    packets_per_sec,
                    payload_bytes,
                } => {
                    let delay = SimDuration::from_secs_f64(1.0 / packets_per_sec.max(0.001));
                    let packet = self.cbr_packet(client, site, payload_bytes);
                    (delay, packet)
                }
                TrafficProfile::DnsHeavy { mean_interval } => {
                    let delay = self.rng.exponential_duration(mean_interval);
                    let packet = self.dns_packet(client, site);
                    (delay, packet)
                }
            };
            now += delay.max(SimDuration::from_micros(1));
            if now > until {
                break;
            }
            out.push(GeneratedPacket { at: now, packet });
        }
        out
    }

    fn alloc_port(&mut self) -> u16 {
        let port = self.next_src_port;
        self.next_src_port = if port == u16::MAX { 40_000 } else { port + 1 };
        port
    }

    fn server_ip_for(&mut self, host_rank: usize) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, (host_rank as u8) + 10)
    }

    fn next_web_packet(&mut self, client: &ClientDevice, site: &StationSite) -> Packet {
        let rank = self.rng.zipf(WEB_HOSTS.len(), 1.1);
        let host = WEB_HOSTS[rank];
        // One third of web events are the DNS lookup, the rest the HTTP GET.
        if self.rng.chance(0.33) {
            self.dns_id = self.dns_id.wrapping_add(1);
            builder::dns_query(
                client.mac,
                site.gateway_mac,
                client.ip,
                Ipv4Addr::new(8, 8, 8, 8),
                self.alloc_port(),
                self.dns_id,
                host,
            )
        } else {
            let server = self.server_ip_for(rank);
            let path_ix = self.rng.range_inclusive(1, 50);
            let port = match self.http_ports.get(&rank) {
                Some(port) => *port,
                None => {
                    let port = self.alloc_port();
                    self.http_ports.insert(rank, port);
                    port
                }
            };
            builder::http_get(
                client.mac,
                site.gateway_mac,
                client.ip,
                server,
                port,
                host,
                &format!("/page/{path_ix}"),
            )
        }
    }

    fn cbr_packet(&mut self, client: &ClientDevice, site: &StationSite, payload: usize) -> Packet {
        builder::udp_packet(
            client.mac,
            site.gateway_mac,
            client.ip,
            Ipv4Addr::new(203, 0, 113, 200),
            5_004,
            5_004,
            &vec![0xAB; payload],
        )
    }

    fn dns_packet(&mut self, client: &ClientDevice, site: &StationSite) -> Packet {
        self.dns_id = self.dns_id.wrapping_add(1);
        let rank = self.rng.zipf(WEB_HOSTS.len(), 1.0);
        builder::dns_query(
            client.mac,
            site.gateway_mac,
            client.ip,
            Ipv4Addr::new(8, 8, 8, 8),
            self.alloc_port(),
            self.dns_id,
            WEB_HOSTS[rank],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{EdgeTopology, Position};
    use gnf_types::HostClass;

    fn fixtures() -> (EdgeTopology, ClientDevice, StationSite) {
        let mut topo = EdgeTopology::grid(1, HostClass::HomeRouter, 100.0);
        let client = topo.add_client(Position::new(1.0, 1.0), true);
        let device = topo.client(client).unwrap().clone();
        let site = topo.sites()[0].clone();
        (topo, device, site)
    }

    #[test]
    fn web_browsing_generates_dns_and_http() {
        let (_t, device, site) = fixtures();
        let mut generator = TrafficGenerator::new(TrafficProfile::smartphone(), Rng::new(11));
        let packets = generator.generate(&device, &site, SimTime::ZERO, SimTime::from_secs(60));
        assert!(
            packets.len() > 20,
            "a minute of browsing produces many packets"
        );
        assert!(packets.windows(2).all(|w| w[0].at <= w[1].at));
        let dns = packets.iter().filter(|p| p.packet.dns().is_some()).count();
        let http = packets
            .iter()
            .filter(|p| p.packet.http_request().is_some())
            .count();
        assert!(dns > 0, "expected DNS lookups");
        assert!(http > 0, "expected HTTP requests");
        // All packets originate from the client.
        assert!(packets.iter().all(|p| p.packet.src_mac() == device.mac));
    }

    #[test]
    fn cbr_traffic_is_evenly_spaced() {
        let (_t, device, site) = fixtures();
        let mut generator = TrafficGenerator::new(
            TrafficProfile::ConstantBitRate {
                packets_per_sec: 10.0,
                payload_bytes: 160,
            },
            Rng::new(3),
        );
        let packets = generator.generate(&device, &site, SimTime::ZERO, SimTime::from_secs(5));
        assert_eq!(packets.len(), 50);
        let gap = packets[1].at - packets[0].at;
        assert_eq!(gap, SimDuration::from_millis(100));
        assert!(packets.iter().all(|p| p.packet.udp().is_some()));
    }

    #[test]
    fn idle_profile_generates_nothing_and_seeds_are_reproducible() {
        let (_t, device, site) = fixtures();
        let mut idle = TrafficGenerator::new(TrafficProfile::Idle, Rng::new(1));
        assert!(idle
            .generate(&device, &site, SimTime::ZERO, SimTime::from_secs(60))
            .is_empty());

        let mut a = TrafficGenerator::new(TrafficProfile::smartphone(), Rng::new(42));
        let mut b = TrafficGenerator::new(TrafficProfile::smartphone(), Rng::new(42));
        let pa = a.generate(&device, &site, SimTime::ZERO, SimTime::from_secs(10));
        let pb = b.generate(&device, &site, SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(pa, pb);
    }

    #[test]
    fn dns_heavy_profile_is_all_dns() {
        let (_t, device, site) = fixtures();
        let mut generator = TrafficGenerator::new(
            TrafficProfile::DnsHeavy {
                mean_interval: SimDuration::from_millis(500),
            },
            Rng::new(9),
        );
        let packets = generator.generate(&device, &site, SimTime::ZERO, SimTime::from_secs(30));
        assert!(!packets.is_empty());
        assert!(packets.iter().all(|p| p.packet.dns().is_some()));
    }
}
