//! The edge topology: cells, the stations serving them, and clients.
//!
//! Fig. 1 of the paper shows a 5G edge built from many small, dense cells,
//! each backed by a compute node ranging from a home router to an edge
//! server, all managed by a central controller across a wide-area control
//! network. This module models that layout geometrically (cells on a plane)
//! so the mobility model can roam clients between adjacent cells.

use gnf_types::{
    CellId, ClientId, GnfError, GnfResult, HostClass, MacAddr, SimDuration, StationId,
};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A cell and the GNF station serving it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationSite {
    /// The station (one Agent runs here).
    pub station: StationId,
    /// The radio cell this station serves.
    pub cell: CellId,
    /// Hardware class of the station.
    pub host_class: HostClass,
    /// Where the cell is centred.
    pub position: Position,
    /// Radio coverage radius in metres.
    pub radius_m: f64,
    /// One-way latency from this station to the Manager over the control
    /// network.
    pub control_latency: SimDuration,
    /// The gateway MAC address clients see at this station.
    pub gateway_mac: MacAddr,
    /// The gateway IP address clients use at this station.
    pub gateway_ip: Ipv4Addr,
}

/// A mobile client (smartphone / UE).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientDevice {
    /// The client.
    pub client: ClientId,
    /// The client's MAC address (stable across cells).
    pub mac: MacAddr,
    /// The client's IP address (kept stable by the operator across roams,
    /// as in the paper's location-transparent service).
    pub ip: Ipv4Addr,
    /// Current position.
    pub position: Position,
    /// The cell the client is currently associated with, if any.
    pub attached_cell: Option<CellId>,
}

/// The whole edge deployment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EdgeTopology {
    sites: Vec<StationSite>,
    clients: Vec<ClientDevice>,
}

impl EdgeTopology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a square-ish grid of `cell_count` cells, `spacing_m` apart, all
    /// of the same host class.
    pub fn grid(cell_count: usize, host_class: HostClass, spacing_m: f64) -> Self {
        let mut topo = Self::new();
        let columns = (cell_count as f64).sqrt().ceil() as usize;
        for ix in 0..cell_count {
            let row = ix / columns;
            let col = ix % columns;
            topo.add_site(
                host_class,
                Position::new(col as f64 * spacing_m, row as f64 * spacing_m),
                spacing_m * 0.75,
                SimDuration::from_millis(10),
            );
        }
        topo
    }

    /// Adds a station/cell site, returning its ids.
    pub fn add_site(
        &mut self,
        host_class: HostClass,
        position: Position,
        radius_m: f64,
        control_latency: SimDuration,
    ) -> (StationId, CellId) {
        let ix = self.sites.len() as u64;
        let station = StationId::new(ix);
        let cell = CellId::new(ix);
        self.sites.push(StationSite {
            station,
            cell,
            host_class,
            position,
            radius_m,
            control_latency,
            gateway_mac: MacAddr::derived(0xA0, ix as u32),
            gateway_ip: Ipv4Addr::new(10, (ix >> 8) as u8, ix as u8, 1),
        });
        (station, cell)
    }

    /// Adds a client at a position, optionally pre-attached to the nearest
    /// cell. Returns its id.
    pub fn add_client(&mut self, position: Position, attach: bool) -> ClientId {
        let ix = self.clients.len() as u64;
        let client = ClientId::new(ix);
        let attached_cell = if attach {
            self.nearest_cell(position).map(|s| s.cell)
        } else {
            None
        };
        self.clients.push(ClientDevice {
            client,
            mac: MacAddr::derived(0x01, ix as u32),
            ip: Ipv4Addr::new(172, 16 + (ix >> 8) as u8, ix as u8, 2),
            position,
            attached_cell,
        });
        client
    }

    /// All sites.
    pub fn sites(&self) -> &[StationSite] {
        &self.sites
    }

    /// All clients.
    pub fn clients(&self) -> &[ClientDevice] {
        &self.clients
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// A site by station id.
    pub fn site(&self, station: StationId) -> GnfResult<&StationSite> {
        self.sites
            .iter()
            .find(|s| s.station == station)
            .ok_or_else(|| GnfError::not_found("station", station))
    }

    /// A site by cell id.
    pub fn site_for_cell(&self, cell: CellId) -> GnfResult<&StationSite> {
        self.sites
            .iter()
            .find(|s| s.cell == cell)
            .ok_or_else(|| GnfError::not_found("cell", cell))
    }

    /// A client by id.
    pub fn client(&self, client: ClientId) -> GnfResult<&ClientDevice> {
        self.clients
            .iter()
            .find(|c| c.client == client)
            .ok_or_else(|| GnfError::not_found("client", client))
    }

    /// A mutable client by id.
    pub fn client_mut(&mut self, client: ClientId) -> GnfResult<&mut ClientDevice> {
        self.clients
            .iter_mut()
            .find(|c| c.client == client)
            .ok_or_else(|| GnfError::not_found("client", client))
    }

    /// The site whose cell centre is nearest to `position`.
    pub fn nearest_cell(&self, position: Position) -> Option<&StationSite> {
        self.sites.iter().min_by(|a, b| {
            a.position
                .distance_to(&position)
                .partial_cmp(&b.position.distance_to(&position))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The cells adjacent to `cell` (within twice the grid spacing), nearest
    /// first — the candidates a client can roam to.
    pub fn neighbours(&self, cell: CellId) -> Vec<CellId> {
        let Ok(origin) = self.site_for_cell(cell) else {
            return Vec::new();
        };
        let mut others: Vec<(&StationSite, f64)> = self
            .sites
            .iter()
            .filter(|s| s.cell != cell)
            .map(|s| (s, s.position.distance_to(&origin.position)))
            .collect();
        others.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let Some(min_distance) = others.first().map(|(_, d)| *d) else {
            return Vec::new();
        };
        others
            .into_iter()
            .filter(|(_, d)| *d <= min_distance * 1.5 + 1e-9)
            .map(|(s, _)| s.cell)
            .collect()
    }

    /// Moves a client to a new position and re-associates it with the nearest
    /// cell. Returns `Some((old_cell, new_cell))` when the attachment changed.
    pub fn move_client(
        &mut self,
        client: ClientId,
        position: Position,
    ) -> GnfResult<Option<(Option<CellId>, CellId)>> {
        let new_cell = self
            .nearest_cell(position)
            .map(|s| s.cell)
            .ok_or_else(|| GnfError::invalid_state("topology has no cells"))?;
        let device = self.client_mut(client)?;
        device.position = position;
        let old_cell = device.attached_cell;
        if old_cell != Some(new_cell) {
            device.attached_cell = Some(new_cell);
            Ok(Some((old_cell, new_cell)))
        } else {
            Ok(None)
        }
    }

    /// Directly re-attaches a client to a cell (used by trace-driven roaming).
    pub fn attach_client(&mut self, client: ClientId, cell: CellId) -> GnfResult<Option<CellId>> {
        let position = self.site_for_cell(cell)?.position;
        let device = self.client_mut(client)?;
        let old = device.attached_cell;
        device.attached_cell = Some(cell);
        device.position = position;
        Ok(old)
    }

    /// Clients currently attached to a cell.
    pub fn clients_in_cell(&self, cell: CellId) -> Vec<ClientId> {
        self.clients
            .iter()
            .filter(|c| c.attached_cell == Some(cell))
            .map(|c| c.client)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_topology_lays_out_cells() {
        let topo = EdgeTopology::grid(9, HostClass::HomeRouter, 100.0);
        assert_eq!(topo.cell_count(), 9);
        assert_eq!(topo.sites()[0].position, Position::new(0.0, 0.0));
        assert_eq!(topo.sites()[4].position, Position::new(100.0, 100.0));
        // Every site has a distinct gateway identity.
        let macs: std::collections::HashSet<_> =
            topo.sites().iter().map(|s| s.gateway_mac).collect();
        assert_eq!(macs.len(), 9);
    }

    #[test]
    fn nearest_cell_and_neighbours() {
        let topo = EdgeTopology::grid(9, HostClass::HomeRouter, 100.0);
        let near_origin = topo.nearest_cell(Position::new(10.0, 5.0)).unwrap();
        assert_eq!(near_origin.cell, CellId::new(0));
        let neighbours = topo.neighbours(CellId::new(4)); // centre of the 3x3 grid
        assert!(neighbours.contains(&CellId::new(1)));
        assert!(neighbours.contains(&CellId::new(3)));
        assert!(neighbours.contains(&CellId::new(5)));
        assert!(neighbours.contains(&CellId::new(7)));
        assert!(!neighbours.contains(&CellId::new(4)));
    }

    #[test]
    fn clients_attach_and_roam_between_cells() {
        let mut topo = EdgeTopology::grid(4, HostClass::EdgeServer, 100.0);
        let client = topo.add_client(Position::new(5.0, 5.0), true);
        assert_eq!(
            topo.client(client).unwrap().attached_cell,
            Some(CellId::new(0))
        );
        assert_eq!(topo.clients_in_cell(CellId::new(0)), vec![client]);

        // Moving near cell 3 triggers a handover.
        let change = topo
            .move_client(client, Position::new(95.0, 95.0))
            .unwrap()
            .expect("attachment must change");
        assert_eq!(change.0, Some(CellId::new(0)));
        assert_eq!(change.1, CellId::new(3));
        // Moving within the same cell does not.
        assert!(topo
            .move_client(client, Position::new(99.0, 99.0))
            .unwrap()
            .is_none());

        // Direct attachment by cell id.
        let old = topo.attach_client(client, CellId::new(1)).unwrap();
        assert_eq!(old, Some(CellId::new(3)));
        assert_eq!(topo.clients_in_cell(CellId::new(1)), vec![client]);
    }

    #[test]
    fn lookups_of_unknown_entities_fail() {
        let topo = EdgeTopology::grid(2, HostClass::HomeRouter, 50.0);
        assert!(topo.site(StationId::new(9)).is_err());
        assert!(topo.site_for_cell(CellId::new(9)).is_err());
        assert!(topo.client(ClientId::new(0)).is_err());
        assert!(EdgeTopology::new()
            .nearest_cell(Position::default())
            .is_none());
    }
}
