//! Client mobility: the roaming events that drive NF migration.
//!
//! The demo roams smartphones between two wireless networks by hand; at scale
//! the emulator needs a mobility model. Two are provided: a deterministic
//! [`RoamTrace`] (exactly reproducing the demo's scripted handover) and a
//! seeded random-walk model over adjacent cells for fleet-scale experiments.

use crate::topology::EdgeTopology;
use gnf_sim::Rng;
use gnf_types::{CellId, ClientId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One handover: at `at`, `client` re-associates with `to_cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoamEvent {
    /// When the handover happens.
    pub at: SimTime,
    /// The roaming client.
    pub client: ClientId,
    /// The cell the client moves to.
    pub to_cell: CellId,
}

/// A mobility model produces the full schedule of handovers for a scenario.
pub trait MobilityModel {
    /// Generates every roam event up to `until`, sorted by time.
    fn schedule(&self, topology: &EdgeTopology, until: SimTime, rng: &mut Rng) -> Vec<RoamEvent>;
}

/// A scripted, fully deterministic sequence of handovers — the mobility model
/// of the paper's demo (one client walking between two access points).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoamTrace {
    events: Vec<RoamEvent>,
}

impl RoamTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a handover to the trace.
    pub fn roam(mut self, at: SimTime, client: ClientId, to_cell: CellId) -> Self {
        self.events.push(RoamEvent {
            at,
            client,
            to_cell,
        });
        self
    }

    /// A client bouncing back and forth between two cells every `period`,
    /// starting at `start`, for `count` handovers.
    pub fn ping_pong(
        client: ClientId,
        cell_a: CellId,
        cell_b: CellId,
        start: SimTime,
        period: SimDuration,
        count: usize,
    ) -> Self {
        let mut trace = Self::new();
        let mut at = start;
        for i in 0..count {
            let target = if i % 2 == 0 { cell_b } else { cell_a };
            trace.events.push(RoamEvent {
                at,
                client,
                to_cell: target,
            });
            at += period;
        }
        trace
    }

    /// The scripted events.
    pub fn events(&self) -> &[RoamEvent] {
        &self.events
    }
}

impl MobilityModel for RoamTrace {
    fn schedule(&self, _topology: &EdgeTopology, until: SimTime, _rng: &mut Rng) -> Vec<RoamEvent> {
        let mut events: Vec<RoamEvent> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.at <= until)
            .collect();
        events.sort_by_key(|e| e.at);
        events
    }
}

/// A seeded random-walk mobility model: every client independently roams to a
/// uniformly chosen *adjacent* cell after an exponentially distributed
/// residence time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalkMobility {
    /// Mean time a client stays in a cell before roaming.
    pub mean_residence: SimDuration,
    /// Fraction of clients that are mobile at all (the paper's observation is
    /// that most traffic is consumed by largely static indoor users).
    pub mobile_fraction: f64,
}

impl Default for RandomWalkMobility {
    fn default() -> Self {
        RandomWalkMobility {
            mean_residence: SimDuration::from_secs(60),
            mobile_fraction: 1.0,
        }
    }
}

impl MobilityModel for RandomWalkMobility {
    fn schedule(&self, topology: &EdgeTopology, until: SimTime, rng: &mut Rng) -> Vec<RoamEvent> {
        let mut events = Vec::new();
        for device in topology.clients() {
            let mut rng = rng.derive(&format!("mobility-client-{}", device.client.raw()));
            if !rng.chance(self.mobile_fraction) {
                continue;
            }
            let mut current_cell = match device.attached_cell {
                Some(cell) => cell,
                None => continue,
            };
            let mut now = SimTime::ZERO;
            loop {
                now += rng.exponential_duration(self.mean_residence);
                if now > until {
                    break;
                }
                let neighbours = topology.neighbours(current_cell);
                let Some(target) = rng.choose(&neighbours).copied() else {
                    break;
                };
                events.push(RoamEvent {
                    at: now,
                    client: device.client,
                    to_cell: target,
                });
                current_cell = target;
            }
        }
        events.sort_by_key(|e| (e.at, e.client));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Position;
    use gnf_types::HostClass;

    fn topology(clients: usize) -> EdgeTopology {
        let mut topo = EdgeTopology::grid(9, HostClass::HomeRouter, 100.0);
        for i in 0..clients {
            topo.add_client(Position::new(10.0 * i as f64, 10.0), true);
        }
        topo
    }

    #[test]
    fn ping_pong_trace_alternates_cells() {
        let trace = RoamTrace::ping_pong(
            ClientId::new(0),
            CellId::new(0),
            CellId::new(1),
            SimTime::from_secs(10),
            SimDuration::from_secs(30),
            4,
        );
        let events = trace.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].to_cell, CellId::new(1));
        assert_eq!(events[1].to_cell, CellId::new(0));
        assert_eq!(events[2].to_cell, CellId::new(1));
        assert_eq!(events[1].at, SimTime::from_secs(40));

        // Scheduling clips to the horizon.
        let topo = topology(1);
        let mut rng = Rng::new(1);
        let scheduled = trace.schedule(&topo, SimTime::from_secs(60), &mut rng);
        assert_eq!(scheduled.len(), 2);
    }

    #[test]
    fn random_walk_is_deterministic_per_seed_and_respects_adjacency() {
        let topo = topology(10);
        let model = RandomWalkMobility {
            mean_residence: SimDuration::from_secs(30),
            mobile_fraction: 1.0,
        };
        let until = SimTime::from_secs(600);
        let a = model.schedule(&topo, until, &mut Rng::new(7));
        let b = model.schedule(&topo, until, &mut Rng::new(7));
        let c = model.schedule(&topo, until, &mut Rng::new(8));
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(!a.is_empty());
        // Sorted by time.
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // Every target cell exists.
        for event in &a {
            assert!(topo.site_for_cell(event.to_cell).is_ok());
            assert!(event.at <= until);
        }
    }

    #[test]
    fn static_clients_never_roam() {
        let topo = topology(20);
        let model = RandomWalkMobility {
            mean_residence: SimDuration::from_secs(10),
            mobile_fraction: 0.0,
        };
        let events = model.schedule(&topo, SimTime::from_secs(3_600), &mut Rng::new(3));
        assert!(events.is_empty());
    }

    #[test]
    fn longer_horizons_produce_more_roams() {
        let topo = topology(5);
        let model = RandomWalkMobility::default();
        let short = model.schedule(&topo, SimTime::from_secs(120), &mut Rng::new(5));
        let long = model.schedule(&topo, SimTime::from_secs(1_200), &mut Rng::new(5));
        assert!(long.len() > short.len());
    }
}
