//! # gnf-edge
//!
//! The edge-infrastructure model of the GNF reproduction: the cells, stations
//! and clients of Fig. 1, the mobility models that roam clients between cells
//! (the trigger for NF migration) and the traffic generators producing the
//! packet workloads the NFs process.
//!
//! * [`topology`] — cells/stations on a plane, host classes, gateway
//!   addressing, client association and handover detection.
//! * [`mobility`] — deterministic roam traces (the demo's scripted handover)
//!   and a seeded random-walk model for fleet-scale experiments.
//! * [`traffic`] — per-client workload generation (web browsing with Zipf
//!   host popularity, constant-bit-rate streams, DNS-heavy chatter), emitting
//!   real `gnf-packet` frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mobility;
pub mod topology;
pub mod traffic;

pub use mobility::{MobilityModel, RandomWalkMobility, RoamEvent, RoamTrace};
pub use topology::{ClientDevice, EdgeTopology, Position, StationSite};
pub use traffic::{GeneratedPacket, TrafficGenerator, TrafficProfile};
