//! Notifications relayed to the provider: NF alerts (intrusion attempts,
//! blocked URLs), station lifecycle events and resource hotspots — the items
//! the paper's UI surfaces for review.

use gnf_types::{ClientId, NfInstanceId, NotificationId, SimTime, StationId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Notification severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NotificationSeverity {
    /// Routine information (NF attached, client connected).
    Info,
    /// Needs attention soon (rate limit engaged, station nearly full).
    Warning,
    /// Needs immediate attention (intrusion attempt, station offline).
    Critical,
}

/// What raised the notification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NotificationSource {
    /// Raised by an NF instance on a station.
    NetworkFunction {
        /// The reporting NF instance.
        nf: NfInstanceId,
        /// The station hosting it.
        station: StationId,
    },
    /// Raised by an Agent about its station.
    Station {
        /// The station concerned.
        station: StationId,
    },
    /// Raised by the Manager itself (e.g. hotspot detection, migration
    /// failures).
    Manager,
}

/// A single notification entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Notification {
    /// Unique identifier.
    pub id: NotificationId,
    /// When it was raised (virtual time).
    pub raised_at: SimTime,
    /// Severity class.
    pub severity: NotificationSeverity,
    /// Who raised it.
    pub source: NotificationSource,
    /// Machine-readable category (`syn-flood`, `hotspot`, `station-offline`...).
    pub category: String,
    /// Human-readable message.
    pub message: String,
    /// The client concerned, when applicable.
    pub client: Option<ClientId>,
}

/// A bounded, append-only log of notifications with per-severity counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NotificationLog {
    entries: VecDeque<Notification>,
    capacity: usize,
    next_id: u64,
    total_by_severity: [u64; 3],
    dropped: u64,
}

impl Default for NotificationLog {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl NotificationLog {
    /// Creates a log retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        NotificationLog {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            next_id: 0,
            total_by_severity: [0; 3],
            dropped: 0,
        }
    }

    /// Appends a notification, returning its assigned id.
    pub fn raise(
        &mut self,
        raised_at: SimTime,
        severity: NotificationSeverity,
        source: NotificationSource,
        category: &str,
        message: impl Into<String>,
        client: Option<ClientId>,
    ) -> NotificationId {
        let id = NotificationId::new(self.next_id);
        self.next_id += 1;
        self.total_by_severity[severity as usize] += 1;
        self.entries.push_back(Notification {
            id,
            raised_at,
            severity,
            source,
            category: category.to_string(),
            message: message.into(),
            client,
        });
        if self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        id
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries rotated out by the capacity bound (the per-severity totals
    /// still count them).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &Notification> {
        self.entries.iter()
    }

    /// The most recent `n` entries, newest first.
    pub fn recent(&self, n: usize) -> Vec<&Notification> {
        self.entries.iter().rev().take(n).collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no notifications are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total notifications ever raised with the given severity (including
    /// entries that have been rotated out).
    pub fn total(&self, severity: NotificationSeverity) -> u64 {
        self.total_by_severity[severity as usize]
    }

    /// Retained entries at or above a severity.
    pub fn at_least(&self, severity: NotificationSeverity) -> Vec<&Notification> {
        self.entries
            .iter()
            .filter(|n| n.severity >= severity)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raise(log: &mut NotificationLog, sev: NotificationSeverity, cat: &str) -> NotificationId {
        log.raise(
            SimTime::from_secs(1),
            sev,
            NotificationSource::Manager,
            cat,
            format!("{cat} happened"),
            None,
        )
    }

    #[test]
    fn notifications_get_sequential_ids() {
        let mut log = NotificationLog::new(16);
        let a = raise(&mut log, NotificationSeverity::Info, "a");
        let b = raise(&mut log, NotificationSeverity::Warning, "b");
        assert_eq!(a, NotificationId::new(0));
        assert_eq!(b, NotificationId::new(1));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn capacity_is_bounded_but_totals_keep_counting() {
        let mut log = NotificationLog::new(3);
        for _ in 0..10 {
            raise(&mut log, NotificationSeverity::Critical, "alert");
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total(NotificationSeverity::Critical), 10);
        assert_eq!(log.total(NotificationSeverity::Info), 0);
        assert_eq!(log.dropped(), 7, "rotated-out entries are counted");
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn nothing_is_dropped_below_capacity() {
        let mut log = NotificationLog::new(8);
        for _ in 0..8 {
            raise(&mut log, NotificationSeverity::Info, "ok");
        }
        assert_eq!(log.dropped(), 0);
        raise(&mut log, NotificationSeverity::Info, "overflow");
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn severity_filter_and_recent_ordering() {
        let mut log = NotificationLog::new(16);
        raise(&mut log, NotificationSeverity::Info, "info-1");
        raise(&mut log, NotificationSeverity::Warning, "warn-1");
        raise(&mut log, NotificationSeverity::Critical, "crit-1");
        assert_eq!(log.at_least(NotificationSeverity::Warning).len(), 2);
        let recent = log.recent(2);
        assert_eq!(recent[0].category, "crit-1");
        assert_eq!(recent[1].category, "warn-1");
        assert!(NotificationSeverity::Critical > NotificationSeverity::Info);
    }

    #[test]
    fn sources_carry_context() {
        let mut log = NotificationLog::new(4);
        log.raise(
            SimTime::from_secs(2),
            NotificationSeverity::Critical,
            NotificationSource::NetworkFunction {
                nf: NfInstanceId::new(7),
                station: StationId::new(3),
            },
            "syn-flood",
            "flood detected",
            Some(ClientId::new(9)),
        );
        let entry = log.entries().next().unwrap();
        assert_eq!(entry.client, Some(ClientId::new(9)));
        match &entry.source {
            NotificationSource::NetworkFunction { nf, station } => {
                assert_eq!(*nf, NfInstanceId::new(7));
                assert_eq!(*station, StationId::new(3));
            }
            other => panic!("unexpected source {other:?}"),
        }
    }
}
