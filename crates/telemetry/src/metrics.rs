//! Time-series metrics over **virtual time**: the bounded histogram, ring
//! series and fleet-sample types behind the emulator's `--metrics-out`
//! artifact.
//!
//! Everything here is driven by the emulator's virtual clock, never the host
//! clock, so a metrics artifact is a pure function of the scenario and its
//! seed: byte-identical across host worker counts, station shards and
//! migration-pool sizes, exactly like the `RunReport`.
//!
//! * [`LogHistogram`] — a log₂-bucketed, constant-memory histogram with
//!   percentile queries; the shared distribution type for switchover windows
//!   and crash-recovery times (replacing the sample-hoarding histograms those
//!   reports used to carry).
//! * [`RingSeries`] — a bounded `(time, value)` ring with a drop counter;
//!   what keeps per-station utilisation history from growing without bound.
//! * [`MetricsSeries`] — the ring of fleet-wide [`MetricsSample`] snapshots
//!   taken every `metrics_interval`, exportable as CSV.

use gnf_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Number of virtual RSS shards the sampler attributes flow-cache occupancy
/// to. Fixed (independent of the configured `station_shards`) so the metrics
/// artifact stays byte-identical across the sharding matrix.
pub const VIRTUAL_SHARDS: usize = 4;

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

/// Number of log₂ buckets: bucket `i` covers values in `[2^(i-1), 2^i)`
/// (bucket 0 covers `[0, 1)`), which spans `[0, 2^62)` — far beyond any
/// millisecond quantity an emulation produces.
const LOG_BUCKETS: usize = 63;

/// A constant-memory histogram over non-negative values (milliseconds in
/// every current use) with log₂ buckets and interpolated percentile queries.
///
/// Unlike [`gnf_sim::Histogram`], which stores every sample to answer exact
/// quantiles, this type is O(1) per record and O(1) total memory — the shape
/// a long-running emulation (or a real deployment) needs. Count, sum, min
/// and max are exact; quantiles are linearly interpolated inside the
/// matching power-of-two bucket and clamped to the observed `[min, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: [u64; LOG_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; LOG_BUCKETS],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }
}

/// Bucket index for a value: `floor(log2(v)) + 1` clamped into range, with
/// everything below 1 in bucket 0.
fn bucket_of(value: f64) -> usize {
    let v = value.max(0.0);
    if v < 1.0 {
        return 0;
    }
    let n = v as u64;
    (64 - n.leading_zeros() as usize).min(LOG_BUCKETS - 1)
}

/// Inclusive value range covered by a bucket.
fn bucket_bounds(ix: usize) -> (f64, f64) {
    if ix == 0 {
        (0.0, 1.0)
    } else {
        ((1u64 << (ix - 1)) as f64, (1u64 << ix) as f64)
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation (negative values clamp to 0).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Records a duration in milliseconds (the unit the experiment tables
    /// report).
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty). Exact.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty). Exact.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (0 when empty). Exact.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The q-quantile (0 ≤ q ≤ 1), linearly interpolated inside the matching
    /// log₂ bucket and clamped to the observed range; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank target over the cumulative bucket counts.
        let target = (q * (self.count - 1) as f64).floor() as u64 + 1;
        let mut seen = 0u64;
        for (ix, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let (lo, hi) = bucket_bounds(ix);
                // Position of the target rank inside this bucket.
                let frac = (target - seen) as f64 / n as f64;
                let value = lo + (hi - lo) * frac;
                return value.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median observation (interpolated).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th-percentile observation (interpolated).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The non-empty log₂ buckets as `(lower, upper, count)` rows — what the
    /// experiment harnesses print for distribution tables.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(ix, n)| {
                let (lo, hi) = bucket_bounds(ix);
                (lo, hi, *n)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

// ---------------------------------------------------------------------------
// RingSeries
// ---------------------------------------------------------------------------

/// A bounded `(time, value)` series: a ring buffer that drops its oldest
/// point (and counts the drop) once `capacity` is reached, so long
/// emulations cannot grow manager-side history without bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingSeries {
    points: VecDeque<(SimTime, f64)>,
    capacity: usize,
    dropped: u64,
}

impl Default for RingSeries {
    fn default() -> Self {
        RingSeries::new(1024)
    }
}

impl RingSeries {
    /// Creates an empty series bounded to `capacity` points (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSeries {
            points: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends a point, rotating out (and counting) the oldest one when the
    /// ring is full.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back((time, value));
    }

    /// The retained points, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded (or everything rotated out).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The ring bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Points rotated out by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.back().map(|(_, v)| *v)
    }

    /// Average of the retained values, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum retained value, 0 when empty.
    pub fn max(&self) -> f64 {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0f64, |a, b| a.max(b))
    }
}

// ---------------------------------------------------------------------------
// MetricsSample / MetricsSeries
// ---------------------------------------------------------------------------

/// One fleet-wide snapshot taken at a virtual-time sample boundary. Counter
/// fields are **deltas over the sample interval**; gauge fields (occupancy,
/// in-flight migrations, dead stations) are instantaneous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSample {
    /// Virtual time of the sample boundary.
    pub at: SimTime,
    /// Forwarded packets per virtual second over the interval, in kpps.
    pub kpps: f64,
    /// Packets generated during the interval.
    pub generated: u64,
    /// Packets forwarded during the interval.
    pub forwarded: u64,
    /// Packets dropped by NF verdict during the interval.
    pub dropped_by_nf: u64,
    /// Packets dropped in a migration/deploy gap during the interval.
    pub dropped_in_gap: u64,
    /// Packets bypassed (forwarded unprocessed) in a gap during the interval.
    pub bypassed_in_gap: u64,
    /// In-flight packets lost to a crashed station during the interval.
    pub dropped_station_down: u64,
    /// Exact-match flow-cache hit rate over the interval's lookups (0 when
    /// the interval saw none).
    pub flow_hit_rate: f64,
    /// Megaflow (wildcard) hit rate over the interval's probes (0 when the
    /// interval saw none).
    pub megaflow_hit_rate: f64,
    /// Exact-match cache entries resident across the fleet.
    pub flow_entries: u64,
    /// Megaflow entries resident across the fleet.
    pub megaflow_entries: u64,
    /// Migrations currently in flight (started, not yet finished).
    pub in_flight_migrations: u64,
    /// Stations currently crashed/offline.
    pub dead_stations: u64,
    /// Fleet flow-cache occupancy attributed to [`VIRTUAL_SHARDS`] fixed
    /// flow-hash shards (independent of the configured `station_shards`).
    pub shard_occupancy: [u64; VIRTUAL_SHARDS],
}

/// The ring of [`MetricsSample`]s the emulator's virtual-time sampler fills,
/// exportable as CSV. Bounded like every other history in this module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSeries {
    interval: SimDuration,
    samples: VecDeque<MetricsSample>,
    capacity: usize,
    dropped: u64,
}

impl MetricsSeries {
    /// Creates an empty series sampling every `interval`, retaining at most
    /// `capacity` samples.
    pub fn new(interval: SimDuration, capacity: usize) -> Self {
        MetricsSeries {
            interval,
            samples: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The sample interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Appends a sample, rotating out (and counting) the oldest when full.
    pub fn push(&mut self, sample: MetricsSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &MetricsSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were taken (or everything rotated out).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples rotated out by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the series as CSV with a fixed header row. All numbers are
    /// formatted deterministically (integers, or floats with a fixed number
    /// of decimals), so equal series render to identical bytes.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 + self.samples.len() * 96);
        out.push_str(
            "time_ms,kpps,generated,forwarded,dropped_by_nf,dropped_in_gap,bypassed_in_gap,\
             dropped_station_down,flow_hit_rate,megaflow_hit_rate,flow_entries,megaflow_entries,\
             in_flight_migrations,dead_stations",
        );
        for shard in 0..VIRTUAL_SHARDS {
            out.push_str(&format!(",vshard{shard}_occupancy"));
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!(
                "{:.3},{:.3},{},{},{},{},{},{},{:.4},{:.4},{},{},{},{}",
                s.at.as_millis_f64(),
                s.kpps,
                s.generated,
                s.forwarded,
                s.dropped_by_nf,
                s.dropped_in_gap,
                s.bypassed_in_gap,
                s.dropped_station_down,
                s.flow_hit_rate,
                s.megaflow_hit_rate,
                s.flow_entries,
                s.megaflow_entries,
                s.in_flight_migrations,
                s.dead_stations,
            ));
            for occ in s.shard_occupancy {
                out.push_str(&format!(",{occ}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_histogram_exact_statistics() {
        let mut h = LogHistogram::new();
        for v in [0.5, 3.0, 12.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 115.5).abs() < 1e-9);
        assert!((h.mean() - 28.875).abs() < 1e-9);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn log_histogram_quantiles_are_bucket_bounded() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        // The interpolated quantile must land within one bucket (2x) of the
        // exact value and inside the observed range.
        let median = h.median();
        assert!(
            (250.0..=1000.0).contains(&median),
            "median {median} out of range"
        );
        let p99 = h.p99();
        assert!((512.0..=1000.0).contains(&p99), "p99 {p99} out of range");
        assert!(h.quantile(0.0) >= h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn log_histogram_single_value_is_exact_everywhere() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        assert_eq!(h.median(), 42.0);
        assert_eq!(h.p99(), 42.0);
        assert_eq!(h.min(), 42.0);
        assert_eq!(h.max(), 42.0);
    }

    #[test]
    fn empty_log_histogram_is_safe() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.median(), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn log_histogram_merge_matches_single_stream() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..200 {
            let v = (i * 7 % 97) as f64;
            all.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn log_histogram_serde_roundtrip() {
        let mut h = LogHistogram::new();
        h.record(17.0);
        h.record_duration(SimDuration::from_millis(250));
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn ring_series_rotates_and_counts_drops() {
        let mut s = RingSeries::new(3);
        for i in 0..5u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.dropped(), 2);
        let points: Vec<_> = s.iter().collect();
        assert_eq!(points[0], (SimTime::from_secs(2), 2.0));
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.max(), 4.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    fn sample(at_ms: u64) -> MetricsSample {
        MetricsSample {
            at: SimTime::from_millis(at_ms),
            kpps: 1.5,
            generated: 10,
            forwarded: 9,
            dropped_by_nf: 1,
            dropped_in_gap: 0,
            bypassed_in_gap: 0,
            dropped_station_down: 0,
            flow_hit_rate: 0.75,
            megaflow_hit_rate: 0.5,
            flow_entries: 12,
            megaflow_entries: 3,
            in_flight_migrations: 1,
            dead_stations: 0,
            shard_occupancy: [3, 3, 3, 3],
        }
    }

    #[test]
    fn metrics_series_bounds_and_renders_csv() {
        let mut series = MetricsSeries::new(SimDuration::from_secs(1), 2);
        series.push(sample(1000));
        series.push(sample(2000));
        series.push(sample(3000));
        assert_eq!(series.len(), 2);
        assert_eq!(series.dropped(), 1);
        let csv = series.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 samples");
        assert!(lines[0].starts_with("time_ms,kpps,"));
        assert!(lines[0].ends_with("vshard3_occupancy"));
        assert!(lines[1].starts_with("2000.000,1.500,10,9,1,"));
        // Equal series render to identical bytes.
        let again = series.clone();
        assert_eq!(again.to_csv(), csv);
    }
}
