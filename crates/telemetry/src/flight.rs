//! The flow flight recorder: seeded flow-sampled per-packet lifecycle
//! traces, bounded by a ring buffer.
//!
//! A deterministic hash of each flow's direction-symmetric shard hash and
//! the recorder seed decides — identically on every station and in every
//! worker configuration — whether a flow is *sampled*. Sampled flows leave
//! one [`FlowRecord`] per decision run at every stage of their life:
//! ingress cache-probe path (`exact`, `megaflow-bypass`, `megaflow-drop`,
//! `slow-path`, `unsteered`), chain/NF verdict, and loss classes
//! (`gap-drop`, `gap-bypass`, `station-down`, `hairpin`) recorded by the
//! emulator. That answers "why did this flow drop during the partition"
//! post-hoc without recording every packet of every flow.

use crate::trace::{FlowRecord, TraceEvent, TraceKind, TraceScope, TraceSink};
use gnf_types::SimTime;

/// Default bound on retained flight records per recorder.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Default sampling rate: one in this many flows is recorded.
pub const DEFAULT_FLIGHT_SAMPLE_RATE: u64 = 16;

/// fmix64 finalizer (splitmix/Murmur3): decorrelates the flow hash from the
/// seed so sampling picks an unbiased 1-in-N subset of flows.
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A per-component flow flight recorder. Disabled by default (one branch on
/// the hot path, no allocation); when armed, records [`FlowRecord`]s for
/// the deterministic sample of flows into a bounded ring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecorder {
    sink: TraceSink,
    seed: u64,
    rate: u64,
}

impl FlightRecorder {
    /// Creates an armed recorder for `scope`, sampling one in `rate` flows
    /// (a rate of 1 samples every flow), retaining up to `capacity` records.
    pub fn armed(scope: TraceScope, seed: u64, rate: u64, capacity: usize) -> Self {
        FlightRecorder {
            sink: TraceSink::buffered(scope, capacity),
            seed,
            rate: rate.max(1),
        }
    }

    /// True when the recorder is armed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Deterministic sampling decision for a flow hash. False when the
    /// recorder is disabled, so call sites need no separate guard.
    #[inline]
    pub fn samples(&self, flow_hash: u64) -> bool {
        self.enabled() && fmix64(flow_hash ^ self.seed).is_multiple_of(self.rate)
    }

    /// Records one lifecycle stage of a sampled flow.
    pub fn record(&mut self, at: SimTime, record: FlowRecord) {
        self.sink.emit(at, TraceKind::Flow(record));
    }

    /// Drains the retained records for merging into a trace log.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.sink.take_events()
    }

    /// Records rotated out by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.sink.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_samples_nothing() {
        let recorder = FlightRecorder::default();
        assert!(!recorder.enabled());
        assert!(!recorder.samples(42));
    }

    #[test]
    fn sampling_is_deterministic_and_seed_dependent() {
        let a = FlightRecorder::armed(TraceScope::Station(0), 7, 4, 64);
        let b = FlightRecorder::armed(TraceScope::Station(1), 7, 4, 64);
        let c = FlightRecorder::armed(TraceScope::Station(0), 8, 4, 64);
        let sampled_a: Vec<u64> = (0..256).filter(|h| a.samples(*h)).collect();
        let sampled_b: Vec<u64> = (0..256).filter(|h| b.samples(*h)).collect();
        let sampled_c: Vec<u64> = (0..256).filter(|h| c.samples(*h)).collect();
        assert_eq!(
            sampled_a, sampled_b,
            "the same seed samples the same flows on every station"
        );
        assert_ne!(sampled_a, sampled_c, "a different seed samples differently");
        // Rate 4 over 256 hashes lands in a loose binomial band.
        assert!(
            (32..=96).contains(&sampled_a.len()),
            "1-in-4 sampling should pick roughly a quarter: {}",
            sampled_a.len()
        );
    }

    #[test]
    fn rate_one_samples_every_flow() {
        let recorder = FlightRecorder::armed(TraceScope::Run, 1, 1, 64);
        assert!((0..64).all(|h| recorder.samples(h)));
    }

    #[test]
    fn records_ride_the_bounded_ring() {
        let mut recorder = FlightRecorder::armed(TraceScope::Station(2), 1, 1, 2);
        for i in 0..3u64 {
            recorder.record(
                SimTime::from_secs(i),
                FlowRecord {
                    station: 2,
                    flow: i,
                    tuple: String::new(),
                    stage: "exact",
                    verdict: "forwarded",
                    count: 1,
                },
            );
        }
        assert_eq!(recorder.dropped(), 1);
        let events = recorder.take_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0].kind,
            TraceKind::Flow(FlowRecord { flow: 1, .. })
        ));
    }
}
