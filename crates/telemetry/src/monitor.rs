//! The Manager-side monitoring store: per-station health derived from the
//! stream of Agent reports, offline detection based on missed reports, and
//! resource-hotspot detection ("the part of the infrastructure that should be
//! upgraded").

use crate::metrics::RingSeries;
use crate::report::StationReport;
use gnf_types::{SimDuration, SimTime, StationId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Liveness status of a station as seen by the Manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StationStatus {
    /// Reports are arriving on schedule.
    Online,
    /// At least one report interval has been missed.
    Degraded,
    /// Enough reports have been missed to consider the station gone.
    Offline,
}

/// Per-station health record maintained by the monitoring store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StationHealth {
    /// The station concerned.
    pub station: StationId,
    /// The most recent report, if any has ever arrived.
    pub last_report: Option<StationReport>,
    /// When the most recent report arrived.
    pub last_seen: Option<SimTime>,
    /// Liveness status.
    pub status: StationStatus,
    /// History of the dominant-utilisation fraction over time, bounded to
    /// [`UTILISATION_HISTORY_CAPACITY`] points (oldest rotated out and
    /// counted) so long emulations cannot grow Manager memory without bound.
    pub utilisation_history: RingSeries,
    /// Total reports received.
    pub reports_received: u64,
}

/// Retained utilisation-history points per station.
pub const UTILISATION_HISTORY_CAPACITY: usize = 1024;

impl StationHealth {
    fn new(station: StationId) -> Self {
        StationHealth {
            station,
            last_report: None,
            last_seen: None,
            status: StationStatus::Offline,
            utilisation_history: RingSeries::new(UTILISATION_HISTORY_CAPACITY),
            reports_received: 0,
        }
    }
}

/// The monitoring store fed by Agent reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitoringStore {
    stations: BTreeMap<StationId, StationHealth>,
    report_interval: SimDuration,
    missed_for_offline: u32,
}

impl MonitoringStore {
    /// Creates a store expecting one report per `report_interval` from every
    /// station, declaring a station offline after `missed_for_offline`
    /// consecutive missed intervals.
    pub fn new(report_interval: SimDuration, missed_for_offline: u32) -> Self {
        MonitoringStore {
            stations: BTreeMap::new(),
            report_interval,
            missed_for_offline: missed_for_offline.max(1),
        }
    }

    /// Registers a station so its (lack of) reports is tracked.
    pub fn register_station(&mut self, station: StationId) {
        self.stations
            .entry(station)
            .or_insert_with(|| StationHealth::new(station));
    }

    /// Ingests a report from an Agent.
    pub fn ingest(&mut self, report: StationReport, received_at: SimTime) {
        let health = self
            .stations
            .entry(report.station)
            .or_insert_with(|| StationHealth::new(report.station));
        health.reports_received += 1;
        health.last_seen = Some(received_at);
        health.status = StationStatus::Online;
        health
            .utilisation_history
            .push(received_at, report.dominant_utilisation());
        health.last_report = Some(report);
    }

    /// Re-evaluates liveness at `now`, returning the stations whose status
    /// *changed* to offline in this pass (so the Manager can raise one
    /// notification per transition).
    pub fn refresh_liveness(&mut self, now: SimTime) -> Vec<StationId> {
        let mut newly_offline = Vec::new();
        for health in self.stations.values_mut() {
            let Some(last_seen) = health.last_seen else {
                // Never reported: stays Offline.
                continue;
            };
            let silent_for = now.duration_since(last_seen);
            let missed = (silent_for.as_nanos() / self.report_interval.as_nanos().max(1)) as u32;
            let new_status = if missed == 0 {
                StationStatus::Online
            } else if missed < self.missed_for_offline {
                StationStatus::Degraded
            } else {
                StationStatus::Offline
            };
            if new_status == StationStatus::Offline && health.status != StationStatus::Offline {
                newly_offline.push(health.station);
            }
            health.status = new_status;
        }
        newly_offline
    }

    /// The health record of one station.
    pub fn station(&self, station: StationId) -> Option<&StationHealth> {
        self.stations.get(&station)
    }

    /// All health records.
    pub fn stations(&self) -> impl Iterator<Item = &StationHealth> {
        self.stations.values()
    }

    /// Number of tracked stations.
    pub fn len(&self) -> usize {
        self.stations.len()
    }

    /// True when no station is tracked.
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Number of stations currently online.
    pub fn online_count(&self) -> usize {
        self.stations
            .values()
            .filter(|h| h.status == StationStatus::Online)
            .count()
    }

    /// Sum of connected clients over the latest reports.
    pub fn connected_clients(&self) -> usize {
        self.stations
            .values()
            .filter_map(|h| h.last_report.as_ref())
            .map(|r| r.connected_clients.len())
            .sum()
    }

    /// Sum of running NFs over the latest reports.
    pub fn running_nfs(&self) -> usize {
        self.stations
            .values()
            .filter_map(|h| h.last_report.as_ref())
            .map(|r| r.running_nfs)
            .sum()
    }
}

/// Detects resource hotspots over the monitoring store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotspotDetector {
    /// Dominant-utilisation fraction at or above which a station is flagged.
    pub threshold: f64,
}

impl HotspotDetector {
    /// Creates a detector with the given threshold.
    pub fn new(threshold: f64) -> Self {
        HotspotDetector { threshold }
    }

    /// Returns the stations whose latest report exceeds the threshold,
    /// together with their dominant utilisation, most loaded first.
    pub fn hotspots(&self, store: &MonitoringStore) -> Vec<(StationId, f64)> {
        let mut result: Vec<(StationId, f64)> = store
            .stations()
            .filter_map(|h| h.last_report.as_ref())
            .map(|r| (r.station, r.dominant_utilisation()))
            .filter(|(_, util)| *util >= self.threshold)
            .collect();
        result.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_types::{AgentId, ClientId, HostClass, ResourceUsage};

    fn report(station: u64, cpu: f64, at: SimTime) -> StationReport {
        StationReport {
            station: StationId::new(station),
            agent: AgentId::new(station),
            produced_at: at,
            host_class: HostClass::EdgeServer,
            capacity: HostClass::EdgeServer.capacity(),
            usage: ResourceUsage {
                cpu_fraction: cpu,
                memory_mb: 100,
                disk_mb: 10,
                rx_bps: 0.0,
                tx_bps: 0.0,
            },
            connected_clients: vec![ClientId::new(station * 10)],
            running_nfs: 2,
            cached_images: 1,
            flow_cache: Default::default(),
            megaflow: Default::default(),
            batches: Default::default(),
            shards: Vec::new(),
            chaos: Default::default(),
        }
    }

    fn store() -> MonitoringStore {
        MonitoringStore::new(SimDuration::from_secs(2), 3)
    }

    #[test]
    fn ingest_marks_stations_online_and_tracks_history() {
        let mut store = store();
        store.ingest(report(1, 0.3, SimTime::from_secs(2)), SimTime::from_secs(2));
        store.ingest(report(1, 0.5, SimTime::from_secs(4)), SimTime::from_secs(4));
        let health = store.station(StationId::new(1)).unwrap();
        assert_eq!(health.status, StationStatus::Online);
        assert_eq!(health.reports_received, 2);
        assert_eq!(health.utilisation_history.len(), 2);
        assert_eq!(store.online_count(), 1);
        assert_eq!(store.connected_clients(), 1);
        assert_eq!(store.running_nfs(), 2);
    }

    #[test]
    fn utilisation_history_is_bounded_with_drop_accounting() {
        let mut store = store();
        let n = UTILISATION_HISTORY_CAPACITY as u64 + 5;
        for i in 0..n {
            let t = SimTime::from_secs(2 * (i + 1));
            store.ingest(report(1, 0.5, t), t);
        }
        let health = store.station(StationId::new(1)).unwrap();
        assert_eq!(health.reports_received, n, "totals keep counting");
        assert_eq!(
            health.utilisation_history.len(),
            UTILISATION_HISTORY_CAPACITY,
            "history is bounded"
        );
        assert_eq!(
            health.utilisation_history.dropped(),
            5,
            "rotated-out points are accounted"
        );
    }

    #[test]
    fn missed_reports_degrade_then_offline() {
        let mut store = store();
        store.ingest(report(1, 0.3, SimTime::from_secs(2)), SimTime::from_secs(2));
        // One missed interval → degraded.
        assert!(store.refresh_liveness(SimTime::from_secs(5)).is_empty());
        assert_eq!(
            store.station(StationId::new(1)).unwrap().status,
            StationStatus::Degraded
        );
        // Three missed intervals → offline, reported exactly once.
        let newly = store.refresh_liveness(SimTime::from_secs(9));
        assert_eq!(newly, vec![StationId::new(1)]);
        assert!(store.refresh_liveness(SimTime::from_secs(20)).is_empty());
        // A fresh report brings it back online.
        store.ingest(
            report(1, 0.2, SimTime::from_secs(21)),
            SimTime::from_secs(21),
        );
        assert_eq!(
            store.station(StationId::new(1)).unwrap().status,
            StationStatus::Online
        );
    }

    #[test]
    fn registered_but_silent_stations_stay_offline() {
        let mut store = store();
        store.register_station(StationId::new(9));
        assert_eq!(
            store.station(StationId::new(9)).unwrap().status,
            StationStatus::Offline
        );
        assert!(store.refresh_liveness(SimTime::from_secs(100)).is_empty());
        assert_eq!(store.len(), 1);
        assert_eq!(store.online_count(), 0);
    }

    #[test]
    fn hotspot_detection_flags_only_overloaded_stations() {
        let mut store = store();
        let t = SimTime::from_secs(10);
        store.ingest(report(1, 0.95, t), t);
        store.ingest(report(2, 0.40, t), t);
        store.ingest(report(3, 0.88, t), t);
        let detector = HotspotDetector::new(0.85);
        let hotspots = detector.hotspots(&store);
        assert_eq!(hotspots.len(), 2);
        assert_eq!(hotspots[0].0, StationId::new(1), "most loaded first");
        assert_eq!(hotspots[1].0, StationId::new(3));
        assert!(HotspotDetector::new(0.99).hotspots(&store).is_empty());
    }
}
