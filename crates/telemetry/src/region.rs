//! Hierarchical telemetry aggregation: per-region rollups before the Manager.
//!
//! At fleet scale one manager event loop should not ingest every station's
//! report directly. A [`RegionAggregator`] sits between a region's agents and
//! the Manager: it accepts full or delta-encoded station reports (it embeds a
//! [`ReportReassembler`], so the wire format
//! is transparent), tracks per-station freshness, and periodically emits one
//! [`RegionSummary`] — merged data-plane counters, resource totals, hotspot
//! candidates and offline stations — so the Manager observes thousands of
//! stations through a handful of region feeds.

use crate::delta::{DeltaReject, ReportReassembler};
use crate::report::{
    BatchTelemetry, ChaosTelemetry, FlowCacheTelemetry, MegaflowTelemetry, StationReport,
};
use crate::ReportDelta;
use gnf_types::{ResourceSpec, SimDuration, SimTime, StationId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One region's rolled-up view of its stations, produced by a
/// [`RegionAggregator`] and ingested by the Manager in place of the
/// individual station reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSummary {
    /// Region identifier.
    pub region: u64,
    /// Virtual time the summary was produced.
    pub produced_at: SimTime,
    /// Stations assigned to this region.
    pub stations: usize,
    /// Stations that have reported at least once.
    pub reporting: usize,
    /// Reports ingested by the aggregator since creation.
    pub reports_ingested: u64,
    /// Summed capacity of the reporting stations.
    pub capacity: ResourceSpec,
    /// Mean CPU utilisation fraction across reporting stations.
    pub mean_cpu_fraction: f64,
    /// Connected clients across the region.
    pub connected_clients: usize,
    /// Running NF instances across the region.
    pub running_nfs: usize,
    /// Merged exact-match flow-cache counters.
    pub flow_cache: FlowCacheTelemetry,
    /// Merged megaflow counters.
    pub megaflow: MegaflowTelemetry,
    /// Merged batch-size distribution.
    pub batches: BatchTelemetry,
    /// Merged chaos counters.
    pub chaos: ChaosTelemetry,
    /// Stations over the hotspot threshold, most loaded first, with their
    /// dominant utilisation fraction.
    pub hotspots: Vec<(StationId, f64)>,
    /// Stations that reported before but have now been silent for the
    /// offline threshold.
    pub offline: Vec<StationId>,
}

#[derive(Debug, Clone, Default)]
struct StationSlot {
    last_report: Option<StationReport>,
    last_seen: Option<SimTime>,
    reports: u64,
}

/// Rolls a region's station reports up into [`RegionSummary`] snapshots.
///
/// The aggregator accepts both wire formats — full [`StationReport`]s and
/// [`ReportDelta`] streams — and applies the same freshness rules as the
/// Manager's own monitoring store (a station is offline after
/// `missed_for_offline` silent report intervals; stations that never
/// reported are counted but not alarmed).
#[derive(Debug, Clone)]
pub struct RegionAggregator {
    region: u64,
    hotspot_threshold: f64,
    report_interval: SimDuration,
    missed_for_offline: u32,
    reassembler: ReportReassembler,
    slots: BTreeMap<StationId, StationSlot>,
    reports_ingested: u64,
}

impl RegionAggregator {
    /// Creates an aggregator for `region` with the fleet's monitoring
    /// parameters (the same values the Manager's monitoring store uses).
    pub fn new(
        region: u64,
        hotspot_threshold: f64,
        report_interval: SimDuration,
        missed_for_offline: u32,
    ) -> Self {
        RegionAggregator {
            region,
            hotspot_threshold,
            report_interval,
            missed_for_offline,
            reassembler: ReportReassembler::new(),
            slots: BTreeMap::new(),
            reports_ingested: 0,
        }
    }

    /// Region identifier.
    pub fn region(&self) -> u64 {
        self.region
    }

    /// Assigns a station to this region (idempotent).
    pub fn register_station(&mut self, station: StationId) {
        self.slots.entry(station).or_default();
    }

    /// Stations assigned to this region.
    pub fn stations(&self) -> usize {
        self.slots.len()
    }

    /// Ingests a full station report.
    pub fn ingest_report(&mut self, report: StationReport, at: SimTime) {
        let slot = self.slots.entry(report.station).or_default();
        slot.last_seen = Some(at);
        slot.reports += 1;
        slot.last_report = Some(report);
        self.reports_ingested += 1;
    }

    /// Ingests a delta frame, reconstructing the full report through the
    /// embedded reassembler. Stale or reordered frames are dropped (and
    /// counted); the error is returned for callers that track rejects.
    pub fn ingest_delta(&mut self, delta: &ReportDelta, at: SimTime) -> Result<(), DeltaReject> {
        let report = self.reassembler.apply(delta)?;
        self.ingest_report(report, at);
        Ok(())
    }

    /// Receiver-side delta protocol counters.
    pub fn reassembler_stats(&self) -> crate::delta::ReassemblerStats {
        self.reassembler.stats()
    }

    /// Produces the region's rollup as of `now`.
    pub fn summary(&self, now: SimTime) -> RegionSummary {
        let mut summary = RegionSummary {
            region: self.region,
            produced_at: now,
            stations: self.slots.len(),
            reporting: 0,
            reports_ingested: self.reports_ingested,
            capacity: ResourceSpec::ZERO,
            mean_cpu_fraction: 0.0,
            connected_clients: 0,
            running_nfs: 0,
            flow_cache: FlowCacheTelemetry::default(),
            megaflow: MegaflowTelemetry::default(),
            batches: BatchTelemetry::default(),
            chaos: ChaosTelemetry::default(),
            hotspots: Vec::new(),
            offline: Vec::new(),
        };
        let offline_after = SimDuration::from_nanos(
            self.report_interval.as_nanos() * u64::from(self.missed_for_offline),
        );
        let mut cpu_sum = 0.0;
        for (&station, slot) in &self.slots {
            let Some(report) = &slot.last_report else {
                // Never reported: counted in `stations` but not alarmed,
                // mirroring the monitoring store's liveness rule.
                continue;
            };
            summary.reporting += 1;
            summary.capacity += report.capacity;
            cpu_sum += report.usage.cpu_fraction;
            summary.connected_clients += report.connected_clients.len();
            summary.running_nfs += report.running_nfs;
            summary.flow_cache.merge(&report.flow_cache);
            summary.megaflow.merge(&report.megaflow);
            summary.batches.merge(&report.batches);
            summary.chaos.merge(&report.chaos);
            if report.is_hotspot(self.hotspot_threshold) {
                summary
                    .hotspots
                    .push((station, report.dominant_utilisation()));
            }
            if let Some(last_seen) = slot.last_seen {
                if now.duration_since(last_seen) >= offline_after {
                    summary.offline.push(station);
                }
            }
        }
        if summary.reporting > 0 {
            summary.mean_cpu_fraction = cpu_sum / summary.reporting as f64;
        }
        summary
            .hotspots
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaEncoder;
    use gnf_types::{AgentId, ClientId, HostClass, ResourceUsage};

    fn report(station: u64, cpu: f64, at: SimTime) -> StationReport {
        StationReport {
            station: StationId::new(station),
            agent: AgentId::new(station),
            produced_at: at,
            host_class: HostClass::EdgeServer,
            capacity: HostClass::EdgeServer.capacity(),
            usage: ResourceUsage {
                cpu_fraction: cpu,
                memory_mb: 100,
                disk_mb: 100,
                rx_bps: 0.0,
                tx_bps: 0.0,
            },
            connected_clients: vec![ClientId::new(station * 10)],
            running_nfs: 2,
            cached_images: 1,
            flow_cache: FlowCacheTelemetry {
                stats: Default::default(),
                entries: 5,
            },
            megaflow: MegaflowTelemetry::default(),
            batches: BatchTelemetry::default(),
            shards: Vec::new(),
            chaos: ChaosTelemetry::default(),
        }
    }

    fn aggregator() -> RegionAggregator {
        RegionAggregator::new(0, 0.85, SimDuration::from_secs(2), 3)
    }

    #[test]
    fn summary_merges_reports_and_flags_hotspots() {
        let mut agg = aggregator();
        for s in 0..4u64 {
            agg.register_station(StationId::new(s));
        }
        let at = SimTime::from_secs(2);
        for s in 0..3u64 {
            let cpu = if s == 2 { 0.95 } else { 0.30 };
            agg.ingest_report(report(s, cpu, at), at);
        }
        let summary = agg.summary(SimTime::from_secs(3));
        assert_eq!(summary.stations, 4);
        assert_eq!(summary.reporting, 3);
        assert_eq!(summary.connected_clients, 3);
        assert_eq!(summary.running_nfs, 6);
        assert_eq!(summary.flow_cache.entries, 15);
        assert_eq!(summary.hotspots, vec![(StationId::new(2), 0.95)]);
        assert!(summary.offline.is_empty());
        assert!((summary.mean_cpu_fraction - (0.3 + 0.3 + 0.95) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn silent_station_goes_offline_but_never_reported_does_not() {
        let mut agg = aggregator();
        agg.register_station(StationId::new(0));
        agg.register_station(StationId::new(1));
        agg.ingest_report(report(0, 0.2, SimTime::from_secs(2)), SimTime::from_secs(2));
        // 3 missed intervals of 2s → offline at 8s.
        let summary = agg.summary(SimTime::from_secs(9));
        assert_eq!(summary.offline, vec![StationId::new(0)]);
        // Station 1 never reported: counted, not alarmed.
        assert_eq!(summary.stations, 2);
        assert_eq!(summary.reporting, 1);
    }

    #[test]
    fn aggregator_accepts_delta_streams() {
        let mut agg = aggregator();
        let mut encoder = DeltaEncoder::new(4);
        let at = SimTime::from_secs(2);
        let first = report(5, 0.4, at);
        agg.ingest_delta(&encoder.encode(&first), at).unwrap();
        let mut second = report(5, 0.9, SimTime::from_secs(4));
        second.running_nfs = 7;
        agg.ingest_delta(&encoder.encode(&second), SimTime::from_secs(4))
            .unwrap();
        let summary = agg.summary(SimTime::from_secs(5));
        assert_eq!(summary.reporting, 1);
        assert_eq!(summary.running_nfs, 7);
        assert_eq!(summary.hotspots.len(), 1);
        assert_eq!(agg.reassembler_stats().keyframes, 1);
        assert_eq!(agg.reassembler_stats().deltas_applied, 1);
    }
}
