//! Virtual-time event tracing: typed spans/instants emitted by the Manager,
//! the Agents, the switch layer and the emulator, merged deterministically
//! and exported as Chrome `trace_event` JSON or CSV.
//!
//! ## Sink model
//!
//! Every emitting component owns a [`TraceSink`] — an enum with exactly two
//! states. `Disabled` (the default) is a single branch on the hot path: no
//! allocation, no buffering, nothing to merge. `Buffered` records
//! [`TraceEvent`]s into a bounded per-scope ring with its own monotone
//! sequence counter.
//!
//! ## Determinism argument
//!
//! Events carry virtual timestamps and per-scope sequence numbers assigned
//! in emission order. Each scope (the run loop, the Manager, one station) is
//! driven deterministically by the event queue regardless of how many host
//! threads execute the work, so each scope's event list is reproducible;
//! the final merge sorts by `(timestamp, scope, seq)`, which is a total
//! order independent of thread interleaving. The exported artifacts are
//! therefore byte-identical across worker/shard/pool configurations, same
//! as the `RunReport`.

use gnf_types::SimTime;
use std::collections::VecDeque;

/// Which component emitted an event. Part of the deterministic merge key
/// and the Chrome `tid` an event renders under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceScope {
    /// The emulator's run loop (faults, recovery windows, loss classes).
    Run,
    /// The Manager (migration lifecycle).
    Manager,
    /// One station's Agent + switch data plane.
    Station(u64),
}

impl TraceScope {
    /// The Chrome `tid` this scope renders under.
    fn tid(&self) -> u64 {
        match self {
            TraceScope::Run => 0,
            TraceScope::Manager => 1,
            TraceScope::Station(n) => 10 + n,
        }
    }

    /// Stable label used by the CSV export.
    fn label(&self) -> String {
        match self {
            TraceScope::Run => "run".to_string(),
            TraceScope::Manager => "manager".to_string(),
            TraceScope::Station(n) => format!("station-{n}"),
        }
    }
}

/// One sampled flow-lifecycle record from the flight recorder: which cache
/// path the flow's packets took and what verdict they met.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Station whose data plane handled (or lost) the packets.
    pub station: u64,
    /// Direction-symmetric flow hash (the sampling key).
    pub flow: u64,
    /// Human-readable five-tuple.
    pub tuple: String,
    /// Cache probe path: `exact`, `megaflow-bypass`, `megaflow-drop`,
    /// `slow-path`, `unsteered`, `gap-drop`, `gap-bypass`, `station-down`
    /// or `hairpin`.
    pub stage: &'static str,
    /// Outcome: `forwarded`, `dropped`, `replied` or `lost`.
    pub verdict: &'static str,
    /// Packets of the flow covered by this record (one decision run).
    pub count: u64,
}

/// A typed trace event. Spans carry the virtual time their window opened
/// (`since`); the event's own timestamp is the window close.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A migration spent `[since, at]` in phase `phase`.
    MigrationPhase {
        /// Migration id.
        migration: u64,
        /// Roaming client.
        client: u64,
        /// Phase name (`PreCopy`, `Prepare`, `Delta`, `Activate`, ...).
        phase: &'static str,
        /// When the migration entered the phase.
        since: SimTime,
    },
    /// A migration reached a terminal outcome.
    MigrationOutcome {
        /// Migration id.
        migration: u64,
        /// Roaming client.
        client: u64,
        /// `complete`, `failed` or `timed-out`.
        outcome: &'static str,
        /// Retry attempt the outcome landed on.
        attempt: u64,
    },
    /// A chaos fault fired at a station.
    Fault {
        /// Target station.
        station: u64,
        /// `crash`, `restart`, `steering-churn` or `cache-invalidation`.
        kind: &'static str,
        /// Fault magnitude (down-time ms, rules churned, floods, ...).
        detail: u64,
    },
    /// Crash→reconvergence recovery window of one station (span; `since` is
    /// the restart, `at` the instant every owed chain was active again).
    RecoveryWindow {
        /// The recovered station.
        station: u64,
        /// When the station rejoined.
        since: SimTime,
    },
    /// A control-link partition window (span emitted at injection; `at` is
    /// the heal time).
    PartitionWindow {
        /// The partitioned station.
        station: u64,
        /// `drop` or `delay`.
        mode: &'static str,
        /// When the partition started.
        since: SimTime,
    },
    /// A megaflow entry was sealed into the wildcard cache.
    MegaflowSeal {
        /// `forward`, `drop` or `decision` (chain-opaque).
        outcome: &'static str,
        /// Wildcard entries resident after the install.
        occupancy: u64,
    },
    /// The wildcard cache evicted entries to honour its capacity bound.
    MegaflowEvict {
        /// Entries evicted by this install.
        evicted: u64,
        /// Wildcard entries resident afterwards.
        occupancy: u64,
    },
    /// A data-plane batch was flushed through a station pipeline.
    BatchFlush {
        /// Packets in the batch.
        packets: u64,
        /// Run-length-grouped decision runs the batch split into.
        runs: u64,
    },
    /// A flow flight-recorder sample.
    Flow(FlowRecord),
}

impl TraceKind {
    /// Chrome `cat` of the event.
    pub fn category(&self) -> &'static str {
        match self {
            TraceKind::MigrationPhase { .. } | TraceKind::MigrationOutcome { .. } => "migration",
            TraceKind::Fault { .. } | TraceKind::PartitionWindow { .. } => "chaos",
            TraceKind::RecoveryWindow { .. } => "recovery",
            TraceKind::MegaflowSeal { .. } | TraceKind::MegaflowEvict { .. } => "megaflow",
            TraceKind::BatchFlush { .. } => "batch",
            TraceKind::Flow(_) => "flight",
        }
    }

    /// Chrome `name` of the event.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::MigrationPhase { phase, .. } => phase,
            TraceKind::MigrationOutcome { outcome, .. } => outcome,
            TraceKind::Fault { kind, .. } => kind,
            TraceKind::RecoveryWindow { .. } => "recovery",
            TraceKind::PartitionWindow { .. } => "partition",
            TraceKind::MegaflowSeal { .. } => "seal",
            TraceKind::MegaflowEvict { .. } => "evict",
            TraceKind::BatchFlush { .. } => "flush",
            TraceKind::Flow(record) => record.stage,
        }
    }

    /// When the event is a span, the virtual time its window opened.
    pub fn span_since(&self) -> Option<SimTime> {
        match self {
            TraceKind::MigrationPhase { since, .. }
            | TraceKind::RecoveryWindow { since, .. }
            | TraceKind::PartitionWindow { since, .. } => Some(*since),
            _ => None,
        }
    }

    /// The event's argument list as `(key, value)` rows; string values are
    /// rendered verbatim (escaped by the exporters).
    fn args(&self) -> Vec<(&'static str, ArgValue<'_>)> {
        use ArgValue::{Num, Str};
        match self {
            TraceKind::MigrationPhase {
                migration, client, ..
            } => vec![("migration", Num(*migration)), ("client", Num(*client))],
            TraceKind::MigrationOutcome {
                migration,
                client,
                attempt,
                ..
            } => vec![
                ("migration", Num(*migration)),
                ("client", Num(*client)),
                ("attempt", Num(*attempt)),
            ],
            TraceKind::Fault {
                station, detail, ..
            } => vec![("station", Num(*station)), ("detail", Num(*detail))],
            TraceKind::RecoveryWindow { station, .. } => vec![("station", Num(*station))],
            TraceKind::PartitionWindow { station, mode, .. } => {
                vec![("station", Num(*station)), ("mode", Str(mode))]
            }
            TraceKind::MegaflowSeal { outcome, occupancy } => {
                vec![("outcome", Str(outcome)), ("occupancy", Num(*occupancy))]
            }
            TraceKind::MegaflowEvict { evicted, occupancy } => {
                vec![("evicted", Num(*evicted)), ("occupancy", Num(*occupancy))]
            }
            TraceKind::BatchFlush { packets, runs } => {
                vec![("packets", Num(*packets)), ("runs", Num(*runs))]
            }
            TraceKind::Flow(r) => vec![
                ("flow", Num(r.flow)),
                ("tuple", Str(&r.tuple)),
                ("verdict", Str(r.verdict)),
                ("count", Num(r.count)),
            ],
        }
    }
}

enum ArgValue<'a> {
    Num(u64),
    Str(&'a str),
}

/// One recorded event: virtual timestamp, emitting scope, per-scope
/// sequence number and typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event (spans: the window close).
    pub at: SimTime,
    /// Emitting scope.
    pub scope: TraceScope,
    /// Per-scope emission sequence number.
    pub seq: u64,
    /// Typed payload.
    pub kind: TraceKind,
}

impl TraceEvent {
    fn sort_key(&self) -> (u64, TraceScope, u64) {
        (self.at.as_nanos(), self.scope, self.seq)
    }
}

/// The bounded per-scope buffer behind an enabled [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    scope: TraceScope,
    events: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// An enum-dispatch trace sink: [`TraceSink::Disabled`] (the default) costs
/// one branch and never allocates; [`TraceSink::Buffered`] records into a
/// bounded ring. Hot-path call sites guard payload construction with
/// [`TraceSink::enabled`].
#[derive(Debug, Clone, Default, PartialEq)]
pub enum TraceSink {
    /// Tracing off: `emit` is a no-op.
    #[default]
    Disabled,
    /// Tracing on: events buffer into a bounded per-scope ring.
    Buffered(Box<TraceBuffer>),
}

/// Default per-scope event-ring bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl TraceSink {
    /// Creates an enabled sink buffering up to `capacity` events for `scope`.
    pub fn buffered(scope: TraceScope, capacity: usize) -> Self {
        TraceSink::Buffered(Box::new(TraceBuffer {
            scope,
            events: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
        }))
    }

    /// True when events are being recorded. Hot paths check this before
    /// building an event payload, so the disabled case does no work.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(self, TraceSink::Buffered(_))
    }

    /// Records an event at virtual time `at`. No-op when disabled.
    #[inline]
    pub fn emit(&mut self, at: SimTime, kind: TraceKind) {
        if let TraceSink::Buffered(buffer) = self {
            let seq = buffer.next_seq;
            buffer.next_seq += 1;
            if buffer.events.len() == buffer.capacity {
                buffer.events.pop_front();
                buffer.dropped += 1;
            }
            buffer.events.push_back(TraceEvent {
                at,
                scope: buffer.scope,
                seq,
                kind,
            });
        }
    }

    /// Drains the buffered events (sequence numbering continues across
    /// drains). Empty when disabled.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Disabled => Vec::new(),
            TraceSink::Buffered(buffer) => buffer.events.drain(..).collect(),
        }
    }

    /// Events rotated out by the ring bound.
    pub fn dropped(&self) -> u64 {
        match self {
            TraceSink::Disabled => 0,
            TraceSink::Buffered(buffer) => buffer.dropped,
        }
    }
}

/// The merged, deterministically ordered event log of one run, with its
/// Chrome-trace and CSV exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one sink's drained events and drop count.
    pub fn absorb(&mut self, sink: &mut TraceSink) {
        self.dropped += sink.dropped();
        self.events.append(&mut sink.take_events());
    }

    /// Appends pre-collected events (used for flight-recorder rings).
    pub fn extend(&mut self, events: Vec<TraceEvent>, dropped: u64) {
        self.events.extend(events);
        self.dropped += dropped;
    }

    /// Sorts into the deterministic `(timestamp, scope, seq)` order. Call
    /// once after every sink has been absorbed.
    pub fn sort(&mut self) {
        self.events.sort_by_key(TraceEvent::sort_key);
    }

    /// The merged events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of merged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events lost to ring bounds across all absorbed sinks.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events in a category (tests and CI validation).
    pub fn count_category(&self, category: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.category() == category)
            .count()
    }

    /// Renders the log as Chrome `trace_event` JSON (object format, `ts` and
    /// `dur` in integer microseconds of virtual time). Deterministic: equal
    /// logs render to identical bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (ix, event) in self.events.iter().enumerate() {
            if ix > 0 {
                out.push(',');
            }
            let ts_us = event.at.as_nanos() / 1_000;
            out.push_str("{\"name\":\"");
            out.push_str(event.kind.name());
            out.push_str("\",\"cat\":\"");
            out.push_str(event.kind.category());
            out.push_str("\",\"pid\":1,\"tid\":");
            out.push_str(&event.scope.tid().to_string());
            match event.kind.span_since() {
                Some(since) => {
                    let start_us = since.as_nanos() / 1_000;
                    out.push_str(",\"ph\":\"X\",\"ts\":");
                    out.push_str(&start_us.to_string());
                    out.push_str(",\"dur\":");
                    out.push_str(&ts_us.saturating_sub(start_us).to_string());
                }
                None => {
                    out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                    out.push_str(&ts_us.to_string());
                }
            }
            out.push_str(",\"args\":{");
            for (aix, (key, value)) in event.kind.args().iter().enumerate() {
                if aix > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(key);
                out.push_str("\":");
                match value {
                    ArgValue::Num(n) => out.push_str(&n.to_string()),
                    ArgValue::Str(s) => {
                        out.push('"');
                        escape_json_into(&mut out, s);
                        out.push('"');
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("],\"otherData\":{\"droppedEvents\":\"");
        out.push_str(&self.dropped.to_string());
        out.push_str("\"}}");
        out
    }

    /// Renders the log as CSV (`ts_us`/`dur_us` in integer microseconds;
    /// args joined as `key=value` pairs). Deterministic like the JSON.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(32 + self.events.len() * 64);
        out.push_str("ts_us,dur_us,scope,seq,cat,name,args\n");
        for event in &self.events {
            let ts_us = event.at.as_nanos() / 1_000;
            let (start_us, dur_us) = match event.kind.span_since() {
                Some(since) => {
                    let s = since.as_nanos() / 1_000;
                    (s, ts_us.saturating_sub(s))
                }
                None => (ts_us, 0),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},",
                start_us,
                dur_us,
                event.scope.label(),
                event.seq,
                event.kind.category(),
                event.kind.name(),
            ));
            for (aix, (key, value)) in event.kind.args().iter().enumerate() {
                if aix > 0 {
                    out.push(';');
                }
                out.push_str(key);
                out.push('=');
                match value {
                    ArgValue::Num(n) => out.push_str(&n.to_string()),
                    ArgValue::Str(s) => out.push_str(s),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::default();
        assert!(!sink.enabled());
        sink.emit(
            SimTime::from_secs(1),
            TraceKind::BatchFlush {
                packets: 4,
                runs: 1,
            },
        );
        assert!(sink.take_events().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn buffered_sink_assigns_monotone_seq_and_bounds_the_ring() {
        let mut sink = TraceSink::buffered(TraceScope::Station(3), 2);
        for i in 0..4u64 {
            sink.emit(
                SimTime::from_secs(i),
                TraceKind::BatchFlush {
                    packets: i,
                    runs: 1,
                },
            );
        }
        assert_eq!(sink.dropped(), 2);
        let events = sink.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 2, "oldest events rotated out");
        assert_eq!(events[1].seq, 3);
        // Sequence numbering continues across drains.
        sink.emit(
            SimTime::from_secs(9),
            TraceKind::BatchFlush {
                packets: 9,
                runs: 1,
            },
        );
        assert_eq!(sink.take_events()[0].seq, 4);
    }

    #[test]
    fn merge_orders_by_time_scope_seq() {
        let mut a = TraceSink::buffered(TraceScope::Station(1), 16);
        let mut b = TraceSink::buffered(TraceScope::Manager, 16);
        let t = SimTime::from_secs(5);
        a.emit(
            t,
            TraceKind::BatchFlush {
                packets: 1,
                runs: 1,
            },
        );
        b.emit(
            t,
            TraceKind::MigrationOutcome {
                migration: 7,
                client: 2,
                outcome: "complete",
                attempt: 0,
            },
        );
        b.emit(
            SimTime::from_secs(1),
            TraceKind::Fault {
                station: 0,
                kind: "crash",
                detail: 0,
            },
        );
        let mut log = TraceLog::new();
        log.absorb(&mut a);
        log.absorb(&mut b);
        log.sort();
        let kinds: Vec<&str> = log.events().iter().map(|e| e.kind.name()).collect();
        // t=1 first; at t=5 Manager sorts before Station(1).
        assert_eq!(kinds, vec!["crash", "complete", "flush"]);
    }

    #[test]
    fn chrome_json_spans_and_instants() {
        let mut sink = TraceSink::buffered(TraceScope::Run, 16);
        sink.emit(
            SimTime::from_secs(2),
            TraceKind::RecoveryWindow {
                station: 3,
                since: SimTime::from_secs(1),
            },
        );
        sink.emit(
            SimTime::from_millis(2500),
            TraceKind::MegaflowSeal {
                outcome: "forward",
                occupancy: 17,
            },
        );
        let mut log = TraceLog::new();
        log.absorb(&mut sink);
        log.sort();
        let json = log.to_chrome_json();
        assert!(json.contains(
            "{\"name\":\"recovery\",\"cat\":\"recovery\",\"pid\":1,\"tid\":0,\
             \"ph\":\"X\",\"ts\":1000000,\"dur\":1000000,\"args\":{\"station\":3}}"
        ));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.ends_with("\"otherData\":{\"droppedEvents\":\"0\"}}"));
        // The exported JSON parses back.
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("chrome JSON parses");
        let events = parsed["traceEvents"].as_array().expect("event array");
        assert_eq!(events.len(), 2);
        assert_eq!(log.count_category("recovery"), 1);
        assert_eq!(log.count_category("megaflow"), 1);
    }

    #[test]
    fn csv_rows_cover_args() {
        let mut sink = TraceSink::buffered(TraceScope::Station(2), 16);
        sink.emit(
            SimTime::from_secs(1),
            TraceKind::Flow(FlowRecord {
                station: 2,
                flow: 0xabcd,
                tuple: "10.0.0.1:1000 -> 10.0.0.2:80 tcp".to_string(),
                stage: "exact",
                verdict: "forwarded",
                count: 3,
            }),
        );
        let mut log = TraceLog::new();
        log.absorb(&mut sink);
        log.sort();
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ts_us,dur_us,scope,seq,cat,name,args");
        assert_eq!(
            lines[1],
            "1000000,0,station-2,0,flight,exact,flow=43981;\
             tuple=10.0.0.1:1000 -> 10.0.0.2:80 tcp;verdict=forwarded;count=3"
        );
    }
}
