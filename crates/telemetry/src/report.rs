//! The periodic state report an Agent sends to the Manager.

use gnf_types::{
    AgentId, ClientId, FlowCacheStats, HostClass, MegaflowStats, ResourceSpec, ResourceUsage,
    ShardCacheStats, SimTime, StationId,
};
use serde::{Deserialize, Serialize};

/// Data-plane fast-path counters reported by a station: how well the
/// switch's per-flow exact-match cache is doing, plus its current size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCacheTelemetry {
    /// Hit/miss/eviction/invalidation counters (shared with the switch).
    pub stats: FlowCacheStats,
    /// Flows currently memoized.
    pub entries: usize,
}

impl FlowCacheTelemetry {
    /// Merges another station's counters into this aggregate.
    pub fn merge(&mut self, other: &FlowCacheTelemetry) {
        let FlowCacheTelemetry { stats, entries } = other;
        self.stats.merge(stats);
        self.entries += entries;
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

/// Megaflow (wildcard) cache counters reported by a station: how well the
/// switch's second-level cache turns *new*-flow slow-path work into wildcard
/// hits, plus its current size and mask diversity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MegaflowTelemetry {
    /// Hit/miss/install/eviction/invalidation counters (shared with the
    /// switch).
    pub stats: MegaflowStats,
    /// Wildcard entries currently installed.
    pub entries: usize,
    /// Distinct wildcard masks currently holding entries (summed over
    /// stations when aggregated).
    pub masks: usize,
}

impl MegaflowTelemetry {
    /// Merges another station's counters into this aggregate.
    pub fn merge(&mut self, other: &MegaflowTelemetry) {
        let MegaflowTelemetry {
            stats,
            entries,
            masks,
        } = other;
        self.stats.merge(stats);
        self.entries += entries;
        self.masks += masks;
    }

    /// Fraction of exact-miss lookups served by a wildcard entry (0 when
    /// idle).
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

/// Batched data-plane counters reported by a station: how many batches its
/// data plane processed, how big they were and the distribution of batch
/// sizes over power-of-two buckets (1, 2–3, 4–7, ..., ≥256).
///
/// Batch size is the main lever of the vectorized data plane — per-packet
/// overhead is amortized over the batch — so the distribution tells an
/// operator whether traffic actually coalesces or degenerates to batch = 1.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchTelemetry {
    /// Batches processed.
    pub batches: u64,
    /// Packets processed across all batches.
    pub packets: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Batch-size histogram: bucket `i` counts batches of size in
    /// `[2^i, 2^(i+1))`, with the last bucket open-ended (≥256).
    pub size_buckets: [u64; 9],
}

impl BatchTelemetry {
    /// Records one processed batch of `size` packets (empty batches are not
    /// counted).
    pub fn record(&mut self, size: u64) {
        if size == 0 {
            return;
        }
        self.batches += 1;
        self.packets += size;
        self.max_batch = self.max_batch.max(size);
        let bucket = (63 - size.leading_zeros() as usize).min(self.size_buckets.len() - 1);
        self.size_buckets[bucket] += 1;
    }

    /// Merges another station's counters into this aggregate.
    pub fn merge(&mut self, other: &BatchTelemetry) {
        let BatchTelemetry {
            batches,
            packets,
            max_batch,
            size_buckets,
        } = other;
        self.batches += batches;
        self.packets += packets;
        self.max_batch = self.max_batch.max(*max_batch);
        for (mine, theirs) in self.size_buckets.iter_mut().zip(size_buckets) {
            *mine += theirs;
        }
    }

    /// Mean packets per batch (0 when idle).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.packets as f64 / self.batches as f64
    }
}

/// Per-RSS-shard cache counters of one station: the exact-match and
/// megaflow activity attributed to one flow-hash shard. Summing any field
/// over a station's shard blocks reproduces the corresponding aggregate in
/// [`FlowCacheTelemetry`] / [`MegaflowTelemetry`] exactly — the switch
/// updates both in lockstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTelemetry {
    /// Exact-match cache activity attributed to this shard.
    pub flow: ShardCacheStats,
    /// Megaflow (wildcard) cache activity attributed to this shard.
    pub megaflow: ShardCacheStats,
}

impl ShardTelemetry {
    /// Merges the same shard index of another station into this block
    /// (aggregation is always in shard-index order).
    pub fn merge(&mut self, other: &ShardTelemetry) {
        let ShardTelemetry { flow, megaflow } = other;
        self.flow.merge(flow);
        self.megaflow.merge(megaflow);
    }
}

/// Fault-injection and recovery counters of one station: how often the
/// station crashed and rejoined, the soft-state generation it is currently
/// serving from, and how much synthetic churn/invalidation pressure the
/// chaos layer applied to its switch. All zeros outside chaos runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosTelemetry {
    /// Times this station crashed (lost all soft state).
    pub crashes: u64,
    /// The station's soft-state generation: bumped on every crash so no
    /// pre-crash cache entry can serve post-restart traffic. Summed over
    /// stations when aggregated.
    pub generation: u64,
    /// Synthetic steering rules installed-and-removed by churn storms.
    pub steering_churn_rules: u64,
    /// Cache-invalidation floods applied to the switch (each flood bumps the
    /// topology generation, lazily invalidating both cache levels).
    pub cache_invalidations: u64,
}

impl ChaosTelemetry {
    /// Merges another station's counters into this aggregate.
    pub fn merge(&mut self, other: &ChaosTelemetry) {
        let ChaosTelemetry {
            crashes,
            generation,
            steering_churn_rules,
            cache_invalidations,
        } = other;
        self.crashes += crashes;
        self.generation += generation;
        self.steering_churn_rules += steering_churn_rules;
        self.cache_invalidations += cache_invalidations;
    }
}

/// Host-side counters of the emulator's migration worker pool: how the
/// migration-lifecycle control commands (checkpoints, pre-copies, staged
/// deploys, delta replays, activations) were batched for parallel execution.
///
/// These are **host-CPU observability only** and deliberately live outside
/// the `RunReport`: `cap_flushes` depends on the configured queue depth and
/// `batches`/`max_batch` on how roams align in virtual time, none of which
/// may influence (or appear in) the byte-compared run results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPoolTelemetry {
    /// Flushes of the parked same-timestamp migration command batch.
    pub batches: u64,
    /// Migration-lifecycle commands that went through the pool.
    pub commands: u64,
    /// Largest batch flushed at once.
    pub max_batch: u64,
    /// Flushes forced early by the `migration_queue_size` cap.
    pub cap_flushes: u64,
}

impl MigrationPoolTelemetry {
    /// Records one flushed batch of `size` commands.
    pub fn record_batch(&mut self, size: u64) {
        self.batches += 1;
        self.commands += size;
        self.max_batch = self.max_batch.max(size);
    }

    /// Mean commands per flushed batch (0 when nothing was pooled).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.commands as f64 / self.batches as f64
    }
}

/// A snapshot of one station's state, produced by its Agent every reporting
/// interval ("reporting periodically the state of the device").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationReport {
    /// The station being reported on.
    pub station: StationId,
    /// The Agent that produced the report.
    pub agent: AgentId,
    /// When the report was produced (virtual time).
    pub produced_at: SimTime,
    /// The station's hardware class.
    pub host_class: HostClass,
    /// Total capacity of the station.
    pub capacity: ResourceSpec,
    /// Measured utilisation.
    pub usage: ResourceUsage,
    /// Clients currently associated with the station's cell.
    pub connected_clients: Vec<ClientId>,
    /// Number of NF containers currently running.
    pub running_nfs: usize,
    /// Number of NF images held in the local cache.
    pub cached_images: usize,
    /// Data-plane fast-path counters.
    pub flow_cache: FlowCacheTelemetry,
    /// Megaflow (wildcard) cache counters.
    pub megaflow: MegaflowTelemetry,
    /// Batched data-plane counters (batch sizes processed by the station).
    pub batches: BatchTelemetry,
    /// Per-RSS-shard cache counters, indexed by shard (one block when the
    /// station runs unsharded). Sums over this vector equal the aggregates
    /// in `flow_cache` / `megaflow`.
    pub shards: Vec<ShardTelemetry>,
    /// Fault-injection and recovery counters (all zeros outside chaos runs).
    pub chaos: ChaosTelemetry,
}

impl StationReport {
    /// The dominant utilisation fraction (CPU vs memory), used by hotspot
    /// detection.
    pub fn dominant_utilisation(&self) -> f64 {
        self.usage.dominant_fraction(&self.capacity)
    }

    /// True when the station is using more than `threshold` of its capacity
    /// in any dimension.
    pub fn is_hotspot(&self, threshold: f64) -> bool {
        self.dominant_utilisation() >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cpu: f64, memory_mb: u64) -> StationReport {
        StationReport {
            station: StationId::new(1),
            agent: AgentId::new(1),
            produced_at: SimTime::from_secs(10),
            host_class: HostClass::HomeRouter,
            capacity: HostClass::HomeRouter.capacity(),
            usage: ResourceUsage {
                cpu_fraction: cpu,
                memory_mb,
                disk_mb: 10,
                rx_bps: 1e6,
                tx_bps: 2e5,
            },
            connected_clients: vec![ClientId::new(1), ClientId::new(2)],
            running_nfs: 3,
            cached_images: 2,
            flow_cache: Default::default(),
            megaflow: Default::default(),
            batches: Default::default(),
            shards: Vec::new(),
            chaos: Default::default(),
        }
    }

    #[test]
    fn dominant_utilisation_picks_the_larger_dimension() {
        // 64 MB of 128 MB = 0.5 memory; CPU 0.2 → dominant 0.5.
        let r = report(0.2, 64);
        assert!((r.dominant_utilisation() - 0.5).abs() < 1e-12);
        let r = report(0.9, 64);
        assert!((r.dominant_utilisation() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn hotspot_thresholding() {
        assert!(report(0.95, 10).is_hotspot(0.85));
        assert!(!report(0.5, 32).is_hotspot(0.85));
        // Memory pressure alone can make a hotspot.
        assert!(report(0.1, 127).is_hotspot(0.85));
    }

    #[test]
    fn reports_serialize() {
        let r = report(0.4, 80);
        let json = serde_json::to_string(&r).unwrap();
        let back: StationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn megaflow_telemetry_merges_and_serializes() {
        let t = MegaflowTelemetry {
            stats: MegaflowStats {
                hits: 6,
                misses: 2,
                installs: 3,
                evictions: 1,
                invalidations: 0,
                drop_hits: 4,
                drop_installs: 1,
            },
            entries: 2,
            masks: 1,
        };
        assert!((t.hit_rate() - 0.75).abs() < 1e-12);
        let mut merged = MegaflowTelemetry::default();
        merged.merge(&t);
        merged.merge(&t);
        assert_eq!(merged.stats.hits, 12);
        assert_eq!(merged.entries, 4);
        assert_eq!(merged.masks, 2);
        let json = serde_json::to_string(&t).unwrap();
        let back: MegaflowTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn batch_telemetry_buckets_and_merges() {
        let mut t = BatchTelemetry::default();
        t.record(0); // ignored
        t.record(1);
        t.record(2);
        t.record(3);
        t.record(32);
        t.record(1000);
        assert_eq!(t.batches, 5);
        assert_eq!(t.packets, 1 + 2 + 3 + 32 + 1000);
        assert_eq!(t.max_batch, 1000);
        assert_eq!(t.size_buckets[0], 1, "size 1");
        assert_eq!(t.size_buckets[1], 2, "sizes 2-3");
        assert_eq!(t.size_buckets[5], 1, "size 32");
        assert_eq!(t.size_buckets[8], 1, "size >= 256");
        assert!((t.mean_batch_size() - 1038.0 / 5.0).abs() < 1e-12);

        let mut merged = BatchTelemetry::default();
        merged.merge(&t);
        merged.merge(&t);
        assert_eq!(merged.batches, 10);
        assert_eq!(merged.max_batch, 1000);
        assert_eq!(merged.size_buckets[1], 4);
        assert_eq!(BatchTelemetry::default().mean_batch_size(), 0.0);

        let json = serde_json::to_string(&t).unwrap();
        let back: BatchTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn migration_pool_telemetry_tracks_batches() {
        let mut t = MigrationPoolTelemetry::default();
        assert_eq!(t.mean_batch_size(), 0.0);
        t.record_batch(1);
        t.record_batch(7);
        t.cap_flushes += 1;
        assert_eq!(t.batches, 2);
        assert_eq!(t.commands, 8);
        assert_eq!(t.max_batch, 7);
        assert_eq!(t.cap_flushes, 1);
        assert!((t.mean_batch_size() - 4.0).abs() < 1e-12);
        let json = serde_json::to_string(&t).unwrap();
        let back: MigrationPoolTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
