//! The periodic state report an Agent sends to the Manager.

use gnf_types::{
    AgentId, ClientId, FlowCacheStats, HostClass, ResourceSpec, ResourceUsage, SimTime, StationId,
};
use serde::{Deserialize, Serialize};

/// Data-plane fast-path counters reported by a station: how well the
/// switch's per-flow exact-match cache is doing, plus its current size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCacheTelemetry {
    /// Hit/miss/eviction/invalidation counters (shared with the switch).
    pub stats: FlowCacheStats,
    /// Flows currently memoized.
    pub entries: usize,
}

impl FlowCacheTelemetry {
    /// Merges another station's counters into this aggregate.
    pub fn merge(&mut self, other: &FlowCacheTelemetry) {
        let FlowCacheTelemetry { stats, entries } = other;
        self.stats.merge(stats);
        self.entries += entries;
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

/// A snapshot of one station's state, produced by its Agent every reporting
/// interval ("reporting periodically the state of the device").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationReport {
    /// The station being reported on.
    pub station: StationId,
    /// The Agent that produced the report.
    pub agent: AgentId,
    /// When the report was produced (virtual time).
    pub produced_at: SimTime,
    /// The station's hardware class.
    pub host_class: HostClass,
    /// Total capacity of the station.
    pub capacity: ResourceSpec,
    /// Measured utilisation.
    pub usage: ResourceUsage,
    /// Clients currently associated with the station's cell.
    pub connected_clients: Vec<ClientId>,
    /// Number of NF containers currently running.
    pub running_nfs: usize,
    /// Number of NF images held in the local cache.
    pub cached_images: usize,
    /// Data-plane fast-path counters.
    pub flow_cache: FlowCacheTelemetry,
}

impl StationReport {
    /// The dominant utilisation fraction (CPU vs memory), used by hotspot
    /// detection.
    pub fn dominant_utilisation(&self) -> f64 {
        self.usage.dominant_fraction(&self.capacity)
    }

    /// True when the station is using more than `threshold` of its capacity
    /// in any dimension.
    pub fn is_hotspot(&self, threshold: f64) -> bool {
        self.dominant_utilisation() >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cpu: f64, memory_mb: u64) -> StationReport {
        StationReport {
            station: StationId::new(1),
            agent: AgentId::new(1),
            produced_at: SimTime::from_secs(10),
            host_class: HostClass::HomeRouter,
            capacity: HostClass::HomeRouter.capacity(),
            usage: ResourceUsage {
                cpu_fraction: cpu,
                memory_mb,
                disk_mb: 10,
                rx_bps: 1e6,
                tx_bps: 2e5,
            },
            connected_clients: vec![ClientId::new(1), ClientId::new(2)],
            running_nfs: 3,
            cached_images: 2,
            flow_cache: Default::default(),
        }
    }

    #[test]
    fn dominant_utilisation_picks_the_larger_dimension() {
        // 64 MB of 128 MB = 0.5 memory; CPU 0.2 → dominant 0.5.
        let r = report(0.2, 64);
        assert!((r.dominant_utilisation() - 0.5).abs() < 1e-12);
        let r = report(0.9, 64);
        assert!((r.dominant_utilisation() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn hotspot_thresholding() {
        assert!(report(0.95, 10).is_hotspot(0.85));
        assert!(!report(0.5, 32).is_hotspot(0.85));
        // Memory pressure alone can make a hotspot.
        assert!(report(0.1, 127).is_hotspot(0.85));
    }

    #[test]
    fn reports_serialize() {
        let r = report(0.4, 80);
        let json = serde_json::to_string(&r).unwrap();
        let back: StationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
