//! # gnf-telemetry
//!
//! Health monitoring and notifications for the GNF control plane.
//!
//! The paper's Manager "is responsible for continuously monitoring the health
//! and resource utilization from the GNF stations, allowing the provider to
//! detect resource-hotspots", and relays notifications raised by NFs. This
//! crate holds the data structures that implement that: per-station health
//! reports, the monitoring store with freshness/offline tracking, the hotspot
//! detector and the notification log displayed by the UI.
//!
//! Data-plane visibility rides the same reports: every
//! [`report::StationReport`] carries the station's exact-match flow-cache
//! counters ([`report::FlowCacheTelemetry`]), its megaflow (wildcard) cache
//! counters ([`report::MegaflowTelemetry`]) and its batch-size distribution
//! ([`report::BatchTelemetry`]); the emulator aggregates all three across
//! stations into the `RunReport`.
//!
//! Fleet-scale transport lives in [`delta`]: cumulative-since-keyframe
//! [`delta::ReportDelta`] frames that carry only the sections that changed,
//! with a one-way resync protocol that is chaos-safe (a crash or rejoin
//! forces a keyframe), and the receiver-side [`delta::ReportReassembler`]
//! that reconstructs byte-identical full reports. [`region`] stacks a
//! hierarchical tier on top: [`region::RegionAggregator`] rolls a region's
//! reports (full or delta) into one [`region::RegionSummary`] feed for the
//! Manager.
//!
//! Time-resolved observability lives in three further modules, all driven by
//! **virtual time** so the determinism contract survives: [`trace`] (typed
//! spans/instants merged in deterministic `(timestamp, scope, seq)` order,
//! exported as Chrome `trace_event` JSON or CSV), [`metrics`] (the
//! virtual-time fleet sampler's ring-buffered series plus the shared
//! log-bucketed [`metrics::LogHistogram`]) and [`flight`] (the seeded
//! flow-sampled flight recorder).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod flight;
pub mod metrics;
pub mod monitor;
pub mod notification;
pub mod region;
pub mod report;
pub mod trace;

pub use delta::{
    DeltaEncoder, DeltaReject, IdentitySection, NfSection, ReassemblerStats, ReportDelta,
    ReportReassembler, SectionHints,
};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY, DEFAULT_FLIGHT_SAMPLE_RATE};
pub use metrics::{LogHistogram, MetricsSample, MetricsSeries, RingSeries, VIRTUAL_SHARDS};
pub use monitor::{HotspotDetector, MonitoringStore, StationHealth, StationStatus};
pub use notification::{Notification, NotificationLog, NotificationSeverity, NotificationSource};
pub use region::{RegionAggregator, RegionSummary};
pub use report::{
    BatchTelemetry, ChaosTelemetry, FlowCacheTelemetry, MegaflowTelemetry, MigrationPoolTelemetry,
    ShardTelemetry, StationReport,
};
pub use trace::{
    FlowRecord, TraceEvent, TraceKind, TraceLog, TraceScope, TraceSink, DEFAULT_TRACE_CAPACITY,
};
