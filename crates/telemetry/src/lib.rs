//! # gnf-telemetry
//!
//! Health monitoring and notifications for the GNF control plane.
//!
//! The paper's Manager "is responsible for continuously monitoring the health
//! and resource utilization from the GNF stations, allowing the provider to
//! detect resource-hotspots", and relays notifications raised by NFs. This
//! crate holds the data structures that implement that: per-station health
//! reports, the monitoring store with freshness/offline tracking, the hotspot
//! detector and the notification log displayed by the UI.
//!
//! Data-plane visibility rides the same reports: every
//! [`report::StationReport`] carries the station's exact-match flow-cache
//! counters ([`report::FlowCacheTelemetry`]), its megaflow (wildcard) cache
//! counters ([`report::MegaflowTelemetry`]) and its batch-size distribution
//! ([`report::BatchTelemetry`]); the emulator aggregates all three across
//! stations into the `RunReport`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod monitor;
pub mod notification;
pub mod report;

pub use monitor::{HotspotDetector, MonitoringStore, StationHealth, StationStatus};
pub use notification::{Notification, NotificationLog, NotificationSeverity, NotificationSource};
pub use report::{
    BatchTelemetry, ChaosTelemetry, FlowCacheTelemetry, MegaflowTelemetry, MigrationPoolTelemetry,
    ShardTelemetry, StationReport,
};
