//! Delta-encoded station reports: the fleet-scale wire format.
//!
//! At 10k stations, shipping a full [`StationReport`] every interval makes
//! per-station manager cost grow with report *size*, not with what *changed*.
//! This module implements a cumulative-since-keyframe delta protocol:
//!
//! - Every generation opens with a **keyframe** (`seq == 0`): a delta frame
//!   carrying every section, stamped with a monotonically increasing
//!   `generation` that never resets (it survives crashes, so stale frames
//!   from before a crash are always recognisable).
//! - Subsequent frames of the generation (`seq > 0`) carry only the sections
//!   whose value differs from the keyframe — **cumulative** deltas, each one
//!   reconstructing the station's full current state against the keyframe
//!   alone. A lost delta therefore never corrupts later ones; the receiver
//!   simply skips an instant it never saw.
//! - A crash or rejoin forces the next frame to be a keyframe with
//!   `forced == true`, resynchronising the receiver without any
//!   manager→agent traffic (the resync protocol is strictly one-way, so
//!   delta mode adds zero control-plane messages).
//!
//! The receiver side is [`ReportReassembler`]: it holds the latest keyframe
//! per station, rejects stale generations and reordered sequence numbers,
//! and reconstructs full `StationReport`s that are byte-identical to what a
//! full-report mode would have delivered at the same instant.

use crate::report::{
    BatchTelemetry, ChaosTelemetry, FlowCacheTelemetry, MegaflowTelemetry, ShardTelemetry,
    StationReport,
};
use gnf_types::{AgentId, ClientId, HostClass, ResourceSpec, ResourceUsage, SimTime, StationId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Rarely-changing station identity carried by keyframes (and by deltas in
/// the unlikely event a station's hardware class changes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdentitySection {
    /// Hardware class of the host.
    pub host_class: HostClass,
    /// Total resources of the host.
    pub capacity: ResourceSpec,
}

/// NF inventory counters: how many NF instances run and how many images are
/// cached locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NfSection {
    /// NF instances currently running.
    pub running_nfs: usize,
    /// NF images cached locally.
    pub cached_images: usize,
}

/// Which report sections *may* differ from the current keyframe. Agents set
/// these bits on the mutation paths themselves (client association, chain
/// commands, packet processing, chaos events) so the encoder can skip
/// comparing sections that cannot have changed. Hints are conservative: a
/// set bit only means "compare this section", never "send it regardless".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionHints {
    /// Connected-client set may have changed.
    pub clients: bool,
    /// NF inventory (running instances, cached images) may have changed.
    pub nfs: bool,
    /// Traffic counters (flow cache, megaflow, batches, shards) may have
    /// changed.
    pub traffic: bool,
    /// Chaos counters (crashes, generation, churn, invalidations) may have
    /// changed.
    pub chaos: bool,
}

impl SectionHints {
    /// Hints claiming every section may have changed (always safe).
    pub fn all() -> Self {
        SectionHints {
            clients: true,
            nfs: true,
            traffic: true,
            chaos: true,
        }
    }

    /// Hints claiming no section changed (only safe right after a keyframe
    /// when no mutation path ran).
    pub fn none() -> Self {
        SectionHints {
            clients: false,
            nfs: false,
            traffic: false,
            chaos: false,
        }
    }
}

impl Default for SectionHints {
    fn default() -> Self {
        SectionHints::all()
    }
}

/// One frame of the delta stream: a keyframe when `seq == 0` (all sections
/// present), otherwise a cumulative delta against the generation's keyframe
/// (absent sections mean "unchanged since the keyframe").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDelta {
    /// Station this frame describes.
    pub station: StationId,
    /// Agent that produced it.
    pub agent: AgentId,
    /// Virtual time the underlying report was produced.
    pub produced_at: SimTime,
    /// Keyframe generation this frame belongs to. Strictly increases over
    /// the agent's lifetime, including across crashes.
    pub generation: u64,
    /// Position within the generation: 0 for the keyframe itself, then
    /// strictly increasing for the cumulative deltas that follow.
    pub seq: u64,
    /// True when this keyframe was forced by a crash or rejoin rather than
    /// the periodic keyframe cadence.
    pub forced: bool,
    /// Host class and capacity (identity; present on keyframes).
    pub identity: Option<IdentitySection>,
    /// Resource usage snapshot.
    pub usage: Option<ResourceUsage>,
    /// Sorted connected-client set.
    pub clients: Option<Vec<ClientId>>,
    /// NF inventory counters.
    pub nfs: Option<NfSection>,
    /// Exact-match flow-cache counters.
    pub flow_cache: Option<FlowCacheTelemetry>,
    /// Megaflow (wildcard) cache counters.
    pub megaflow: Option<MegaflowTelemetry>,
    /// Batch-size distribution.
    pub batches: Option<BatchTelemetry>,
    /// Per-RSS-shard cache counters.
    pub shards: Option<Vec<ShardTelemetry>>,
    /// Chaos counters.
    pub chaos: Option<ChaosTelemetry>,
}

impl ReportDelta {
    /// Builds a keyframe: a frame carrying every section of `report`.
    pub fn keyframe(report: &StationReport, generation: u64, forced: bool) -> Self {
        ReportDelta {
            station: report.station,
            agent: report.agent,
            produced_at: report.produced_at,
            generation,
            seq: 0,
            forced,
            identity: Some(IdentitySection {
                host_class: report.host_class,
                capacity: report.capacity,
            }),
            usage: Some(report.usage),
            clients: Some(report.connected_clients.clone()),
            nfs: Some(NfSection {
                running_nfs: report.running_nfs,
                cached_images: report.cached_images,
            }),
            flow_cache: Some(report.flow_cache),
            megaflow: Some(report.megaflow),
            batches: Some(report.batches.clone()),
            shards: Some(report.shards.clone()),
            chaos: Some(report.chaos),
        }
    }

    /// Builds a cumulative delta: only the sections of `current` whose value
    /// differs from the generation's keyframe `base` are carried. `hints`
    /// lets the caller skip comparisons for sections no mutation path
    /// touched; identity and usage are always compared (usage drifts with
    /// virtual time through the bits-per-second rates, so it has no single
    /// mutation path to piggyback on).
    pub fn diff(
        base: &StationReport,
        current: &StationReport,
        generation: u64,
        seq: u64,
        hints: SectionHints,
    ) -> Self {
        debug_assert!(hints.clients || current.connected_clients == base.connected_clients);
        debug_assert!(
            hints.nfs
                || (current.running_nfs == base.running_nfs
                    && current.cached_images == base.cached_images)
        );
        debug_assert!(
            hints.traffic
                || (current.flow_cache == base.flow_cache
                    && current.megaflow == base.megaflow
                    && current.batches == base.batches
                    && current.shards == base.shards)
        );
        debug_assert!(hints.chaos || current.chaos == base.chaos);
        let identity = (current.host_class != base.host_class || current.capacity != base.capacity)
            .then_some(IdentitySection {
                host_class: current.host_class,
                capacity: current.capacity,
            });
        let nfs = (hints.nfs
            && (current.running_nfs != base.running_nfs
                || current.cached_images != base.cached_images))
            .then_some(NfSection {
                running_nfs: current.running_nfs,
                cached_images: current.cached_images,
            });
        ReportDelta {
            station: current.station,
            agent: current.agent,
            produced_at: current.produced_at,
            generation,
            seq,
            forced: false,
            identity,
            usage: (current.usage != base.usage).then_some(current.usage),
            clients: (hints.clients && current.connected_clients != base.connected_clients)
                .then(|| current.connected_clients.clone()),
            nfs,
            flow_cache: (hints.traffic && current.flow_cache != base.flow_cache)
                .then_some(current.flow_cache),
            megaflow: (hints.traffic && current.megaflow != base.megaflow)
                .then_some(current.megaflow),
            batches: (hints.traffic && current.batches != base.batches)
                .then(|| current.batches.clone()),
            shards: (hints.traffic && current.shards != base.shards)
                .then(|| current.shards.clone()),
            chaos: (hints.chaos && current.chaos != base.chaos).then_some(current.chaos),
        }
    }

    /// True when this frame opens a generation (all sections present).
    pub fn is_keyframe(&self) -> bool {
        self.seq == 0
    }

    /// Reconstructs a full report from this frame alone. `None` unless every
    /// section is present (i.e. the frame is a well-formed keyframe).
    pub fn to_report(&self) -> Option<StationReport> {
        let identity = self.identity?;
        Some(StationReport {
            station: self.station,
            agent: self.agent,
            produced_at: self.produced_at,
            host_class: identity.host_class,
            capacity: identity.capacity,
            usage: self.usage?,
            connected_clients: self.clients.clone()?,
            running_nfs: self.nfs?.running_nfs,
            cached_images: self.nfs?.cached_images,
            flow_cache: self.flow_cache?,
            megaflow: self.megaflow?,
            batches: self.batches.clone()?,
            shards: self.shards.clone()?,
            chaos: self.chaos?,
        })
    }

    /// Reconstructs the station's full state at this frame's instant by
    /// overlaying the carried sections on the generation's keyframe.
    pub fn apply_to(&self, base: &StationReport) -> StationReport {
        let mut report = base.clone();
        report.station = self.station;
        report.agent = self.agent;
        report.produced_at = self.produced_at;
        if let Some(identity) = self.identity {
            report.host_class = identity.host_class;
            report.capacity = identity.capacity;
        }
        if let Some(usage) = self.usage {
            report.usage = usage;
        }
        if let Some(clients) = &self.clients {
            report.connected_clients = clients.clone();
        }
        if let Some(nfs) = self.nfs {
            report.running_nfs = nfs.running_nfs;
            report.cached_images = nfs.cached_images;
        }
        if let Some(flow_cache) = self.flow_cache {
            report.flow_cache = flow_cache;
        }
        if let Some(megaflow) = self.megaflow {
            report.megaflow = megaflow;
        }
        if let Some(batches) = &self.batches {
            report.batches = batches.clone();
        }
        if let Some(shards) = &self.shards {
            report.shards = shards.clone();
        }
        if let Some(chaos) = self.chaos {
            report.chaos = chaos;
        }
        report
    }

    /// Number of sections this frame carries (9 for a keyframe).
    pub fn sections_carried(&self) -> usize {
        usize::from(self.identity.is_some())
            + usize::from(self.usage.is_some())
            + usize::from(self.clients.is_some())
            + usize::from(self.nfs.is_some())
            + usize::from(self.flow_cache.is_some())
            + usize::from(self.megaflow.is_some())
            + usize::from(self.batches.is_some())
            + usize::from(self.shards.is_some())
            + usize::from(self.chaos.is_some())
    }
}

/// Sender-side state of the delta protocol: holds the keyframe the receiver
/// is reconstructing against and decides when to open a new generation.
///
/// The Agent owns one of these; benchmark and test harnesses drive it
/// directly over synthetic reports.
#[derive(Debug, Clone)]
pub struct DeltaEncoder {
    keyframe: Option<Box<StationReport>>,
    generation: u64,
    seq: u64,
    interval: u64,
    force_keyframe: bool,
}

impl DeltaEncoder {
    /// Creates an encoder that emits `keyframe_interval` cumulative deltas
    /// between keyframes (0 makes every frame a keyframe).
    pub fn new(keyframe_interval: u64) -> Self {
        DeltaEncoder {
            keyframe: None,
            generation: 0,
            seq: 0,
            interval: keyframe_interval,
            force_keyframe: false,
        }
    }

    /// Forces the next frame to be a keyframe with `forced == true`. Called
    /// on crash or rejoin: the receiver's held keyframe describes pre-crash
    /// state, so the stream must resynchronise.
    pub fn force_resync(&mut self) {
        self.force_keyframe = true;
        self.keyframe = None;
    }

    /// Generation of the stream's current keyframe (0 before the first).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Encodes the next frame for `report` with every section compared.
    pub fn encode(&mut self, report: &StationReport) -> ReportDelta {
        self.encode_with_hints(report, SectionHints::all())
    }

    /// Encodes the next frame for `report`, comparing only hinted sections
    /// (plus identity and usage, which are always compared).
    pub fn encode_with_hints(
        &mut self,
        report: &StationReport,
        hints: SectionHints,
    ) -> ReportDelta {
        let need_keyframe =
            self.force_keyframe || self.keyframe.is_none() || self.seq >= self.interval;
        if need_keyframe {
            self.generation += 1;
            self.seq = 0;
            let forced = self.force_keyframe;
            self.force_keyframe = false;
            self.keyframe = Some(Box::new(report.clone()));
            ReportDelta::keyframe(report, self.generation, forced)
        } else {
            self.seq += 1;
            ReportDelta::diff(
                self.keyframe.as_ref().expect("keyframe present"),
                report,
                self.generation,
                self.seq,
                hints,
            )
        }
    }
}

/// Why the reassembler refused a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaReject {
    /// A non-keyframe frame arrived for a station with no held keyframe
    /// (first contact, or the receiver restarted); wait for the next
    /// keyframe.
    UnknownStation,
    /// The frame's generation does not match the held keyframe — either a
    /// stale replay from before a resync, or the generation's keyframe was
    /// lost in transit.
    GenerationMismatch,
    /// A keyframe older than (or equal to) the held generation.
    StaleKeyframe,
    /// A delta at or behind the last applied sequence number (reordered or
    /// replayed frame).
    StaleSeq,
    /// A keyframe missing sections (malformed frame).
    MissingSections,
}

/// Receiver-side counters of the delta protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblerStats {
    /// Keyframes accepted (generations opened).
    pub keyframes: u64,
    /// Keyframes accepted with `forced == true` (crash/rejoin resyncs).
    pub forced_resyncs: u64,
    /// Cumulative deltas applied.
    pub deltas_applied: u64,
    /// Frames rejected (stale, reordered or malformed).
    pub deltas_rejected: u64,
}

#[derive(Debug, Clone)]
struct StreamState {
    generation: u64,
    last_seq: u64,
    keyframe: StationReport,
}

/// Receiver side of the delta protocol: reconstructs full station reports
/// from a delta stream, holding one keyframe per station.
#[derive(Debug, Clone, Default)]
pub struct ReportReassembler {
    streams: BTreeMap<StationId, StreamState>,
    stats: ReassemblerStats,
}

impl ReportReassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Receiver-side protocol counters.
    pub fn stats(&self) -> ReassemblerStats {
        self.stats
    }

    /// Number of stations with a held keyframe.
    pub fn stations(&self) -> usize {
        self.streams.len()
    }

    /// Applies one frame, returning the reconstructed full report — exactly
    /// what a full-report mode would have delivered at this instant — or the
    /// reason the frame was refused.
    pub fn apply(&mut self, delta: &ReportDelta) -> Result<StationReport, DeltaReject> {
        if delta.is_keyframe() {
            let Some(report) = delta.to_report() else {
                self.stats.deltas_rejected += 1;
                return Err(DeltaReject::MissingSections);
            };
            if let Some(stream) = self.streams.get(&delta.station) {
                if delta.generation <= stream.generation {
                    self.stats.deltas_rejected += 1;
                    return Err(DeltaReject::StaleKeyframe);
                }
            }
            self.stats.keyframes += 1;
            if delta.forced {
                self.stats.forced_resyncs += 1;
            }
            self.streams.insert(
                delta.station,
                StreamState {
                    generation: delta.generation,
                    last_seq: 0,
                    keyframe: report.clone(),
                },
            );
            Ok(report)
        } else {
            let Some(stream) = self.streams.get_mut(&delta.station) else {
                self.stats.deltas_rejected += 1;
                return Err(DeltaReject::UnknownStation);
            };
            if delta.generation != stream.generation {
                self.stats.deltas_rejected += 1;
                return Err(DeltaReject::GenerationMismatch);
            }
            if delta.seq <= stream.last_seq {
                self.stats.deltas_rejected += 1;
                return Err(DeltaReject::StaleSeq);
            }
            stream.last_seq = delta.seq;
            self.stats.deltas_applied += 1;
            Ok(delta.apply_to(&stream.keyframe))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(station: u64, produced_at: SimTime) -> StationReport {
        StationReport {
            station: StationId::new(station),
            agent: AgentId::new(station),
            produced_at,
            host_class: HostClass::EdgeServer,
            capacity: HostClass::EdgeServer.capacity(),
            usage: ResourceUsage {
                cpu_fraction: 0.25,
                memory_mb: 512,
                disk_mb: 1_000,
                rx_bps: 1e6,
                tx_bps: 2e5,
            },
            connected_clients: vec![ClientId::new(1), ClientId::new(2)],
            running_nfs: 3,
            cached_images: 2,
            flow_cache: FlowCacheTelemetry::default(),
            megaflow: MegaflowTelemetry::default(),
            batches: BatchTelemetry::default(),
            shards: Vec::new(),
            chaos: ChaosTelemetry::default(),
        }
    }

    #[test]
    fn keyframe_roundtrips_to_identical_report() {
        let report = sample_report(7, SimTime::from_secs(2));
        let frame = ReportDelta::keyframe(&report, 1, false);
        assert!(frame.is_keyframe());
        assert_eq!(frame.sections_carried(), 9);
        assert_eq!(frame.to_report().unwrap(), report);
    }

    #[test]
    fn cumulative_deltas_reconstruct_each_instant() {
        let mut encoder = DeltaEncoder::new(8);
        let mut reassembler = ReportReassembler::new();
        let base = sample_report(1, SimTime::from_secs(2));
        let frame = encoder.encode(&base);
        assert_eq!(reassembler.apply(&frame).unwrap(), base);

        let mut second = sample_report(1, SimTime::from_secs(4));
        second.flow_cache.entries = 40;
        second.running_nfs = 5;
        let frame = encoder.encode(&second);
        assert!(!frame.is_keyframe());
        // produced_at changed, usage unchanged, so: nfs + flow_cache only.
        assert_eq!(frame.sections_carried(), 2);
        assert_eq!(reassembler.apply(&frame).unwrap(), second);

        // Third report reverts running_nfs to the keyframe value: the
        // cumulative delta simply stops carrying the section.
        let mut third = sample_report(1, SimTime::from_secs(6));
        third.flow_cache.entries = 80;
        let frame = encoder.encode(&third);
        assert_eq!(frame.sections_carried(), 1);
        assert_eq!(reassembler.apply(&frame).unwrap(), third);
    }

    #[test]
    fn idle_station_sends_empty_deltas() {
        let mut encoder = DeltaEncoder::new(100);
        let base = sample_report(1, SimTime::from_secs(2));
        let _ = encoder.encode(&base);
        let mut next = base.clone();
        next.produced_at = SimTime::from_secs(4);
        let frame = encoder.encode_with_hints(&next, SectionHints::none());
        assert_eq!(frame.sections_carried(), 0);
        // An idle delta is far smaller on the wire than the full report.
        let delta_bytes = serde_json::to_string(&frame).unwrap().len();
        let full_bytes = serde_json::to_string(&next).unwrap().len();
        assert!(
            delta_bytes * 2 < full_bytes,
            "{delta_bytes} vs {full_bytes}"
        );
    }

    #[test]
    fn keyframe_cadence_and_generation_bumps() {
        let mut encoder = DeltaEncoder::new(2);
        let report = sample_report(1, SimTime::from_secs(2));
        let frames: Vec<ReportDelta> = (0..6).map(|_| encoder.encode(&report)).collect();
        let kinds: Vec<bool> = frames.iter().map(ReportDelta::is_keyframe).collect();
        assert_eq!(kinds, [true, false, false, true, false, false]);
        assert_eq!(frames[0].generation, 1);
        assert_eq!(frames[3].generation, 2);
        assert_eq!(frames[4].seq, 1);
    }

    #[test]
    fn forced_resync_opens_new_generation() {
        let mut encoder = DeltaEncoder::new(100);
        let mut reassembler = ReportReassembler::new();
        let report = sample_report(1, SimTime::from_secs(2));
        let _ = reassembler.apply(&encoder.encode(&report)).unwrap();
        encoder.force_resync();
        let frame = encoder.encode(&report);
        assert!(frame.is_keyframe());
        assert!(frame.forced);
        assert_eq!(frame.generation, 2);
        let _ = reassembler.apply(&frame).unwrap();
        assert_eq!(reassembler.stats().forced_resyncs, 1);
        assert_eq!(reassembler.stats().keyframes, 2);
    }

    #[test]
    fn stale_and_reordered_frames_are_rejected() {
        let mut encoder = DeltaEncoder::new(100);
        let mut reassembler = ReportReassembler::new();
        let report = sample_report(1, SimTime::from_secs(2));
        let keyframe = encoder.encode(&report);
        let mut changed = report.clone();
        changed.running_nfs = 9;
        let d1 = encoder.encode(&changed);
        let d2 = encoder.encode(&changed);

        // Delta before its keyframe: unknown station.
        assert_eq!(reassembler.apply(&d1), Err(DeltaReject::UnknownStation));
        let _ = reassembler.apply(&keyframe).unwrap();
        let _ = reassembler.apply(&d2).unwrap();
        // Reordered: d1 (seq 1) after d2 (seq 2).
        assert_eq!(reassembler.apply(&d1), Err(DeltaReject::StaleSeq));
        // Replaying the keyframe is stale too.
        assert_eq!(
            reassembler.apply(&keyframe),
            Err(DeltaReject::StaleKeyframe)
        );

        // A frame from a superseded generation is rejected after resync.
        encoder.force_resync();
        let kf2 = encoder.encode(&report);
        let _ = reassembler.apply(&kf2).unwrap();
        let stale = encoder.encode(&changed);
        assert_eq!(stale.generation, 2);
        let mut old_gen = stale.clone();
        old_gen.generation = 1;
        assert_eq!(
            reassembler.apply(&old_gen),
            Err(DeltaReject::GenerationMismatch)
        );
        assert_eq!(reassembler.stats().deltas_rejected, 4);
    }
}
