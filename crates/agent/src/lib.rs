//! # gnf-agent
//!
//! The GNF Agent: "a lightweight daemon running on the stations managed by the
//! provider. It is responsible for the instantiation of the NFs on the hosting
//! platform, notifying the Manager of clients' (dis)connection and reporting
//! periodically the state of the device."
//!
//! The [`Agent`] here is a *sans-I/O* state machine: it consumes
//! [`ManagerToAgent`] commands and local events (client association, packets,
//! report timers) and produces [`AgentToManager`] messages plus packet-level
//! outcomes. It never touches sockets or clocks, so the same code is driven by
//! the discrete-event emulator in experiments and called directly in unit
//! tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;

pub use agent::{Agent, AgentConfig, DeployedChain, PacketOutcome};
