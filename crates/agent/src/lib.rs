//! # gnf-agent
//!
//! The GNF Agent: "a lightweight daemon running on the stations managed by the
//! provider. It is responsible for the instantiation of the NFs on the hosting
//! platform, notifying the Manager of clients' (dis)connection and reporting
//! periodically the state of the device."
//!
//! The [`Agent`] here is a *sans-I/O* state machine: it consumes
//! [`gnf_api::messages::ManagerToAgent`] commands and local events (client
//! association, packets, report timers) and produces
//! [`gnf_api::messages::AgentToManager`] messages plus packet-level outcomes.
//! It never touches sockets or clocks, so the same code is driven by the
//! discrete-event emulator in experiments and called directly in unit tests.
//!
//! ## The Agent in the data plane
//!
//! The Agent owns the station's data plane end to end and stitches the
//! caching/batching layers together:
//!
//! * **Slow path** — a steered packet is classified by the
//!   [`gnf_switch::SoftwareSwitch`] (steering + MAC lookup) and traverses its
//!   client's [`gnf_nf::NfChain`]; the switch memoizes the decision in its
//!   exact-match flow cache.
//! * **Fast path** — later packets of the flow hit the exact cache; on exact
//!   misses the megaflow (wildcard) layer may serve *new* flows of a known
//!   pattern, including a certified **chain bypass** whose NF statistics the
//!   Agent replays via `NfChain::credit_bypass`. After a slow-path packet,
//!   the Agent seals the switch's wildcard seed with the chain's
//!   consulted-field report (`NfChain::wildcard_report`).
//! * **Batch path** — [`Agent::process_upstream_batch`] /
//!   [`Agent::process_downstream_batch`] run the same pipeline per
//!   run-length-grouped [`gnf_switch::DecisionRun`], amortizing switch
//!   lookups, chain dispatch and counter updates over the batch.
//!
//! Every layer's counters surface in the periodic
//! [`gnf_telemetry::StationReport`] (`flow_cache`, `megaflow`, `batches`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
mod lanes;

pub use agent::{seal_report, Agent, AgentConfig, DeployedChain, PacketOutcome};
