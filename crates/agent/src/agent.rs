//! The Agent state machine.

use gnf_api::messages::{AgentToManager, ManagerToAgent};
use gnf_container::{ContainerRuntime, ImageRepository, NfvRuntime};
use gnf_nf::{
    ChainBypass, Direction, NfChain, NfContext, NfSpec, NfStateDelta, NfStateSnapshot, Verdict,
};
use gnf_packet::{FieldMask, Packet, PacketBatch};
use gnf_switch::{
    BypassOutcome, Classified, Forwarding, MegaflowInstall, MegaflowState, SoftwareSwitch,
    SteeringRule, TrafficSelector, DEFAULT_MEGAFLOW_CAPACITY,
};
use gnf_telemetry::{
    BatchTelemetry, ChaosTelemetry, DeltaEncoder, FlightRecorder, FlowRecord, SectionHints,
    StationReport, TraceKind, TraceSink,
};
use gnf_types::{
    AgentId, ChainId, ClientId, GnfError, GnfResult, HostClass, MacAddr, ResourceUsage,
    SimDuration, SimTime, StationId,
};
use std::borrow::Cow;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Static configuration of one Agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentConfig {
    /// The Agent's identity.
    pub agent: AgentId,
    /// The station it manages.
    pub station: StationId,
    /// Hardware class of the station.
    pub host_class: HostClass,
}

/// A chain deployed on this station.
pub struct DeployedChain {
    /// The chain identifier assigned by the Manager.
    pub chain_id: ChainId,
    /// The client whose traffic the chain serves.
    pub client: ClientId,
    /// The client's MAC address (used to key the steering rule).
    pub client_mac: MacAddr,
    /// The NF specs the chain was built from.
    pub specs: Vec<NfSpec>,
    /// The executable chain.
    pub chain: NfChain,
    /// Container handles backing each NF, in chain order.
    pub containers: Vec<u64>,
    /// The traffic subset diverted through the chain.
    pub selector: TrafficSelector,
    /// End-to-end latency of deploying the chain on this station.
    pub deploy_latency: SimDuration,
    /// True while the chain is a pre-copy staging target: containers run and
    /// the baseline state is imported, but no steering rule exists, so the
    /// chain never sees traffic until activated.
    pub staged: bool,
    /// Baseline snapshot retained by the *source* after a pre-copy export,
    /// used to compute the dirty delta at switchover.
    pub precopy_baseline: Option<Vec<NfStateSnapshot>>,
}

/// What happened to a packet handed to the station's data plane.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketOutcome {
    /// The packet continues towards the network (upstream) or the client
    /// (downstream), possibly rewritten by the chain.
    Forwarded(Packet),
    /// The packet was dropped by an NF (reason attached; borrowed for the
    /// fixed policy reasons so the drop path stays allocation-free).
    Dropped(Cow<'static, str>),
    /// The packet was consumed and these replies go back towards its source.
    Replied(Vec<Packet>),
}

/// The chain report a slow-path megaflow seed seals with, gated on the
/// (single-flow) run's verdicts:
///
/// * every packet was forwarded → the chain's [`ChainBypass::Forward`]
///   report, when it certifies one;
/// * every packet was silently dropped **and** drop entries are enabled →
///   the chain's [`ChainBypass::Drop`] report, when it certifies one;
/// * anything else (replies, mixed verdicts, a report variant disagreeing
///   with the verdicts — which would mean an NF broke the purity contract)
///   → `None`: the entry seals decision-only and matching packets keep
///   traversing the chain.
///
/// Public so the bench fixtures seal through the *same* gate the Agent
/// uses — a fixture re-implementation could silently drift and leave the
/// megaflow guardrails measuring a sealing behavior production no longer
/// takes.
pub fn seal_report(
    allow_drops: bool,
    chain: &NfChain,
    direction: Direction,
    verdicts: &[Verdict],
) -> Option<(FieldMask, BypassOutcome)> {
    if verdicts.iter().all(Verdict::is_forward) {
        match chain.wildcard_report(direction) {
            Some(ChainBypass::Forward { mask, tokens }) => {
                Some((mask, BypassOutcome::Forward(tokens)))
            }
            _ => None,
        }
    } else if allow_drops && verdicts.iter().all(Verdict::is_drop) {
        match chain.wildcard_report(direction) {
            Some(ChainBypass::Drop {
                mask,
                tokens,
                reason,
            }) => Some((mask, BypassOutcome::Drop { tokens, reason })),
            _ => None,
        }
    } else {
        None
    }
}

/// Aggregate verdict label of one (single-flow) decision run, for the
/// flight recorder: `dropped` when every packet dropped, `replied` when any
/// packet drew replies, `mixed` for a run whose stateful chain flipped
/// verdict mid-run, `forwarded` otherwise.
fn run_verdict(count: u64, dropped: u64, replied: u64) -> &'static str {
    if dropped == count {
        "dropped"
    } else if replied > 0 {
        "replied"
    } else if dropped > 0 {
        "mixed"
    } else {
        "forwarded"
    }
}

/// The GNF Agent.
pub struct Agent {
    config: AgentConfig,
    runtime: ContainerRuntime,
    switch: SoftwareSwitch,
    repository: ImageRepository,
    chains: HashMap<ChainId, DeployedChain>,
    clients: HashMap<ClientId, (MacAddr, Ipv4Addr)>,
    reports_sent: u64,
    commands_handled: u64,
    batch_sizes: BatchTelemetry,
    /// Whether certified chain drops seal into wildcarded *drop* entries
    /// (on by default). When off, a dropped slow-path packet seals
    /// decision-only — the pre-drop-entry behavior — so outcomes and NF
    /// statistics are equivalent either way.
    megaflow_drops: bool,
    /// Intra-station RSS shards: how many chain-execution lanes the batched
    /// data plane uses (1 = the classic serial path). Outcomes, statistics
    /// and reports are byte-identical for any value.
    station_shards: usize,
    /// Soft-state generation: bumped on every crash so post-restart traffic
    /// can never be served from a pre-crash cache entry.
    generation: u64,
    /// Fault-injection counters reported through the periodic station report.
    chaos: ChaosTelemetry,
    /// Data-plane event sink (batch flushes, megaflow seals/evictions).
    /// Disabled by default: one branch on the hot path, nothing recorded.
    trace: TraceSink,
    /// Seeded flow-sampled flight recorder. Disabled by default.
    flight: FlightRecorder,
    /// Scratch report buffer, filled in place every interval so periodic
    /// reporting reuses one allocation (and its vectors' capacity) instead
    /// of constructing a fresh boxed report per interval.
    scratch: Box<StationReport>,
    /// Delta-report encoder (None = classic full reports).
    delta: Option<DeltaEncoder>,
    /// Dirty bits piggybacked on the mutation paths: which report sections
    /// may differ from the delta stream's current keyframe. Conservative
    /// hints only — the encoder still compares hinted sections, and clears
    /// the bits when a keyframe resynchronises the stream.
    report_hints: SectionHints,
}

impl Agent {
    /// Creates an Agent and returns it together with the `Register` message it
    /// must send to the Manager.
    pub fn new(config: AgentConfig, repository: ImageRepository) -> (Self, AgentToManager) {
        let runtime = ContainerRuntime::new(config.host_class);
        let register = AgentToManager::Register {
            agent: config.agent,
            station: config.station,
            host_class: config.host_class,
            capacity: runtime.capacity(),
        };
        let scratch = Box::new(StationReport {
            station: config.station,
            agent: config.agent,
            produced_at: SimTime::ZERO,
            host_class: config.host_class,
            capacity: runtime.capacity(),
            usage: ResourceUsage::IDLE,
            connected_clients: Vec::new(),
            running_nfs: 0,
            cached_images: 0,
            flow_cache: Default::default(),
            megaflow: Default::default(),
            batches: BatchTelemetry::default(),
            shards: Vec::new(),
            chaos: ChaosTelemetry::default(),
        });
        (
            Agent {
                config,
                runtime,
                switch: SoftwareSwitch::new(),
                repository,
                chains: HashMap::new(),
                clients: HashMap::new(),
                reports_sent: 0,
                commands_handled: 0,
                batch_sizes: BatchTelemetry::default(),
                megaflow_drops: true,
                station_shards: 1,
                generation: 0,
                chaos: ChaosTelemetry::default(),
                trace: TraceSink::default(),
                flight: FlightRecorder::default(),
                scratch,
                delta: None,
                report_hints: SectionHints::all(),
            },
            register,
        )
    }

    /// Switches periodic reporting to the delta wire format: keyframes every
    /// `keyframe_interval` deltas, cumulative per-section deltas in between,
    /// and a forced keyframe after every crash or rejoin. The reconstructed
    /// reports are byte-identical to full-report mode.
    pub fn set_delta_reporting(&mut self, keyframe_interval: u64) {
        self.delta = Some(DeltaEncoder::new(keyframe_interval));
        self.report_hints = SectionHints::all();
    }

    /// True when periodic reports use the delta wire format.
    pub fn delta_reporting(&self) -> bool {
        self.delta.is_some()
    }

    /// Arms (or disarms) the data-plane observability sinks: `trace`
    /// receives batch-flush and megaflow seal/eviction events, `flight` the
    /// seeded flow-sampled lifecycle records. Both default to disabled —
    /// a single branch on the hot path, no allocation, no buffering.
    pub fn set_tracing(&mut self, trace: TraceSink, flight: FlightRecorder) {
        self.trace = trace;
        self.flight = flight;
    }

    /// Mutable access to the event sink, for the harness to drain.
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Mutable access to the flight recorder, for the harness to drain.
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// Emits the trace events one megaflow install implies: the seal, and an
    /// eviction event when the capacity bound displaced entries to make
    /// room. An associated function over a borrowed sink (not `&mut self`)
    /// so the sharded spine — which holds disjoint borrows of the switch and
    /// the sink — shares the exact emission logic of the serial path.
    #[inline]
    fn trace_install(trace: &mut TraceSink, now: SimTime, install: MegaflowInstall) {
        if !trace.enabled() || !install.installed {
            return;
        }
        trace.emit(
            now,
            TraceKind::MegaflowSeal {
                outcome: install.outcome,
                occupancy: install.occupancy,
            },
        );
        if install.evicted > 0 {
            trace.emit(
                now,
                TraceKind::MegaflowEvict {
                    evicted: install.evicted,
                    occupancy: install.occupancy,
                },
            );
        }
    }

    /// Sets the intra-station RSS shard count (clamped to at least 1): how
    /// many chain-execution lanes batched processing uses, and how many
    /// shard-stat partitions the switch's caches attribute to. Outcomes,
    /// statistics and reports are byte-identical for any value — sharding
    /// only changes which thread runs a chain.
    pub fn set_station_shards(&mut self, shards: usize) {
        self.station_shards = shards.max(1);
        self.switch.set_station_shards(self.station_shards);
        self.report_hints.traffic = true;
    }

    /// The intra-station RSS shard count.
    pub fn station_shards(&self) -> usize {
        self.station_shards
    }

    /// The Agent's station.
    pub fn station(&self) -> StationId {
        self.config.station
    }

    /// The station's host class.
    pub fn host_class(&self) -> HostClass {
        self.config.host_class
    }

    /// The chains currently deployed on this station.
    pub fn chains(&self) -> impl Iterator<Item = &DeployedChain> {
        self.chains.values()
    }

    /// A deployed chain by id.
    pub fn chain(&self, chain: ChainId) -> Option<&DeployedChain> {
        self.chains.get(&chain)
    }

    /// Number of running NF containers.
    pub fn running_nfs(&self) -> usize {
        self.runtime.running_count()
    }

    /// Clients currently associated with this station.
    pub fn connected_clients(&self) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self.clients.keys().copied().collect();
        v.sort();
        v
    }

    /// Read access to the software switch (counters, steering table).
    pub fn switch(&self) -> &SoftwareSwitch {
        &self.switch
    }

    /// Enables or disables the switch's megaflow (wildcard) cache layer.
    ///
    /// Disabled by default: enabling it changes how lookups distribute
    /// between the exact-match and wildcard cache levels (outcomes, NF
    /// statistics and port counters stay equivalent — the megaflow
    /// property tests assert exactly that). The emulator enables it on
    /// every station it builds.
    pub fn set_megaflow_enabled(&mut self, enabled: bool) {
        self.switch.set_megaflow_capacity(if enabled {
            DEFAULT_MEGAFLOW_CAPACITY
        } else {
            0
        });
        self.report_hints.traffic = true;
    }

    /// True when the megaflow (wildcard) cache layer is enabled.
    pub fn megaflow_enabled(&self) -> bool {
        self.switch.megaflow_enabled()
    }

    /// Enables or disables wildcarded **drop** entries (on by default, but
    /// only effective while the megaflow layer itself is enabled).
    ///
    /// When on, a chain that certifiably drops a slow-path packet seals
    /// into a drop entry: matching attack churn (port scans, floods of
    /// denied flows) is retired at the switch with the chain's statistics
    /// and drop reason replayed exactly. When off, such seeds seal
    /// decision-only and every denied packet re-walks the chain. Packet
    /// outcomes, NF statistics and port counters are equivalent either way
    /// — the drop-bypass equivalence property tests assert it.
    pub fn set_megaflow_drop_enabled(&mut self, enabled: bool) {
        self.megaflow_drops = enabled;
        self.report_hints.traffic = true;
    }

    /// True when certified chain drops may seal into wildcard drop entries.
    pub fn megaflow_drop_enabled(&self) -> bool {
        self.megaflow_drops
    }

    /// Read access to the container runtime.
    pub fn runtime(&self) -> &ContainerRuntime {
        &self.runtime
    }

    /// Total commands handled from the Manager.
    pub fn commands_handled(&self) -> u64 {
        self.commands_handled
    }

    /// The station's current soft-state generation (bumped per crash).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// This station's fault-injection counters, with the current soft-state
    /// generation stamped in.
    pub fn chaos_telemetry(&self) -> ChaosTelemetry {
        ChaosTelemetry {
            generation: self.generation,
            ..self.chaos
        }
    }

    /// Crashes the station: every piece of soft state is lost — deployed
    /// chains and their NF conntrack, running containers, associated
    /// clients, the flow cache, the megaflow cache and the learned MAC
    /// table. The soft-state generation is bumped so no pre-crash cache
    /// entry can ever serve post-restart traffic. Cumulative counters
    /// (reports sent, batch telemetry, switch statistics) survive: they
    /// describe the run, not the crashed process.
    pub fn crash(&mut self) {
        let mut chain_ids: Vec<ChainId> = self.chains.keys().copied().collect();
        chain_ids.sort();
        for chain in chain_ids {
            let _ = self.remove_chain(chain);
        }
        self.clients.clear();
        self.switch.flush_flow_cache();
        self.switch.clear_mac_table();
        self.switch.invalidate_caches();
        self.generation += 1;
        self.chaos.crashes += 1;
        // The manager's held keyframe describes pre-crash state: the next
        // report must open a new generation (chaos-safe forced resync).
        self.report_hints = SectionHints::all();
        if let Some(encoder) = &mut self.delta {
            encoder.force_resync();
        }
    }

    /// Restarts a crashed station: returns the `Register` message the reborn
    /// Agent sends, exactly as a fresh [`Agent::new`] would. The Manager
    /// treats a re-registration as a reboot and resets its view of every
    /// attachment the station carried.
    pub fn rejoin(&self) -> AgentToManager {
        AgentToManager::Register {
            agent: self.config.agent,
            station: self.config.station,
            host_class: self.config.host_class,
            capacity: self.runtime.capacity(),
        }
    }

    /// Applies a steering-rule churn storm: installs and immediately removes
    /// `rules` synthetic rules. Each install/remove pair bumps the steering
    /// generation, forcing memoized flow decisions to revalidate — the
    /// stress a flapping control plane puts on the data plane's caches.
    pub fn chaos_steering_churn(&mut self, rules: u64) {
        for i in 0..rules {
            let mac = MacAddr::derived(0xC4, i as u32);
            let chain = ChainId::new(u64::MAX - i);
            self.switch.steering_mut().install(SteeringRule {
                client: ClientId::new(u64::MAX - i),
                client_mac: mac,
                selector: TrafficSelector::all(),
                chain,
            });
            self.switch.steering_mut().remove_chain(mac, chain);
        }
        self.chaos.steering_churn_rules += rules;
        self.report_hints.chaos = true;
        self.report_hints.traffic = true;
    }

    /// Applies a cache-invalidation flood: bumps the switch's topology
    /// generation `floods` times, lazily invalidating every memoized flow
    /// decision and wildcard entry.
    pub fn chaos_invalidate_caches(&mut self, floods: u64) {
        for _ in 0..floods {
            self.switch.invalidate_caches();
        }
        self.chaos.cache_invalidations += floods;
        self.report_hints.chaos = true;
        self.report_hints.traffic = true;
    }

    /// Handles a client associating with this station's cell.
    pub fn client_associated(
        &mut self,
        client: ClientId,
        mac: MacAddr,
        ip: Ipv4Addr,
    ) -> Vec<AgentToManager> {
        self.clients.insert(client, (mac, ip));
        self.report_hints.clients = true;
        vec![AgentToManager::ClientConnected { client, mac, ip }]
    }

    /// Handles a client leaving this station's cell.
    pub fn client_disassociated(&mut self, client: ClientId) -> Vec<AgentToManager> {
        if self.clients.remove(&client).is_none() {
            return Vec::new();
        }
        self.report_hints.clients = true;
        vec![AgentToManager::ClientDisconnected { client }]
    }

    /// Handles a command from the Manager, returning the messages to send
    /// back.
    pub fn handle_manager_msg(&mut self, msg: ManagerToAgent, now: SimTime) -> Vec<AgentToManager> {
        self.commands_handled += 1;
        match msg {
            ManagerToAgent::RegisterAck { .. } => Vec::new(),
            ManagerToAgent::Ping => vec![AgentToManager::Pong],
            ManagerToAgent::DeployChain {
                chain,
                client,
                client_mac,
                specs,
                selector,
                restore_state,
                migration,
            } => {
                match self.deploy_chain(chain, client, client_mac, &specs, selector, restore_state)
                {
                    Ok(deployed) => vec![AgentToManager::ChainDeployed {
                        chain,
                        client,
                        latency: deployed.0,
                        images_cached: deployed.1,
                        migration,
                    }],
                    Err(error) => vec![AgentToManager::CommandFailed {
                        chain: Some(chain),
                        error,
                        migration,
                    }],
                }
            }
            ManagerToAgent::RemoveChain {
                chain,
                client,
                migration,
            } => match self.remove_chain(chain) {
                Ok(()) => vec![AgentToManager::ChainRemoved {
                    chain,
                    client,
                    migration,
                }],
                Err(error) => vec![AgentToManager::CommandFailed {
                    chain: Some(chain),
                    error,
                    migration,
                }],
            },
            ManagerToAgent::CheckpointChain {
                chain,
                client,
                migration,
            } => match self.checkpoint_chain(chain) {
                Ok((state, latency)) => vec![AgentToManager::ChainState {
                    chain,
                    client,
                    migration,
                    state,
                    checkpoint_latency: latency,
                }],
                Err(error) => vec![AgentToManager::CommandFailed {
                    chain: Some(chain),
                    error,
                    migration: Some(migration),
                }],
            },
            ManagerToAgent::PreCopyChain {
                chain,
                client,
                migration,
            } => match self.precopy_chain(chain) {
                Ok((state, latency)) => vec![AgentToManager::ChainPreCopy {
                    chain,
                    client,
                    migration,
                    state,
                    checkpoint_latency: latency,
                }],
                Err(error) => vec![AgentToManager::CommandFailed {
                    chain: Some(chain),
                    error,
                    migration: Some(migration),
                }],
            },
            ManagerToAgent::PrepareChain {
                chain,
                client,
                client_mac,
                specs,
                selector,
                precopy_state,
                migration,
            } => {
                match self.prepare_chain(chain, client, client_mac, &specs, selector, precopy_state)
                {
                    Ok((latency, images_cached)) => vec![AgentToManager::ChainPrepared {
                        chain,
                        client,
                        migration,
                        latency,
                        images_cached,
                    }],
                    Err(error) => vec![AgentToManager::CommandFailed {
                        chain: Some(chain),
                        error,
                        migration: Some(migration),
                    }],
                }
            }
            ManagerToAgent::DeltaChain {
                chain,
                client,
                migration,
            } => match self.delta_chain(chain) {
                Ok((deltas, latency)) => vec![AgentToManager::ChainDelta {
                    chain,
                    client,
                    migration,
                    deltas,
                    checkpoint_latency: latency,
                }],
                Err(error) => vec![AgentToManager::CommandFailed {
                    chain: Some(chain),
                    error,
                    migration: Some(migration),
                }],
            },
            ManagerToAgent::ActivateChain {
                chain,
                client,
                migration,
                deltas,
            } => match self.activate_chain(chain, deltas) {
                Ok(latency) => vec![AgentToManager::ChainDeployed {
                    chain,
                    client,
                    latency,
                    // Activation never pulls images: the staged deploy did.
                    images_cached: true,
                    migration: Some(migration),
                }],
                Err(error) => vec![AgentToManager::CommandFailed {
                    chain: Some(chain),
                    error,
                    migration: Some(migration),
                }],
            },
        }
        .into_iter()
        .chain(self.drain_nf_notifications(now))
        .collect()
    }

    /// Builds the periodic station report ("reporting periodically the state
    /// of the device"): a full `Report`, or a `ReportDelta` frame when delta
    /// reporting is enabled. Either way the station state is assembled into
    /// the persistent scratch buffer, not a fresh allocation per interval.
    pub fn make_report(&mut self, now: SimTime) -> AgentToManager {
        self.reports_sent += 1;
        self.fill_scratch_report(now);
        match &mut self.delta {
            None => AgentToManager::Report(self.scratch.clone()),
            Some(encoder) => {
                let frame = encoder.encode_with_hints(&self.scratch, self.report_hints);
                if frame.is_keyframe() {
                    // The keyframe snapshot now equals the current state:
                    // every section is clean until the next mutation.
                    self.report_hints = SectionHints::none();
                }
                AgentToManager::ReportDelta(Box::new(frame))
            }
        }
    }

    /// Refreshes the scratch report in place with the station's current
    /// state, reusing the buffer's vector capacity across intervals.
    fn fill_scratch_report(&mut self, now: SimTime) {
        let capacity = self.runtime.capacity();
        let used = self.runtime.used();
        let counters = self.switch.aggregate_counters(|_| true);
        let report = &mut *self.scratch;
        report.station = self.config.station;
        report.agent = self.config.agent;
        report.produced_at = now;
        report.host_class = self.config.host_class;
        report.capacity = capacity;
        report.usage = ResourceUsage {
            cpu_fraction: (used.cpu_millicores as f64 / capacity.cpu_millicores.max(1) as f64)
                .min(1.0),
            memory_mb: used.memory_mb,
            disk_mb: used.disk_mb,
            rx_bps: counters.rx_bytes as f64 * 8.0 / now.as_secs_f64().max(1e-9),
            tx_bps: counters.tx_bytes as f64 * 8.0 / now.as_secs_f64().max(1e-9),
        };
        report.connected_clients.clear();
        report
            .connected_clients
            .extend(self.clients.keys().copied());
        report.connected_clients.sort();
        report.running_nfs = self.runtime.running_count();
        report.cached_images = self
            .repository
            .images()
            .iter()
            .filter(|i| self.runtime.is_image_cached(i))
            .count();
        report.flow_cache = gnf_telemetry::FlowCacheTelemetry {
            stats: self.switch.flow_cache_stats(),
            entries: self.switch.flow_cache_len(),
        };
        report.megaflow = gnf_telemetry::MegaflowTelemetry {
            stats: self.switch.megaflow_stats(),
            entries: self.switch.megaflow_len(),
            masks: self.switch.megaflow_mask_count(),
        };
        report.batches = self.batch_sizes.clone();
        report.shards.clear();
        report.shards.extend(
            self.switch
                .flow_cache_shard_stats()
                .iter()
                .zip(self.switch.megaflow_shard_stats())
                .map(|(flow, megaflow)| gnf_telemetry::ShardTelemetry {
                    flow: *flow,
                    megaflow: *megaflow,
                }),
        );
        report.chaos = ChaosTelemetry {
            generation: self.generation,
            ..self.chaos
        };
    }

    /// Per-RSS-shard cache counters of this station's switch, in shard-index
    /// order. Sums over the blocks equal the aggregates in
    /// [`flow_cache_telemetry`] / [`megaflow_telemetry`].
    ///
    /// [`flow_cache_telemetry`]: Agent::flow_cache_telemetry
    /// [`megaflow_telemetry`]: Agent::megaflow_telemetry
    pub fn shard_telemetry(&self) -> Vec<gnf_telemetry::ShardTelemetry> {
        self.switch
            .flow_cache_shard_stats()
            .iter()
            .zip(self.switch.megaflow_shard_stats())
            .map(|(flow, megaflow)| gnf_telemetry::ShardTelemetry {
                flow: *flow,
                megaflow: *megaflow,
            })
            .collect()
    }

    /// Data-plane fast-path counters of this station's switch.
    pub fn flow_cache_telemetry(&self) -> gnf_telemetry::FlowCacheTelemetry {
        gnf_telemetry::FlowCacheTelemetry {
            stats: self.switch.flow_cache_stats(),
            entries: self.switch.flow_cache_len(),
        }
    }

    /// Megaflow (wildcard) cache counters of this station's switch.
    pub fn megaflow_telemetry(&self) -> gnf_telemetry::MegaflowTelemetry {
        gnf_telemetry::MegaflowTelemetry {
            stats: self.switch.megaflow_stats(),
            entries: self.switch.megaflow_len(),
            masks: self.switch.megaflow_mask_count(),
        }
    }

    /// Exact-match cache occupancy attributed to `n` fixed virtual flow-hash
    /// shards — independent of the configured station shards, so fleet
    /// samplers stay byte-identical across the sharding matrix.
    pub fn flow_cache_occupancy_by_virtual_shard(&self, n: usize) -> Vec<u64> {
        self.switch.flow_cache_occupancy_by_virtual_shard(n)
    }

    /// Batch-size distribution of the data-plane work this station processed.
    pub fn batch_telemetry(&self) -> &BatchTelemetry {
        &self.batch_sizes
    }

    /// Processes a packet arriving from a client (upstream) at this station.
    pub fn process_upstream_packet(&mut self, packet: Packet, now: SimTime) -> PacketOutcome {
        self.report_hints.traffic = true;
        let port = self.switch.client_port();
        self.process_packet(packet, port, now)
    }

    /// Processes a packet arriving from the uplink (downstream, towards a
    /// client) at this station.
    pub fn process_downstream_packet(&mut self, packet: Packet, now: SimTime) -> PacketOutcome {
        self.report_hints.traffic = true;
        let port = self.switch.uplink_port();
        self.process_packet(packet, port, now)
    }

    /// Processes a batch of packets arriving from clients (upstream) at this
    /// station, returning one outcome per packet in batch order. Observably
    /// equivalent to per-packet [`process_upstream_packet`] calls at the same
    /// timestamp, but amortizes switch lookups, chain dispatch and counter
    /// updates over the batch.
    ///
    /// [`process_upstream_packet`]: Agent::process_upstream_packet
    pub fn process_upstream_batch(
        &mut self,
        batch: PacketBatch,
        now: SimTime,
    ) -> Vec<PacketOutcome> {
        self.report_hints.traffic = true;
        let port = self.switch.client_port();
        self.process_packet_batch(batch, port, now)
    }

    /// Processes a batch of packets arriving from the uplink (downstream,
    /// towards clients); the batched counterpart of
    /// [`process_downstream_packet`].
    ///
    /// [`process_downstream_packet`]: Agent::process_downstream_packet
    pub fn process_downstream_batch(
        &mut self,
        batch: PacketBatch,
        now: SimTime,
    ) -> Vec<PacketOutcome> {
        self.report_hints.traffic = true;
        let port = self.switch.uplink_port();
        self.process_packet_batch(batch, port, now)
    }

    /// Drains pending NF events into `NfNotification` messages for the Manager.
    pub fn drain_nf_notifications(&mut self, _now: SimTime) -> Vec<AgentToManager> {
        let mut out = Vec::new();
        for deployed in self.chains.values_mut() {
            for (nf_name, event) in deployed.chain.drain_events() {
                out.push(AgentToManager::NfNotification {
                    chain: deployed.chain_id,
                    client: deployed.client,
                    nf_name,
                    event,
                });
            }
        }
        out
    }

    fn process_packet_batch(
        &mut self,
        batch: PacketBatch,
        in_port: gnf_switch::PortId,
        now: SimTime,
    ) -> Vec<PacketOutcome> {
        if batch.is_empty() {
            return Vec::new();
        }
        if self.station_shards > 1 && !self.chains.is_empty() {
            return self.process_packet_batch_sharded(batch, in_port, now);
        }
        self.batch_sizes.record(batch.len() as u64);
        let batch_len = batch.len() as u64;
        let mut runs = 0u64;
        let mut cursor = match self.switch.begin_receive_batch(&batch, in_port, now) {
            Ok(cursor) => cursor,
            Err(e) => {
                let reason: Cow<'static, str> = e.to_string().into();
                return batch
                    .into_iter()
                    .map(|_| PacketOutcome::Dropped(reason.clone()))
                    .collect();
            }
        };
        let mut outcomes = Vec::with_capacity(batch.len());
        // Classify one run at a time and settle it — chain processing,
        // megaflow sealing, counters — before classifying the next
        // (`IntoIter::as_slice` is the unclassified tail): an entry sealed
        // from run N already serves run N + 1 of the same flush
        // (mid-batch sealing), exactly as in per-packet processing.
        let mut packets = batch.into_vec().into_iter();
        while let Some(run) = self
            .switch
            .next_decision_run(&mut cursor, packets.as_slice())
        {
            runs += 1;
            let run_count = run.count as u64;
            // Flight probe: runs are single-flow, so the first unclassified
            // packet names the run's flow. Sampling is a seeded hash check;
            // the tuple string is only rendered for sampled flows.
            let flight_probe: Option<(u64, String)> = if self.flight.enabled() {
                packets
                    .as_slice()
                    .first()
                    .and_then(|p| p.five_tuple())
                    .filter(|t| self.flight.samples(t.shard_hash()))
                    .map(|t| (t.shard_hash(), t.to_string()))
            } else {
                None
            };
            let stage = match (&run.decision.steering, &run.megaflow) {
                (None, _) => "unsteered",
                (_, MegaflowState::Bypass(_)) => "megaflow-bypass",
                (_, MegaflowState::DropBypass { .. }) => "megaflow-drop",
                (_, MegaflowState::Seed(_)) => "slow-path",
                (_, MegaflowState::None) => "exact",
            };
            let verdicts: Vec<Verdict> = match run.decision.steering {
                Some((rule, upstream)) => {
                    let direction = if upstream {
                        Direction::Ingress
                    } else {
                        Direction::Egress
                    };
                    match run.megaflow {
                        // A wildcard entry certified the chain bypass for
                        // this run's flow: forward unchanged, replay NF
                        // statistics.
                        MegaflowState::Bypass(tokens) => {
                            let run_packets: Vec<Packet> =
                                packets.by_ref().take(run.count).collect();
                            let bytes: u64 = run_packets.iter().map(|p| p.len() as u64).sum();
                            if let Some(deployed) = self.chains.get_mut(&rule.chain) {
                                deployed.chain.credit_bypass(
                                    direction,
                                    &tokens,
                                    run_packets.len() as u64,
                                    bytes,
                                );
                            }
                            run_packets.into_iter().map(Verdict::Forward).collect()
                        }
                        // A wildcard entry certified the chain *drops* this
                        // run's flow: retire the whole run before the chain
                        // runs, replaying statistics and the exact reason.
                        MegaflowState::DropBypass { tokens, reason } => {
                            let bytes: u64 = packets
                                .by_ref()
                                .take(run.count)
                                .map(|p| p.len() as u64)
                                .sum();
                            if let Some(deployed) = self.chains.get_mut(&rule.chain) {
                                deployed.chain.credit_bypass_drop(
                                    direction,
                                    &tokens,
                                    run.count as u64,
                                    bytes,
                                );
                            }
                            (0..run.count)
                                .map(|_| Verdict::Drop(reason.clone()))
                                .collect()
                        }
                        megaflow => {
                            match self.chains.get_mut(&rule.chain) {
                                Some(deployed) => {
                                    let ctx = NfContext::for_client(now, deployed.client);
                                    let verdicts = if run.count == 1 {
                                        let packet = packets.next().expect("runs cover the batch");
                                        vec![deployed.chain.process(packet, direction, &ctx)]
                                    } else {
                                        let chunk: PacketBatch =
                                            packets.by_ref().take(run.count).collect();
                                        deployed.chain.process_batch(chunk, direction, &ctx)
                                    };
                                    // Seal the slow-path seed into a
                                    // wildcard entry: a certified forward or
                                    // drop bypass when the chain vouches for
                                    // this (single-flow) run's processing,
                                    // the switch decision alone otherwise.
                                    if let MegaflowState::Seed(seed) = megaflow {
                                        let report = seal_report(
                                            self.megaflow_drops,
                                            &deployed.chain,
                                            direction,
                                            &verdicts,
                                        );
                                        let install = self.switch.install_megaflow(seed, report);
                                        Self::trace_install(&mut self.trace, now, install);
                                    }
                                    verdicts
                                }
                                // The steering rule exists but the chain is
                                // gone (mid reconfiguration): forward
                                // unprocessed.
                                None => packets
                                    .by_ref()
                                    .take(run.count)
                                    .map(Verdict::Forward)
                                    .collect(),
                            }
                        }
                    }
                }
                None => packets
                    .by_ref()
                    .take(run.count)
                    .map(Verdict::Forward)
                    .collect(),
            };
            // Settle the run's verdicts: one TX-counter update per run for
            // the forwarded packets instead of one per packet.
            let mut forwarded = 0u64;
            let mut forwarded_bytes = 0u64;
            let mut dropped = 0u64;
            let mut replied = 0u64;
            for verdict in verdicts {
                match verdict {
                    Verdict::Forward(p) => {
                        forwarded += 1;
                        forwarded_bytes += p.len() as u64;
                        outcomes.push(PacketOutcome::Forwarded(p));
                    }
                    Verdict::Drop(reason) => {
                        dropped += 1;
                        outcomes.push(PacketOutcome::Dropped(reason));
                    }
                    Verdict::Reply(replies) => {
                        replied += 1;
                        for reply in &replies {
                            self.switch.record_tx(in_port, reply.len());
                        }
                        outcomes.push(PacketOutcome::Replied(replies));
                    }
                }
            }
            if forwarded > 0 {
                match &run.decision.forwarding {
                    Forwarding::Unicast(port) => {
                        self.switch
                            .record_tx_batch(*port, forwarded, forwarded_bytes)
                    }
                    Forwarding::Flood(ports) => {
                        for port in ports.iter() {
                            self.switch
                                .record_tx_batch(*port, forwarded, forwarded_bytes);
                        }
                    }
                }
            }
            if let Some((flow, tuple)) = flight_probe {
                self.flight.record(
                    now,
                    FlowRecord {
                        station: self.config.station.raw(),
                        flow,
                        tuple,
                        stage,
                        verdict: run_verdict(run_count, dropped, replied),
                        count: run_count,
                    },
                );
            }
        }
        debug_assert!(packets.next().is_none(), "runs must cover the whole batch");
        self.trace.emit(
            now,
            TraceKind::BatchFlush {
                packets: batch_len,
                runs,
            },
        );
        outcomes
    }

    /// The sharded counterpart of [`process_packet_batch`]: classification,
    /// cache maintenance, megaflow installs and TX counters stay serial on
    /// the calling thread (the *spine*), while chain work is dispatched to
    /// `station_shards` lane threads, each owning a chain-hash partition of
    /// the deployed chains (see [`crate::lanes`] for the determinism
    /// argument). Observably equivalent to the serial path: outcomes, every
    /// counter and all NF state land byte-identical, because each chain
    /// still sees its work in run order and everything order-sensitive runs
    /// on the spine.
    ///
    /// [`process_packet_batch`]: Agent::process_packet_batch
    fn process_packet_batch_sharded(
        &mut self,
        batch: PacketBatch,
        in_port: gnf_switch::PortId,
        now: SimTime,
    ) -> Vec<PacketOutcome> {
        use crate::lanes::{lane_of_chain, lane_worker, LaneMsg};
        use std::sync::mpsc;

        self.batch_sizes.record(batch.len() as u64);
        let batch_len = batch.len() as u64;
        let mut runs = 0u64;
        let mut cursor = match self.switch.begin_receive_batch(&batch, in_port, now) {
            Ok(cursor) => cursor,
            Err(e) => {
                let reason: Cow<'static, str> = e.to_string().into();
                return batch
                    .into_iter()
                    .map(|_| PacketOutcome::Dropped(reason.clone()))
                    .collect();
            }
        };
        // Partition the chains over the lanes by stable chain-id hash; the
        // spine keeps a read-only routing map.
        let lanes = self.station_shards.min(self.chains.len()).max(1);
        let mut lane_chains: Vec<HashMap<ChainId, &mut DeployedChain>> =
            (0..lanes).map(|_| HashMap::new()).collect();
        let mut lane_of: HashMap<ChainId, usize> = HashMap::with_capacity(self.chains.len());
        for (&chain, deployed) in self.chains.iter_mut() {
            let lane = lane_of_chain(chain, lanes);
            lane_of.insert(chain, lane);
            lane_chains[lane].insert(chain, deployed);
        }
        let switch = &mut self.switch;
        let megaflow_drops = self.megaflow_drops;
        let trace = &mut self.trace;
        let flight = &mut self.flight;
        let station = self.config.station.raw();
        let mut outcomes = Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let (results_tx, results_rx) = mpsc::channel();
            let mut senders = Vec::with_capacity(lanes);
            for chains in lane_chains {
                let (tx, rx) = mpsc::channel::<LaneMsg>();
                let results = results_tx.clone();
                scope.spawn(move || lane_worker(chains, rx, results, now, megaflow_drops));
                senders.push(tx);
            }
            drop(results_tx);
            // The spine: classify one run at a time exactly as the serial
            // path does. Runs whose verdicts the spine can compute itself
            // (bypasses, unsteered, chain-gone) settle their slot
            // immediately; chain runs are dispatched to the owning lane and
            // their slot is filled from the results channel after
            // classification finishes. Seed runs block on the lane's reply
            // so the wildcard entry is installed before the next run is
            // classified (mid-batch sealing, as on the serial path).
            let mut packets = batch.into_vec().into_iter();
            #[allow(clippy::type_complexity)]
            let mut pending: Vec<(
                Forwarding,
                Option<Vec<Verdict>>,
                u64,
                &'static str,
                Option<(u64, String)>,
            )> = Vec::new();
            let mut dispatched = 0usize;
            while let Some(run) = switch.next_decision_run(&mut cursor, packets.as_slice()) {
                runs += 1;
                let run_count = run.count as u64;
                // Same flight probe and stage attribution as the serial
                // path, so sampled records are byte-identical across shard
                // counts (settling happens in run order either way).
                let flight_probe: Option<(u64, String)> = if flight.enabled() {
                    packets
                        .as_slice()
                        .first()
                        .and_then(|p| p.five_tuple())
                        .filter(|t| flight.samples(t.shard_hash()))
                        .map(|t| (t.shard_hash(), t.to_string()))
                } else {
                    None
                };
                let stage = match (&run.decision.steering, &run.megaflow) {
                    (None, _) => "unsteered",
                    (_, MegaflowState::Bypass(_)) => "megaflow-bypass",
                    (_, MegaflowState::DropBypass { .. }) => "megaflow-drop",
                    (_, MegaflowState::Seed(_)) => "slow-path",
                    (_, MegaflowState::None) => "exact",
                };
                let run_ix = pending.len();
                let forwarding = run.decision.forwarding.clone();
                let verdicts: Option<Vec<Verdict>> = match run.decision.steering {
                    Some((rule, upstream)) => {
                        let direction = if upstream {
                            Direction::Ingress
                        } else {
                            Direction::Egress
                        };
                        match run.megaflow {
                            MegaflowState::Bypass(tokens) => {
                                let run_packets: Vec<Packet> =
                                    packets.by_ref().take(run.count).collect();
                                let bytes: u64 = run_packets.iter().map(|p| p.len() as u64).sum();
                                if let Some(&lane) = lane_of.get(&rule.chain) {
                                    let _ = senders[lane].send(LaneMsg::CreditBypass {
                                        chain: rule.chain,
                                        direction,
                                        tokens,
                                        packets: run_packets.len() as u64,
                                        bytes,
                                    });
                                }
                                Some(run_packets.into_iter().map(Verdict::Forward).collect())
                            }
                            MegaflowState::DropBypass { tokens, reason } => {
                                let bytes: u64 = packets
                                    .by_ref()
                                    .take(run.count)
                                    .map(|p| p.len() as u64)
                                    .sum();
                                if let Some(&lane) = lane_of.get(&rule.chain) {
                                    let _ = senders[lane].send(LaneMsg::CreditBypassDrop {
                                        chain: rule.chain,
                                        direction,
                                        tokens,
                                        packets: run.count as u64,
                                        bytes,
                                    });
                                }
                                Some(
                                    (0..run.count)
                                        .map(|_| Verdict::Drop(reason.clone()))
                                        .collect(),
                                )
                            }
                            megaflow => match lane_of.get(&rule.chain) {
                                Some(&lane) => {
                                    let chunk: PacketBatch =
                                        packets.by_ref().take(run.count).collect();
                                    if let MegaflowState::Seed(seed) = megaflow {
                                        let (seal_tx, seal_rx) = mpsc::channel();
                                        senders[lane]
                                            .send(LaneMsg::Run {
                                                run_ix,
                                                chain: rule.chain,
                                                direction,
                                                packets: chunk,
                                                seal: Some(seal_tx),
                                            })
                                            .expect("lane outlives the spine");
                                        let reply =
                                            seal_rx.recv().expect("lane replies to seed runs");
                                        let install = switch.install_megaflow(seed, reply.report);
                                        Self::trace_install(trace, now, install);
                                        Some(reply.verdicts)
                                    } else {
                                        senders[lane]
                                            .send(LaneMsg::Run {
                                                run_ix,
                                                chain: rule.chain,
                                                direction,
                                                packets: chunk,
                                                seal: None,
                                            })
                                            .expect("lane outlives the spine");
                                        dispatched += 1;
                                        None
                                    }
                                }
                                // Steering rule without a chain (mid
                                // reconfiguration): forward unprocessed.
                                None => Some(
                                    packets
                                        .by_ref()
                                        .take(run.count)
                                        .map(Verdict::Forward)
                                        .collect(),
                                ),
                            },
                        }
                    }
                    None => Some(
                        packets
                            .by_ref()
                            .take(run.count)
                            .map(Verdict::Forward)
                            .collect(),
                    ),
                };
                pending.push((forwarding, verdicts, run_count, stage, flight_probe));
            }
            debug_assert!(packets.next().is_none(), "runs must cover the whole batch");
            // Close the queues: lanes drain their FIFOs and exit.
            drop(senders);
            for _ in 0..dispatched {
                let (run_ix, verdicts) = results_rx
                    .recv()
                    .expect("every dispatched run yields verdicts");
                pending[run_ix].1 = Some(verdicts);
            }
            // Settle in run order — identical outcome order and identical
            // final counter values as the serial path's per-run settling
            // (counter updates are sums, so deferring them to one in-order
            // pass after classification commutes).
            for (forwarding, verdicts, run_count, stage, flight_probe) in pending {
                let verdicts = verdicts.expect("every run's slot was filled");
                let mut forwarded = 0u64;
                let mut forwarded_bytes = 0u64;
                let mut dropped = 0u64;
                let mut replied = 0u64;
                for verdict in verdicts {
                    match verdict {
                        Verdict::Forward(p) => {
                            forwarded += 1;
                            forwarded_bytes += p.len() as u64;
                            outcomes.push(PacketOutcome::Forwarded(p));
                        }
                        Verdict::Drop(reason) => {
                            dropped += 1;
                            outcomes.push(PacketOutcome::Dropped(reason));
                        }
                        Verdict::Reply(replies) => {
                            replied += 1;
                            for reply in &replies {
                                switch.record_tx(in_port, reply.len());
                            }
                            outcomes.push(PacketOutcome::Replied(replies));
                        }
                    }
                }
                if forwarded > 0 {
                    match &forwarding {
                        Forwarding::Unicast(port) => {
                            switch.record_tx_batch(*port, forwarded, forwarded_bytes)
                        }
                        Forwarding::Flood(ports) => {
                            for port in ports.iter() {
                                switch.record_tx_batch(*port, forwarded, forwarded_bytes);
                            }
                        }
                    }
                }
                if let Some((flow, tuple)) = flight_probe {
                    flight.record(
                        now,
                        FlowRecord {
                            station,
                            flow,
                            tuple,
                            stage,
                            verdict: run_verdict(run_count, dropped, replied),
                            count: run_count,
                        },
                    );
                }
            }
        });
        self.trace.emit(
            now,
            TraceKind::BatchFlush {
                packets: batch_len,
                runs,
            },
        );
        outcomes
    }

    fn process_packet(
        &mut self,
        packet: Packet,
        in_port: gnf_switch::PortId,
        now: SimTime,
    ) -> PacketOutcome {
        self.batch_sizes.record(1);
        let Classified { decision, megaflow } = match self.switch.classify(&packet, in_port, now) {
            Ok(c) => c,
            Err(e) => return PacketOutcome::Dropped(e.to_string().into()),
        };
        // Flight probe and stage, mirroring the batch paths: a per-packet
        // call is a degenerate single-flow run of one.
        let flight_probe: Option<(u64, String)> = if self.flight.enabled() {
            packet
                .five_tuple()
                .filter(|t| self.flight.samples(t.shard_hash()))
                .map(|t| (t.shard_hash(), t.to_string()))
        } else {
            None
        };
        let stage = match (&decision.steering, &megaflow) {
            (None, _) => "unsteered",
            (_, MegaflowState::Bypass(_)) => "megaflow-bypass",
            (_, MegaflowState::DropBypass { .. }) => "megaflow-drop",
            (_, MegaflowState::Seed(_)) => "slow-path",
            (_, MegaflowState::None) => "exact",
        };

        let processed = match decision.steering {
            Some((rule, upstream)) => {
                let direction = if upstream {
                    Direction::Ingress
                } else {
                    Direction::Egress
                };
                match megaflow {
                    // A wildcard entry certified the chain bypass: forward
                    // the unchanged packet and replay the chain's
                    // statistics.
                    MegaflowState::Bypass(tokens) => {
                        if let Some(deployed) = self.chains.get_mut(&rule.chain) {
                            deployed.chain.credit_bypass(
                                direction,
                                &tokens,
                                1,
                                packet.len() as u64,
                            );
                        }
                        Verdict::Forward(packet)
                    }
                    // A wildcard entry certified the chain *drops* this
                    // packet: retire it before the chain runs, replaying
                    // the visited NFs' statistics and the exact reason.
                    MegaflowState::DropBypass { tokens, reason } => {
                        if let Some(deployed) = self.chains.get_mut(&rule.chain) {
                            deployed.chain.credit_bypass_drop(
                                direction,
                                &tokens,
                                1,
                                packet.len() as u64,
                            );
                        }
                        Verdict::Drop(reason)
                    }
                    megaflow => {
                        match self.chains.get_mut(&rule.chain) {
                            Some(deployed) => {
                                let ctx = NfContext::for_client(now, deployed.client);
                                let verdict = deployed.chain.process(packet, direction, &ctx);
                                // Seal the slow-path seed into a wildcard
                                // entry: a certified forward or drop bypass
                                // when the chain vouches for this packet's
                                // processing, the switch decision alone
                                // otherwise.
                                if let MegaflowState::Seed(seed) = megaflow {
                                    let report = seal_report(
                                        self.megaflow_drops,
                                        &deployed.chain,
                                        direction,
                                        std::slice::from_ref(&verdict),
                                    );
                                    let install = self.switch.install_megaflow(seed, report);
                                    Self::trace_install(&mut self.trace, now, install);
                                }
                                verdict
                            }
                            // The steering rule exists but the chain is gone
                            // (mid reconfiguration): forward unprocessed.
                            None => Verdict::Forward(packet),
                        }
                    }
                }
            }
            None => Verdict::Forward(packet),
        };

        let outcome = match processed {
            Verdict::Forward(p) => {
                match decision.forwarding {
                    gnf_switch::Forwarding::Unicast(port) => self.switch.record_tx(port, p.len()),
                    gnf_switch::Forwarding::Flood(ports) => {
                        for port in ports.iter() {
                            self.switch.record_tx(*port, p.len());
                        }
                    }
                }
                PacketOutcome::Forwarded(p)
            }
            Verdict::Drop(reason) => PacketOutcome::Dropped(reason),
            Verdict::Reply(replies) => {
                for reply in &replies {
                    self.switch.record_tx(in_port, reply.len());
                }
                PacketOutcome::Replied(replies)
            }
        };
        if let Some((flow, tuple)) = flight_probe {
            let (dropped, replied) = match &outcome {
                PacketOutcome::Forwarded(_) => (0, 0),
                PacketOutcome::Dropped(_) => (1, 0),
                PacketOutcome::Replied(_) => (0, 1),
            };
            self.flight.record(
                now,
                FlowRecord {
                    station: self.config.station.raw(),
                    flow,
                    tuple,
                    stage,
                    verdict: run_verdict(1, dropped, replied),
                    count: 1,
                },
            );
        }
        self.trace.emit(
            now,
            TraceKind::BatchFlush {
                packets: 1,
                runs: 1,
            },
        );
        outcome
    }

    /// Installs a chain: pulls images, creates a container per NF, wires the
    /// veth pairs into the switch, instantiates the NFs, optionally restores
    /// migrated state and installs the steering rule. Returns (latency,
    /// all-images-cached).
    fn deploy_chain(
        &mut self,
        chain_id: ChainId,
        client: ClientId,
        client_mac: MacAddr,
        specs: &[NfSpec],
        selector: TrafficSelector,
        restore_state: Option<Vec<NfStateSnapshot>>,
    ) -> GnfResult<(SimDuration, bool)> {
        if self.chains.contains_key(&chain_id) {
            return Err(GnfError::already_exists("chain", chain_id));
        }
        self.report_hints.nfs = true;
        self.report_hints.traffic = true;
        let mut total_latency = SimDuration::ZERO;
        let mut all_cached = true;
        let mut containers = Vec::with_capacity(specs.len());
        let mut chain = NfChain::new(&format!("chain-{}", chain_id.raw()));

        let state_bytes: usize = restore_state
            .as_ref()
            .map(|s| s.iter().map(|x| x.approximate_size_bytes()).sum())
            .unwrap_or(0);

        for spec in specs {
            let image = self.repository.by_name(spec.image_name())?.clone();
            let deployed = self
                .runtime
                .deploy(&spec.name, &image, spec.container_footprint())?;
            total_latency += deployed.total_duration;
            all_cached &= deployed.image_was_cached;
            self.switch.connect_container(deployed.handle, &spec.name);
            containers.push(deployed.handle);
            chain.push(spec.instantiate());
        }

        if let Some(state) = restore_state {
            // Restoring state costs time proportional to its size on the
            // first container of the chain (the transfer is serialised).
            if let Some(first) = containers.first() {
                // The container is already running after deploy(); model the
                // restore cost explicitly via the cost model.
                total_latency += self.runtime.cost_model().restore_time(state_bytes);
                let _ = first;
            }
            chain.import_state(state);
        }

        self.switch.steering_mut().install(SteeringRule {
            client,
            client_mac,
            selector,
            chain: chain_id,
        });

        self.chains.insert(
            chain_id,
            DeployedChain {
                chain_id,
                client,
                client_mac,
                specs: specs.to_vec(),
                chain,
                containers,
                selector,
                deploy_latency: total_latency,
                staged: false,
                precopy_baseline: None,
            },
        );
        Ok((total_latency, all_cached))
    }

    /// Stages a chain on a pre-copy migration target: deploys the containers
    /// and imports the baseline state exactly like [`Agent::deploy_chain`],
    /// but installs **no steering rule** — the staged chain never sees
    /// traffic until [`Agent::activate_chain`] switches it over. Re-preparing
    /// an already-staged chain is idempotent (the baseline is replaced
    /// wholesale), so a retried `PrepareChain` after a lost reply converges.
    fn prepare_chain(
        &mut self,
        chain_id: ChainId,
        client: ClientId,
        client_mac: MacAddr,
        specs: &[NfSpec],
        selector: TrafficSelector,
        precopy_state: Vec<NfStateSnapshot>,
    ) -> GnfResult<(SimDuration, bool)> {
        self.report_hints.nfs = true;
        self.report_hints.traffic = true;
        let state_bytes: usize = precopy_state
            .iter()
            .map(|s| s.approximate_size_bytes())
            .sum();
        if let Some(existing) = self.chains.get_mut(&chain_id) {
            if !existing.staged {
                return Err(GnfError::already_exists("chain", chain_id));
            }
            existing.chain.replace_state(precopy_state);
            let latency = self.runtime.cost_model().restore_time(state_bytes);
            return Ok((latency, true));
        }
        let mut total_latency = SimDuration::ZERO;
        let mut all_cached = true;
        let mut containers = Vec::with_capacity(specs.len());
        let mut chain = NfChain::new(&format!("chain-{}", chain_id.raw()));
        for spec in specs {
            let image = self.repository.by_name(spec.image_name())?.clone();
            let deployed = self
                .runtime
                .deploy(&spec.name, &image, spec.container_footprint())?;
            total_latency += deployed.total_duration;
            all_cached &= deployed.image_was_cached;
            self.switch.connect_container(deployed.handle, &spec.name);
            containers.push(deployed.handle);
            chain.push(spec.instantiate());
        }
        total_latency += self.runtime.cost_model().restore_time(state_bytes);
        chain.replace_state(precopy_state);
        self.chains.insert(
            chain_id,
            DeployedChain {
                chain_id,
                client,
                client_mac,
                specs: specs.to_vec(),
                chain,
                containers,
                selector,
                deploy_latency: total_latency,
                staged: true,
                precopy_baseline: None,
            },
        );
        Ok((total_latency, all_cached))
    }

    /// Tears a chain down: removes steering, stops and removes its containers
    /// and drops the NF instances.
    fn remove_chain(&mut self, chain_id: ChainId) -> GnfResult<()> {
        self.report_hints.nfs = true;
        self.report_hints.traffic = true;
        let deployed = self
            .chains
            .remove(&chain_id)
            .ok_or_else(|| GnfError::not_found("chain", chain_id))?;
        // Remove the steering rule first so no packet is steered into a chain
        // that is being torn down.
        self.switch
            .steering_mut()
            .remove_chain(deployed.client_mac, chain_id);
        for handle in deployed.containers {
            self.switch.disconnect_container(handle);
            // Stop might fail if never started; ignore state errors, always remove.
            let _ = self.runtime.stop(handle);
            let _ = self.runtime.remove(handle);
        }
        Ok(())
    }

    /// Checkpoints a chain's NF state for migration. Returns the state and the
    /// time the checkpoint took on this station.
    fn checkpoint_chain(
        &mut self,
        chain_id: ChainId,
    ) -> GnfResult<(Vec<NfStateSnapshot>, SimDuration)> {
        let deployed = self
            .chains
            .get(&chain_id)
            .ok_or_else(|| GnfError::not_found("chain", chain_id))?;
        let state = deployed.chain.export_state();
        let state_bytes: usize = state.iter().map(|s| s.approximate_size_bytes()).sum();
        let mut latency = SimDuration::ZERO;
        for handle in &deployed.containers {
            latency += self
                .runtime
                .checkpoint(*handle, state_bytes / deployed.containers.len().max(1))?;
        }
        Ok((state, latency))
    }

    /// Exports the chain's full state as a pre-copy baseline and retains a
    /// copy so a later [`Agent::delta_chain`] can diff against it. The chain
    /// keeps serving traffic throughout — nothing is torn down or paused.
    fn precopy_chain(
        &mut self,
        chain_id: ChainId,
    ) -> GnfResult<(Vec<NfStateSnapshot>, SimDuration)> {
        let (state, latency) = self.checkpoint_chain(chain_id)?;
        if let Some(deployed) = self.chains.get_mut(&chain_id) {
            deployed.precopy_baseline = Some(state.clone());
        }
        Ok((state, latency))
    }

    /// Diffs the chain's current state against the baseline retained by
    /// [`Agent::precopy_chain`], returning only the dirty delta. The baseline
    /// stays retained, so a retried `DeltaChain` after a lost reply is
    /// idempotent.
    fn delta_chain(&mut self, chain_id: ChainId) -> GnfResult<(Vec<NfStateDelta>, SimDuration)> {
        let deployed = self
            .chains
            .get(&chain_id)
            .ok_or_else(|| GnfError::not_found("chain", chain_id))?;
        let baseline = deployed
            .precopy_baseline
            .as_ref()
            .ok_or_else(|| GnfError::not_found("precopy baseline for chain", chain_id))?;
        let current = deployed.chain.export_state();
        let deltas: Vec<NfStateDelta> = baseline
            .iter()
            .zip(&current)
            .map(|(base, cur)| NfStateDelta::diff(base, cur))
            .collect();
        // Checkpointing the delta costs time proportional to the *dirty*
        // bytes, not the full table — that is the whole point of pre-copy.
        let delta_bytes: usize = deltas.iter().map(|d| d.approximate_size_bytes()).sum();
        let mut latency = SimDuration::ZERO;
        for handle in &deployed.containers {
            latency += self
                .runtime
                .checkpoint(*handle, delta_bytes / deployed.containers.len().max(1))?;
        }
        Ok((deltas, latency))
    }

    /// Switches a staged chain over: replays the dirty deltas onto the
    /// pre-copied baseline and installs the steering rule. Only after this
    /// does the chain see traffic; the service-affecting window is therefore
    /// the delta replay, whose cost scales with churn rather than table size.
    fn activate_chain(
        &mut self,
        chain_id: ChainId,
        deltas: Vec<NfStateDelta>,
    ) -> GnfResult<SimDuration> {
        self.report_hints.nfs = true;
        self.report_hints.traffic = true;
        let deployed = self
            .chains
            .get_mut(&chain_id)
            .ok_or_else(|| GnfError::not_found("chain", chain_id))?;
        if !deployed.staged {
            // A duplicate activation (retry after a lost reply): the chain is
            // already serving. Report already-exists so the Manager's
            // reconciliation counts it as a late success.
            return Err(GnfError::already_exists("chain", chain_id));
        }
        let delta_bytes: usize = deltas.iter().map(|d| d.approximate_size_bytes()).sum();
        deployed.chain.apply_state_deltas(deltas);
        deployed.staged = false;
        let (client, client_mac, selector) =
            (deployed.client, deployed.client_mac, deployed.selector);
        self.switch.steering_mut().install(SteeringRule {
            client,
            client_mac,
            selector,
            chain: chain_id,
        });
        Ok(self.runtime.cost_model().restore_time(delta_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_nf::testing::sample_specs;
    use gnf_packet::builder;
    use gnf_types::MigrationId;

    fn agent() -> (Agent, AgentToManager) {
        Agent::new(
            AgentConfig {
                agent: AgentId::new(1),
                station: StationId::new(1),
                host_class: HostClass::EdgeServer,
            },
            ImageRepository::with_standard_images(),
        )
    }

    fn client_mac() -> MacAddr {
        MacAddr::derived(1, 0)
    }
    fn client_ip() -> Ipv4Addr {
        Ipv4Addr::new(172, 16, 0, 2)
    }

    fn deploy_msg(chain: u64, specs: Vec<NfSpec>) -> ManagerToAgent {
        ManagerToAgent::DeployChain {
            chain: ChainId::new(chain),
            client: ClientId::new(0),
            client_mac: client_mac(),
            specs,
            selector: TrafficSelector::all(),
            restore_state: None,
            migration: None,
        }
    }

    #[test]
    fn registration_announces_capacity() {
        let (agent, register) = agent();
        match register {
            AgentToManager::Register {
                station, capacity, ..
            } => {
                assert_eq!(station, StationId::new(1));
                assert_eq!(capacity, HostClass::EdgeServer.capacity());
            }
            other => panic!("unexpected register message {other:?}"),
        }
        assert_eq!(agent.running_nfs(), 0);
    }

    #[test]
    fn client_association_notifies_the_manager() {
        let (mut agent, _) = agent();
        let msgs = agent.client_associated(ClientId::new(0), client_mac(), client_ip());
        assert_eq!(msgs.len(), 1);
        assert_eq!(agent.connected_clients(), vec![ClientId::new(0)]);
        let msgs = agent.client_disassociated(ClientId::new(0));
        assert_eq!(msgs.len(), 1);
        assert!(agent.connected_clients().is_empty());
        // Disassociating an unknown client is silent.
        assert!(agent.client_disassociated(ClientId::new(9)).is_empty());
    }

    #[test]
    fn deploy_chain_starts_containers_and_installs_steering() {
        let (mut agent, _) = agent();
        agent.client_associated(ClientId::new(0), client_mac(), client_ip());
        let specs = vec![sample_specs()[0].clone(), sample_specs()[1].clone()];
        let replies = agent.handle_manager_msg(deploy_msg(1, specs), SimTime::from_secs(1));
        match &replies[0] {
            AgentToManager::ChainDeployed {
                chain,
                latency,
                images_cached,
                ..
            } => {
                assert_eq!(*chain, ChainId::new(1));
                assert!(!images_cached, "first deployment pulls images");
                assert!(latency.as_millis() > 0);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(agent.running_nfs(), 2);
        assert_eq!(agent.switch().steering().len(), 1);
        // Two veth pairs per NF plus access+uplink.
        assert_eq!(agent.switch().ports().len(), 2 + 2 * 2);
        // A second deployment of the same chain id fails.
        let replies = agent.handle_manager_msg(
            deploy_msg(1, vec![sample_specs()[0].clone()]),
            SimTime::from_secs(2),
        );
        assert!(matches!(replies[0], AgentToManager::CommandFailed { .. }));
    }

    #[test]
    fn steered_traffic_is_processed_by_the_chain() {
        let (mut agent, _) = agent();
        agent.client_associated(ClientId::new(0), client_mac(), client_ip());
        // Firewall blocking ssh + HTTP filter blocking ads.example.
        let specs = vec![sample_specs()[0].clone(), sample_specs()[1].clone()];
        agent.handle_manager_msg(deploy_msg(1, specs), SimTime::from_secs(1));

        let now = SimTime::from_secs(2);
        // Allowed web traffic is forwarded.
        let ok = builder::http_get(
            client_mac(),
            MacAddr::derived(0xA0, 1),
            client_ip(),
            Ipv4Addr::new(203, 0, 113, 10),
            40_000,
            "www.gla.ac.uk",
            "/",
        );
        assert!(matches!(
            agent.process_upstream_packet(ok, now),
            PacketOutcome::Forwarded(_)
        ));
        // SSH is dropped by the firewall.
        let ssh = builder::tcp_syn(
            client_mac(),
            MacAddr::derived(0xA0, 1),
            client_ip(),
            Ipv4Addr::new(203, 0, 113, 10),
            40_001,
            22,
        );
        assert!(matches!(
            agent.process_upstream_packet(ssh, now),
            PacketOutcome::Dropped(_)
        ));
        // A blocked URL gets a 403 reply.
        let blocked = builder::http_get(
            client_mac(),
            MacAddr::derived(0xA0, 1),
            client_ip(),
            Ipv4Addr::new(203, 0, 113, 11),
            40_002,
            "ads.example",
            "/banner",
        );
        match agent.process_upstream_packet(blocked, now) {
            PacketOutcome::Replied(replies) => assert_eq!(replies.len(), 1),
            other => panic!("expected a reply, got {other:?}"),
        }
        // The blocked request produced a notification for the Manager.
        let notifications = agent.drain_nf_notifications(now);
        assert_eq!(notifications.len(), 1);
        assert!(matches!(
            notifications[0],
            AgentToManager::NfNotification { .. }
        ));
    }

    #[test]
    fn batched_processing_matches_per_packet_processing() {
        let make_agent = || {
            let (mut agent, _) = agent();
            agent.client_associated(ClientId::new(0), client_mac(), client_ip());
            let specs = vec![sample_specs()[0].clone(), sample_specs()[1].clone()];
            agent.handle_manager_msg(deploy_msg(1, specs), SimTime::from_secs(1));
            agent
        };
        let now = SimTime::from_secs(2);
        let server = MacAddr::derived(0xA0, 1);
        let dst = Ipv4Addr::new(203, 0, 113, 10);
        let packets = vec![
            builder::http_get(
                client_mac(),
                server,
                client_ip(),
                dst,
                40_000,
                "ok.example",
                "/",
            ),
            builder::http_get(
                client_mac(),
                server,
                client_ip(),
                dst,
                40_000,
                "ok.example",
                "/a",
            ),
            builder::tcp_syn(client_mac(), server, client_ip(), dst, 40_001, 22), // fw drop
            builder::http_get(
                client_mac(),
                server,
                client_ip(),
                Ipv4Addr::new(203, 0, 113, 11),
                40_002,
                "ads.example",
                "/x",
            ), // 403 reply
            builder::http_get(
                client_mac(),
                server,
                client_ip(),
                dst,
                40_000,
                "ok.example",
                "/b",
            ),
        ];

        let mut per_packet = make_agent();
        let expected: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| per_packet.process_upstream_packet(p.clone(), now))
            .collect();

        let mut batched = make_agent();
        let outcomes = batched.process_upstream_batch(packets.into(), now);
        assert_eq!(outcomes, expected, "outcomes aligned with the batch");

        // Switch counters, flow-cache statistics and NF statistics agree.
        assert_eq!(
            batched.flow_cache_telemetry(),
            per_packet.flow_cache_telemetry()
        );
        for (a, b) in batched.chains().zip(per_packet.chains()) {
            assert_eq!(a.chain.stats(), b.chain.stats());
            assert_eq!(a.chain.per_nf_stats(), b.chain.per_nf_stats());
        }
        for (a, b) in batched
            .switch()
            .ports()
            .iter()
            .zip(per_packet.switch().ports())
        {
            assert_eq!(a.counters, b.counters, "port {} counters", a.name);
        }
        // Both agents saw 5 packets of data-plane work; the batched one in
        // one batch, the per-packet one in five singleton batches.
        assert_eq!(batched.batch_telemetry().packets, 5);
        assert_eq!(batched.batch_telemetry().batches, 1);
        assert_eq!(batched.batch_telemetry().max_batch, 5);
        assert_eq!(per_packet.batch_telemetry().batches, 5);
        // And both produce the same notifications for the Manager.
        assert_eq!(
            batched.drain_nf_notifications(now).len(),
            per_packet.drain_nf_notifications(now).len()
        );
    }

    #[test]
    fn megaflow_bypass_is_equivalent_to_full_processing() {
        use gnf_nf::firewall::{CidrV4, FirewallConfig, FirewallRule, RuleAction};
        use gnf_nf::{NfConfig, NfSpec};

        // A conntrack-off firewall (pure, bypassable) whose rules never
        // match the generated traffic: CIDR + port-range rules only.
        let untracked_fw_spec = || {
            NfSpec::new(
                "fw",
                NfConfig::Firewall(FirewallConfig {
                    rules: vec![
                        FirewallRule::block_dst(
                            "cidr",
                            CidrV4::new(Ipv4Addr::new(192, 168, 0, 0), 16),
                        ),
                        FirewallRule {
                            protocol: gnf_nf::firewall::ProtocolMatch::Tcp,
                            dst_port: gnf_nf::firewall::PortMatch::Range(1, 1023),
                            action: RuleAction::Drop,
                            ..FirewallRule::any("low-ports", RuleAction::Drop)
                        },
                    ],
                    default_action: RuleAction::Accept,
                    track_connections: false,
                    conntrack_idle_timeout_secs: 60,
                }),
            )
        };
        let make_agent = |megaflow: bool| {
            let (mut agent, _) = agent();
            agent.set_megaflow_enabled(megaflow);
            agent.client_associated(ClientId::new(0), client_mac(), client_ip());
            agent.handle_manager_msg(
                deploy_msg(1, vec![untracked_fw_spec()]),
                SimTime::from_secs(1),
            );
            agent
        };
        // New-flow churn: every packet opens a brand-new flow, plus one
        // blocked flow (privileged port) mixed in.
        let server = MacAddr::derived(0xA0, 1);
        let dst = Ipv4Addr::new(203, 0, 113, 10);
        let packets: Vec<gnf_packet::Packet> = (0..50u16)
            .map(|i| {
                let dst_port = if i % 10 == 9 { 22 } else { 8080 };
                builder::tcp_syn(client_mac(), server, client_ip(), dst, 40_000 + i, dst_port)
            })
            .collect();
        let now = SimTime::from_secs(2);

        let mut off = make_agent(false);
        let expected: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| off.process_upstream_packet(p.clone(), now))
            .collect();

        let mut on = make_agent(true);
        let outcomes: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| on.process_upstream_packet(p.clone(), now))
            .collect();

        assert_eq!(outcomes, expected, "outcomes identical with megaflow on");
        for (a, b) in on.chains().zip(off.chains()) {
            assert_eq!(
                a.chain.stats(),
                b.chain.stats(),
                "chain stats replayed exactly"
            );
            assert_eq!(a.chain.per_nf_stats(), b.chain.per_nf_stats());
            assert_eq!(a.chain.export_state(), b.chain.export_state());
        }
        for (a, b) in on.switch().ports().iter().zip(off.switch().ports()) {
            assert_eq!(a.counters, b.counters, "port {} counters", a.name);
        }
        // The wildcard layer actually served the churn: the accepted high
        // ports ride a forward-bypass entry and the dropped privileged
        // port rides a certified *drop* entry.
        let stats = on.megaflow_telemetry();
        assert!(
            stats.stats.hits > 40,
            "churn rides the wildcard entries: {stats:?}"
        );
        assert!(
            stats.stats.drop_hits >= 4,
            "denied churn rides the drop entries: {stats:?}"
        );
        assert_eq!(stats.stats.drop_installs, 1, "one dropped pattern");
        assert_eq!(off.megaflow_telemetry(), Default::default());

        // And the batched path produces the same outcomes, NF stats — and,
        // thanks to mid-batch sealing, the same cache telemetry — as the
        // per-packet megaflow path.
        let mut on_batched = make_agent(true);
        let batched = on_batched.process_upstream_batch(packets.into(), now);
        assert_eq!(batched, expected);
        for (a, b) in on_batched.chains().zip(on.chains()) {
            assert_eq!(a.chain.stats(), b.chain.stats());
            assert_eq!(a.chain.per_nf_stats(), b.chain.per_nf_stats());
        }
        assert_eq!(
            on_batched.megaflow_telemetry(),
            on.megaflow_telemetry(),
            "mid-batch sealing makes batched cache telemetry match per-packet"
        );
        assert_eq!(on_batched.flow_cache_telemetry(), on.flow_cache_telemetry());
    }

    #[test]
    fn drop_bypass_toggle_preserves_outcomes_but_changes_the_cache_split() {
        use gnf_nf::firewall::{
            FirewallConfig, FirewallRule, PortMatch, ProtocolMatch, RuleAction,
        };
        use gnf_nf::{NfConfig, NfSpec};

        // A conntrack-off firewall that denies every privileged port: the
        // scan below is pure dropped-flow churn.
        let blocking_fw = || {
            NfSpec::new(
                "fw",
                NfConfig::Firewall(FirewallConfig {
                    rules: vec![FirewallRule {
                        protocol: ProtocolMatch::Tcp,
                        dst_port: PortMatch::Range(1, 1023),
                        action: RuleAction::Drop,
                        ..FirewallRule::any("privileged", RuleAction::Drop)
                    }],
                    default_action: RuleAction::Accept,
                    track_connections: false,
                    conntrack_idle_timeout_secs: 60,
                }),
            )
        };
        let make_agent = |drops: bool| {
            let (mut agent, _) = agent();
            agent.set_megaflow_enabled(true);
            agent.set_megaflow_drop_enabled(drops);
            agent.client_associated(ClientId::new(0), client_mac(), client_ip());
            agent.handle_manager_msg(deploy_msg(1, vec![blocking_fw()]), SimTime::from_secs(1));
            agent
        };
        // A port scan: every packet a brand-new flow to the same denied
        // port (fresh source ports), the wildcard drop entry's workload.
        let server = MacAddr::derived(0xA0, 1);
        let dst = Ipv4Addr::new(203, 0, 113, 10);
        let packets: Vec<gnf_packet::Packet> = (0..40u16)
            .map(|i| builder::tcp_syn(client_mac(), server, client_ip(), dst, 40_000 + i, 22))
            .collect();
        let now = SimTime::from_secs(2);

        let mut with_drops = make_agent(true);
        let on: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| with_drops.process_upstream_packet(p.clone(), now))
            .collect();
        let mut without_drops = make_agent(false);
        let off: Vec<PacketOutcome> = packets
            .iter()
            .map(|p| without_drops.process_upstream_packet(p.clone(), now))
            .collect();

        assert_eq!(on, off, "outcomes identical with and without drop entries");
        assert!(on.iter().all(|o| matches!(o, PacketOutcome::Dropped(_))));
        for (a, b) in with_drops.chains().zip(without_drops.chains()) {
            assert_eq!(a.chain.stats(), b.chain.stats());
            assert_eq!(a.chain.per_nf_stats(), b.chain.per_nf_stats());
        }
        for (a, b) in with_drops
            .switch()
            .ports()
            .iter()
            .zip(without_drops.switch().ports())
        {
            assert_eq!(a.counters, b.counters, "port {} counters", a.name);
        }
        // Only the cache split differs: with drop entries the scan is
        // retired at the switch, without them every packet walks the chain.
        let stats_on = with_drops.megaflow_telemetry().stats;
        let stats_off = without_drops.megaflow_telemetry().stats;
        assert_eq!(stats_on.drop_installs, 1);
        assert_eq!(stats_on.drop_hits, 39, "the rest of the scan bypassed");
        assert_eq!(stats_off.drop_hits, 0);
        assert_eq!(stats_off.drop_installs, 0);
        // Without drop entries the pattern still seals decision-only, so
        // the wildcard layer serves the switch decision — but every packet
        // re-walks the chain (chain packets_in above is 40 either way; with
        // drops on, 39 of those were replayed, not processed).
        assert_eq!(stats_off.hits, 39);
        let walked = without_drops
            .chains()
            .next()
            .expect("chain deployed")
            .chain
            .stats();
        assert_eq!(walked.packets_in, 40);

        // The batched entry point retires the scan identically — and the
        // first packet's mid-batch seal serves the rest of the same flush.
        let mut batched = make_agent(true);
        let outcomes = batched.process_upstream_batch(packets.into(), now);
        assert_eq!(outcomes, on);
        assert_eq!(
            batched.megaflow_telemetry(),
            with_drops.megaflow_telemetry()
        );
        for (a, b) in batched.chains().zip(with_drops.chains()) {
            assert_eq!(a.chain.stats(), b.chain.stats());
            assert_eq!(a.chain.per_nf_stats(), b.chain.per_nf_stats());
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (mut agent, _) = agent();
        assert!(agent
            .process_upstream_batch(PacketBatch::new(), SimTime::from_secs(1))
            .is_empty());
        assert_eq!(agent.batch_telemetry().batches, 0);
    }

    #[test]
    fn unsteered_traffic_passes_straight_through() {
        let (mut agent, _) = agent();
        let now = SimTime::from_secs(1);
        let pkt = builder::tcp_syn(
            MacAddr::derived(9, 9),
            MacAddr::derived(0xA0, 1),
            Ipv4Addr::new(172, 16, 0, 99),
            Ipv4Addr::new(203, 0, 113, 10),
            40_000,
            443,
        );
        assert!(matches!(
            agent.process_upstream_packet(pkt, now),
            PacketOutcome::Forwarded(_)
        ));
    }

    #[test]
    fn remove_chain_releases_everything() {
        let (mut agent, _) = agent();
        agent.client_associated(ClientId::new(0), client_mac(), client_ip());
        agent.handle_manager_msg(
            deploy_msg(1, vec![sample_specs()[0].clone()]),
            SimTime::from_secs(1),
        );
        assert_eq!(agent.running_nfs(), 1);
        let replies = agent.handle_manager_msg(
            ManagerToAgent::RemoveChain {
                chain: ChainId::new(1),
                client: ClientId::new(0),
                migration: None,
            },
            SimTime::from_secs(2),
        );
        assert!(matches!(replies[0], AgentToManager::ChainRemoved { .. }));
        assert_eq!(agent.running_nfs(), 0);
        assert_eq!(agent.switch().steering().len(), 0);
        assert_eq!(agent.switch().ports().len(), 2);
        // Removing again fails.
        let replies = agent.handle_manager_msg(
            ManagerToAgent::RemoveChain {
                chain: ChainId::new(1),
                client: ClientId::new(0),
                migration: None,
            },
            SimTime::from_secs(3),
        );
        assert!(matches!(replies[0], AgentToManager::CommandFailed { .. }));
    }

    #[test]
    fn crash_loses_all_soft_state_and_bumps_the_generation() {
        let (mut agent, _) = agent();
        agent.client_associated(ClientId::new(0), client_mac(), client_ip());
        agent.handle_manager_msg(
            deploy_msg(1, vec![sample_specs()[0].clone()]),
            SimTime::from_secs(1),
        );
        // Warm the data plane: a forwarded flow populates the flow cache and
        // the MAC table.
        let now = SimTime::from_secs(2);
        let flow = || {
            builder::tcp_syn(
                client_mac(),
                MacAddr::derived(0xA0, 1),
                client_ip(),
                Ipv4Addr::new(203, 0, 113, 10),
                41_000,
                443,
            )
        };
        agent.process_upstream_packet(flow(), now);
        agent.process_upstream_packet(flow(), now);
        assert!(agent.switch().flow_cache_len() > 0);
        assert!(agent.switch().mac_table_len() > 0);
        assert_eq!(agent.generation(), 0);

        agent.crash();
        assert_eq!(agent.generation(), 1);
        assert_eq!(agent.chaos_telemetry().crashes, 1);
        assert_eq!(agent.running_nfs(), 0);
        assert!(agent.connected_clients().is_empty());
        assert_eq!(agent.switch().flow_cache_len(), 0);
        assert_eq!(agent.switch().megaflow_len(), 0);
        assert_eq!(agent.switch().mac_table_len(), 0);
        assert_eq!(agent.switch().steering().len(), 0);

        // The reborn Agent re-registers exactly like a fresh one.
        let rejoin = agent.rejoin();
        assert!(matches!(rejoin, AgentToManager::Register { .. }));

        // Churn storms and invalidation floods are counted.
        agent.chaos_steering_churn(5);
        agent.chaos_invalidate_caches(3);
        let chaos = agent.chaos_telemetry();
        assert_eq!(chaos.steering_churn_rules, 5);
        assert_eq!(chaos.cache_invalidations, 3);
        assert_eq!(agent.switch().steering().len(), 0, "churn rules removed");
    }

    #[test]
    fn checkpoint_then_restore_preserves_nf_state() {
        // Source agent: deploy a firewall chain and let it track a connection.
        let (mut source, _) = agent();
        source.client_associated(ClientId::new(0), client_mac(), client_ip());
        source.handle_manager_msg(
            deploy_msg(1, vec![sample_specs()[0].clone()]),
            SimTime::from_secs(1),
        );
        let now = SimTime::from_secs(2);
        let flow = builder::tcp_syn(
            client_mac(),
            MacAddr::derived(0xA0, 1),
            client_ip(),
            Ipv4Addr::new(203, 0, 113, 10),
            41_000,
            443,
        );
        source.process_upstream_packet(flow, now);

        let replies = source.handle_manager_msg(
            ManagerToAgent::CheckpointChain {
                chain: ChainId::new(1),
                client: ClientId::new(0),
                migration: MigrationId::new(1),
            },
            SimTime::from_secs(3),
        );
        let AgentToManager::ChainState {
            state,
            checkpoint_latency,
            ..
        } = &replies[0]
        else {
            panic!("expected chain state, got {:?}", replies[0]);
        };
        assert!(checkpoint_latency.as_millis() > 0);
        assert!(
            state.iter().any(|s| !s.is_empty()),
            "conntrack state present"
        );

        // Target agent: deploy the same chain with the migrated state.
        let (mut target, _) = agent();
        target.client_associated(ClientId::new(0), client_mac(), client_ip());
        let replies = target.handle_manager_msg(
            ManagerToAgent::DeployChain {
                chain: ChainId::new(1),
                client: ClientId::new(0),
                client_mac: client_mac(),
                specs: vec![sample_specs()[0].clone()],
                selector: TrafficSelector::all(),
                restore_state: Some(state.clone()),
                migration: Some(MigrationId::new(1)),
            },
            SimTime::from_secs(4),
        );
        assert!(matches!(replies[0], AgentToManager::ChainDeployed { .. }));
        assert!(
            target
                .chain(ChainId::new(1))
                .unwrap()
                .chain
                .state_size_bytes()
                > 0
        );
    }

    #[test]
    fn reports_reflect_running_nfs_and_clients() {
        let (mut agent, _) = agent();
        agent.client_associated(ClientId::new(0), client_mac(), client_ip());
        agent.handle_manager_msg(
            deploy_msg(
                1,
                vec![sample_specs()[0].clone(), sample_specs()[2].clone()],
            ),
            SimTime::from_secs(1),
        );
        let report = agent.make_report(SimTime::from_secs(10));
        let AgentToManager::Report(report) = report else {
            panic!("expected a report");
        };
        assert_eq!(report.station, StationId::new(1));
        assert_eq!(report.running_nfs, 2);
        assert_eq!(report.connected_clients, vec![ClientId::new(0)]);
        assert!(report.usage.memory_mb > 0);
        assert_eq!(report.cached_images, 2);
    }

    #[test]
    fn ping_gets_pong() {
        let (mut agent, _) = agent();
        let replies = agent.handle_manager_msg(ManagerToAgent::Ping, SimTime::ZERO);
        assert_eq!(replies, vec![AgentToManager::Pong]);
        assert_eq!(agent.commands_handled(), 1);
    }

    /// Two identically-driven agents — one sending full reports, one delta
    /// frames — must describe the identical station state at every interval
    /// once the delta stream is reassembled.
    #[test]
    fn delta_reports_reconstruct_byte_identically() {
        use gnf_telemetry::ReportReassembler;
        let (mut full, _) = agent();
        let (mut delta, _) = agent();
        delta.set_delta_reporting(2);
        assert!(delta.delta_reporting());
        let mut reassembler = ReportReassembler::new();

        let drive = |a: &mut Agent, step: u64| {
            let now = SimTime::from_secs(step * 2);
            match step {
                1 => {
                    a.client_associated(ClientId::new(0), client_mac(), client_ip());
                }
                2 => {
                    a.handle_manager_msg(deploy_msg(1, sample_specs()), now);
                }
                3 => {
                    let pkt = builder::udp_packet(
                        client_mac(),
                        MacAddr::derived(0xA0, 0),
                        Ipv4Addr::new(172, 16, 0, 2),
                        Ipv4Addr::new(93, 184, 216, 34),
                        4444,
                        53,
                        b"x",
                    );
                    let _ = a.process_upstream_packet(pkt, now);
                }
                5 => a.crash(),
                _ => {}
            }
        };

        for step in 0..8u64 {
            let now = SimTime::from_secs(step * 2 + 1);
            drive(&mut full, step);
            drive(&mut delta, step);
            let AgentToManager::Report(expected) = full.make_report(now) else {
                panic!("expected a full report");
            };
            let AgentToManager::ReportDelta(frame) = delta.make_report(now) else {
                panic!("expected a delta frame");
            };
            if step == 5 {
                // First frame after the crash: a forced keyframe.
                assert!(frame.is_keyframe());
                assert!(frame.forced);
            }
            let rebuilt = reassembler.apply(&frame).expect("in-order frame");
            assert_eq!(
                serde_json::to_string(&rebuilt).unwrap(),
                serde_json::to_string(&*expected).unwrap(),
                "step {step}"
            );
        }
        assert!(reassembler.stats().deltas_applied > 0);
        assert_eq!(reassembler.stats().forced_resyncs, 1);
    }

    /// The scratch buffer must not leak state between intervals: a section
    /// that shrinks (clients leaving, shards resetting) shrinks in the next
    /// report too.
    #[test]
    fn scratch_report_does_not_leak_previous_intervals() {
        let (mut agent, _) = agent();
        agent.client_associated(ClientId::new(3), client_mac(), client_ip());
        agent.client_associated(ClientId::new(7), MacAddr::derived(1, 1), client_ip());
        let AgentToManager::Report(first) = agent.make_report(SimTime::from_secs(2)) else {
            panic!("expected a report");
        };
        assert_eq!(first.connected_clients.len(), 2);
        agent.client_disassociated(ClientId::new(3));
        agent.client_disassociated(ClientId::new(7));
        let AgentToManager::Report(second) = agent.make_report(SimTime::from_secs(4)) else {
            panic!("expected a report");
        };
        assert!(second.connected_clients.is_empty());
    }
}
