//! Intra-station RSS execution lanes: the worker side of the Agent's
//! sharded batch path.
//!
//! When a station runs with more than one shard, the Agent keeps all switch
//! work — classification, cache lookups, megaflow installs, TX counters — on
//! the calling thread (the *spine*) and dispatches NF-chain work to `N` lane
//! threads. Every chain is owned by exactly one lane for the duration of a
//! batch, chosen by a stable hash of its [`ChainId`], and each lane drains
//! its queue in FIFO order; together these two facts mean every chain sees
//! its runs, bypass credits and drop credits in exactly the order the serial
//! path would have applied them, so NF state, statistics, verdicts and
//! emitted events never diverge from the unsharded run — only the thread
//! that executes the chain changes.
//!
//! Slow-path runs that carry a megaflow *seed* are the one synchronous case:
//! the spine must install the sealed wildcard entry before classifying the
//! next run (mid-batch sealing — an entry sealed from run N already serves
//! run N + 1), so those runs carry a reply channel and the spine blocks
//! until the owning lane reports the verdicts and the seal report. Seeds
//! only occur on slow-path classifications, so a warm steady-state batch
//! never blocks.

use crate::agent::{seal_report, DeployedChain};
use gnf_nf::{Direction, NfContext, Verdict};
use gnf_packet::{FieldMask, PacketBatch};
use gnf_switch::BypassOutcome;
use gnf_types::{ChainId, SimTime};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

/// One unit of chain work routed to a lane. Messages for the same chain are
/// always sent to the same lane, in spine (run) order.
pub(crate) enum LaneMsg {
    /// Process a single-flow run through its chain.
    Run {
        /// Index of the run within the batch (for result reassembly).
        run_ix: usize,
        /// The owning chain (guaranteed to live on this lane).
        chain: ChainId,
        /// Traversal direction.
        direction: Direction,
        /// The run's packets, in batch order.
        packets: PacketBatch,
        /// `Some` when the run carries a megaflow seed: the lane must reply
        /// with the verdicts *and* the seal report so the spine can install
        /// the wildcard entry before classifying the next run.
        seal: Option<mpsc::Sender<SealReply>>,
    },
    /// Replay the statistics of a wildcard forward-bypass hit.
    CreditBypass {
        /// The credited chain.
        chain: ChainId,
        /// Traversal direction.
        direction: Direction,
        /// Per-NF replay tokens from the wildcard entry.
        tokens: Arc<[u64]>,
        /// Packets bypassed.
        packets: u64,
        /// Bytes bypassed.
        bytes: u64,
    },
    /// Replay the statistics of a wildcard certified-drop hit.
    CreditBypassDrop {
        /// The credited chain.
        chain: ChainId,
        /// Traversal direction.
        direction: Direction,
        /// Per-NF replay tokens, the dropping NF last.
        tokens: Arc<[u64]>,
        /// Packets retired.
        packets: u64,
        /// Bytes retired.
        bytes: u64,
    },
}

/// A lane's synchronous answer to a seed-carrying [`LaneMsg::Run`].
pub(crate) struct SealReply {
    /// The run's verdicts, in packet order.
    pub verdicts: Vec<Verdict>,
    /// The seal report for the run's megaflow seed (gated through
    /// [`seal_report`], exactly as on the serial path).
    pub report: Option<(FieldMask, BypassOutcome)>,
}

/// The stable lane assignment of a chain: an avalanche hash of the raw id
/// (MurmurHash3 `fmix64`) so consecutive chain ids spread over lanes.
pub(crate) fn lane_of_chain(chain: ChainId, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    let mut hash = chain.raw();
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    (hash % lanes as u64) as usize
}

/// Body of one lane thread: drains the queue in FIFO order, applying each
/// message to the owned chains, until the spine drops the sender.
///
/// Non-seed run verdicts go back through the shared `results` channel (the
/// spine reassembles them by `run_ix`); seed runs reply synchronously on
/// their dedicated channel. Credits mutate only NF statistics, but routing
/// them through the owning lane's queue keeps *every* chain mutation in
/// spine order, so even an NF whose credit accounting interacted with its
/// processing state could not observe a sharded/serial difference.
pub(crate) fn lane_worker(
    mut chains: HashMap<ChainId, &mut DeployedChain>,
    queue: mpsc::Receiver<LaneMsg>,
    results: mpsc::Sender<(usize, Vec<Verdict>)>,
    now: SimTime,
    megaflow_drops: bool,
) {
    while let Ok(msg) = queue.recv() {
        match msg {
            LaneMsg::Run {
                run_ix,
                chain,
                direction,
                packets,
                seal,
            } => {
                let deployed = chains.get_mut(&chain).expect("run routed to owning lane");
                let ctx = NfContext::for_client(now, deployed.client);
                // Mirror the serial path: single packets take the scalar
                // entry point, longer runs the batched one.
                let verdicts = if packets.len() == 1 {
                    let packet = packets.into_iter().next().expect("length checked");
                    vec![deployed.chain.process(packet, direction, &ctx)]
                } else {
                    deployed.chain.process_batch(packets, direction, &ctx)
                };
                match seal {
                    Some(reply) => {
                        let report =
                            seal_report(megaflow_drops, &deployed.chain, direction, &verdicts);
                        // The spine blocks on this reply; it cannot have
                        // hung up.
                        let _ = reply.send(SealReply { verdicts, report });
                    }
                    None => {
                        let _ = results.send((run_ix, verdicts));
                    }
                }
            }
            LaneMsg::CreditBypass {
                chain,
                direction,
                tokens,
                packets,
                bytes,
            } => {
                if let Some(deployed) = chains.get_mut(&chain) {
                    deployed
                        .chain
                        .credit_bypass(direction, &tokens, packets, bytes);
                }
            }
            LaneMsg::CreditBypassDrop {
                chain,
                direction,
                tokens,
                packets,
                bytes,
            } => {
                if let Some(deployed) = chains.get_mut(&chain) {
                    deployed
                        .chain
                        .credit_bypass_drop(direction, &tokens, packets, bytes);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_assignment_is_stable_and_spreads() {
        // Stability: the same chain maps to the same lane, every time.
        for raw in 0..64u64 {
            let id = ChainId::new(raw);
            assert_eq!(lane_of_chain(id, 4), lane_of_chain(id, 4));
        }
        // One lane (or fewer) always maps to lane 0.
        assert_eq!(lane_of_chain(ChainId::new(7), 1), 0);
        assert_eq!(lane_of_chain(ChainId::new(7), 0), 0);
        // Sequential ids (how deployments allocate them) spread over lanes.
        let mut hit = [false; 4];
        for raw in 0..32u64 {
            hit[lane_of_chain(ChainId::new(raw), 4)] = true;
        }
        assert!(hit.iter().all(|h| *h), "all four lanes receive chains");
    }
}
