//! Ethernet II framing.
//!
//! Every packet handled by the GNF data plane is an Ethernet frame: clients
//! emit them, the software switch forwards them by destination MAC, and the
//! veth pairs connecting containers carry them unchanged.

use bytes::{BufMut, BytesMut};
use gnf_types::{GnfError, GnfResult, MacAddr};
use serde::{Deserialize, Serialize};

/// Length of an Ethernet II header (dst + src + ethertype), without 802.1Q.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType values understood by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86dd) — recognised but not processed by the NFs.
    Ipv6,
    /// Any other EtherType, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// Numeric value carried on the wire.
    pub fn value(&self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => *v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(value: u16) -> Self {
        match value {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// A parsed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Parses the first [`ETHERNET_HEADER_LEN`] bytes of `data`.
    ///
    /// Returns the header and the number of bytes consumed.
    pub fn parse(data: &[u8]) -> GnfResult<(Self, usize)> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "ethernet",
                format!("frame too short: {} bytes", data.len()),
            ));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: EtherType::from(ethertype),
            },
            ETHERNET_HEADER_LEN,
        ))
    }

    /// Appends the wire representation of the header to `buf`.
    pub fn emit(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.dst.octets());
        buf.put_slice(&self.src.octets());
        buf.put_u16(self.ethertype.value());
    }

    /// Serialised length in bytes.
    pub const fn len(&self) -> usize {
        ETHERNET_HEADER_LEN
    }

    /// Always false; present for API symmetry with collection types.
    pub const fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetHeader {
        EthernetHeader {
            dst: MacAddr::derived(1, 2),
            src: MacAddr::derived(1, 1),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let hdr = sample();
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf);
        assert_eq!(buf.len(), ETHERNET_HEADER_LEN);
        let (parsed, consumed) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(consumed, ETHERNET_HEADER_LEN);
    }

    #[test]
    fn short_frames_are_rejected() {
        assert!(EthernetHeader::parse(&[0u8; 13]).is_err());
        assert!(EthernetHeader::parse(&[]).is_err());
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x86dd), EtherType::Ipv6);
        assert_eq!(EtherType::from(0x88cc), EtherType::Other(0x88cc));
        assert_eq!(EtherType::Ipv4.value(), 0x0800);
        assert_eq!(EtherType::Other(0x1234).value(), 0x1234);
    }

    #[test]
    fn parse_extracts_addresses() {
        let mut buf = BytesMut::new();
        sample().emit(&mut buf);
        let (hdr, _) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(hdr.dst, MacAddr::derived(1, 2));
        assert_eq!(hdr.src, MacAddr::derived(1, 1));
    }
}
