//! Transport-level flow identification.
//!
//! The switch's steering rules, the firewall's connection tracking, the NAT
//! and the rate limiter all key their state on the classic five-tuple.

use crate::ipv4::IpProtocol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The classic five-tuple identifying a transport flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Source port (0 for protocols without ports, e.g. ICMP).
    pub src_port: u16,
    /// Destination port (0 for protocols without ports).
    pub dst_port: u16,
}

impl FiveTuple {
    /// Creates a five-tuple.
    pub fn new(
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        protocol: IpProtocol,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            protocol,
            src_port,
            dst_port,
        }
    }

    /// The tuple of the reverse direction (responses of the same flow).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A direction-agnostic key: both directions of a flow map to the same
    /// canonical tuple (the lexicographically smaller endpoint first).
    pub fn canonical(&self) -> FiveTuple {
        let forward = (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port);
        if forward {
            *self
        } else {
            self.reversed()
        }
    }

    /// True when this tuple and `other` belong to the same bidirectional flow.
    pub fn same_flow(&self, other: &FiveTuple) -> bool {
        self.canonical() == other.canonical()
    }

    /// RSS-style shard hash of the flow: direction-symmetric (both
    /// directions of a flow hash identically, because the hash runs over
    /// the [`canonical`] tuple) and stable across runs and platforms (FNV-1a
    /// over the tuple's fixed-layout bytes plus a 64-bit avalanche
    /// finalizer — no per-process `RandomState`). Shard a flow with
    /// `shard_hash() % shard_count`: the finalizer is what makes the low
    /// bits usable for that modulo — bare FNV-1a degenerates when source
    /// and destination ports vary in step (sequential ephemeral ports
    /// against a small port pool, the classic hot-station pattern).
    ///
    /// [`canonical`]: FiveTuple::canonical
    pub fn shard_hash(&self) -> u64 {
        let c = self.canonical();
        let mut hash = fnv1a(FNV_OFFSET, &c.src_ip.octets());
        hash = fnv1a(hash, &c.dst_ip.octets());
        hash = fnv1a(hash, &[c.protocol.value()]);
        hash = fnv1a(hash, &c.src_port.to_be_bytes());
        mix(fnv1a(hash, &c.dst_port.to_be_bytes()))
    }
}

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a 64-bit running hash.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// 64-bit avalanche finalizer (MurmurHash3's `fmix64`): every input bit
/// affects every output bit, so `% shard_count` on the result distributes
/// well even for byte-wise-correlated inputs.
pub(crate) fn mix(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({:?})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            IpProtocol::Tcp,
            49152,
            80,
        )
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple();
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn canonical_is_direction_agnostic() {
        let t = tuple();
        assert_eq!(t.canonical(), t.reversed().canonical());
        assert!(t.same_flow(&t.reversed()));
        let other = FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(93, 184, 216, 34),
            IpProtocol::Tcp,
            49152,
            80,
        );
        assert!(!t.same_flow(&other));
    }

    #[test]
    fn display_contains_endpoints() {
        let text = tuple().to_string();
        assert!(text.contains("10.0.0.2:49152"));
        assert!(text.contains("93.184.216.34:80"));
    }

    #[test]
    fn shard_hash_is_direction_symmetric() {
        let t = tuple();
        assert_eq!(t.shard_hash(), t.reversed().shard_hash());
        // A different flow (different source port) hashes elsewhere with
        // overwhelming probability.
        let other = FiveTuple::new(t.src_ip, t.dst_ip, t.protocol, 49_153, 80);
        assert_ne!(t.shard_hash(), other.shard_hash());
    }

    #[test]
    fn shard_hash_is_stable_across_runs_and_platforms() {
        // The hash is a pure function of the tuple bytes (FNV-1a over the
        // fixed byte layout, no RandomState): these pinned values must never
        // change, or shard assignment would differ between runs, builds or
        // platforms.
        assert_eq!(tuple().shard_hash(), 0x067e_0872_d524_ee09);
        let pinned = FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            1000,
            2000,
        );
        assert_eq!(pinned.shard_hash(), 0x9b07_6423_f3ae_9dee);
        // Canonicalisation happens before hashing: swapping endpoints is a
        // no-op on the value.
        assert_eq!(pinned.shard_hash(), pinned.reversed().shard_hash());
    }

    #[test]
    fn shard_hash_distribution_is_near_uniform() {
        // Synthetic flow population: 4096 distinct client flows spread over
        // 8 shards must land within ±30% of the uniform share per shard.
        const SHARDS: usize = 8;
        let mut buckets = [0usize; SHARDS];
        let mut flows = 0usize;
        for client in 0..64u8 {
            for port in 0..64u16 {
                let t = FiveTuple::new(
                    Ipv4Addr::new(10, 0, 1, client),
                    Ipv4Addr::new(203, 0, 113, 9),
                    IpProtocol::Tcp,
                    40_000 + port,
                    443,
                );
                buckets[(t.shard_hash() % SHARDS as u64) as usize] += 1;
                flows += 1;
            }
        }
        // The degenerate case the finalizer exists for: source and
        // destination ports varying in step (sequential ephemeral ports
        // against a small destination pool) must still spread — bare
        // FNV-1a puts every one of these on a single shard.
        let mut correlated = [false; 4];
        for n in 0..24u16 {
            let t = FiveTuple::new(
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(203, 0, 113, 9),
                IpProtocol::Tcp,
                40_000 + n,
                100 + n % 12,
            );
            correlated[(t.shard_hash() % 4) as usize] = true;
        }
        assert!(
            correlated.iter().filter(|hit| **hit).count() > 1,
            "correlated ports must not collapse onto one shard"
        );

        let expect = flows / SHARDS;
        for (shard, &count) in buckets.iter().enumerate() {
            assert!(
                count > expect * 7 / 10 && count < expect * 13 / 10,
                "shard {shard} holds {count} of {flows} flows (expected ~{expect})"
            );
        }
    }
}
