//! Transport-level flow identification.
//!
//! The switch's steering rules, the firewall's connection tracking, the NAT
//! and the rate limiter all key their state on the classic five-tuple.

use crate::ipv4::IpProtocol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The classic five-tuple identifying a transport flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Source port (0 for protocols without ports, e.g. ICMP).
    pub src_port: u16,
    /// Destination port (0 for protocols without ports).
    pub dst_port: u16,
}

impl FiveTuple {
    /// Creates a five-tuple.
    pub fn new(
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        protocol: IpProtocol,
        src_port: u16,
        dst_port: u16,
    ) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            protocol,
            src_port,
            dst_port,
        }
    }

    /// The tuple of the reverse direction (responses of the same flow).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            protocol: self.protocol,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// A direction-agnostic key: both directions of a flow map to the same
    /// canonical tuple (the lexicographically smaller endpoint first).
    pub fn canonical(&self) -> FiveTuple {
        let forward = (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port);
        if forward {
            *self
        } else {
            self.reversed()
        }
    }

    /// True when this tuple and `other` belong to the same bidirectional flow.
    pub fn same_flow(&self, other: &FiveTuple) -> bool {
        self.canonical() == other.canonical()
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({:?})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            IpProtocol::Tcp,
            49152,
            80,
        )
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple();
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn canonical_is_direction_agnostic() {
        let t = tuple();
        assert_eq!(t.canonical(), t.reversed().canonical());
        assert!(t.same_flow(&t.reversed()));
        let other = FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(93, 184, 216, 34),
            IpProtocol::Tcp,
            49152,
            80,
        );
        assert!(!t.same_flow(&other));
    }

    #[test]
    fn display_contains_endpoints() {
        let text = tuple().to_string();
        assert!(text.contains("10.0.0.2:49152"));
        assert!(text.contains("93.184.216.34:80"));
    }
}
