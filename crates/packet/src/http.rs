//! Minimal HTTP/1.x request and response handling — the subset the HTTP
//! filter NF and the transparent cache NF need: request line, Host header,
//! arbitrary headers and an opaque body.

use gnf_types::{GnfError, GnfResult};
use serde::{Deserialize, Serialize};

/// The default HTTP port inspected by the HTTP filter.
pub const HTTP_PORT: u16 = 80;

/// HTTP request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HttpMethod {
    /// GET.
    Get,
    /// HEAD.
    Head,
    /// POST.
    Post,
    /// PUT.
    Put,
    /// DELETE.
    Delete,
    /// CONNECT (used by proxied TLS).
    Connect,
    /// OPTIONS.
    Options,
}

impl HttpMethod {
    /// Canonical token.
    pub fn as_str(&self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Head => "HEAD",
            HttpMethod::Post => "POST",
            HttpMethod::Put => "PUT",
            HttpMethod::Delete => "DELETE",
            HttpMethod::Connect => "CONNECT",
            HttpMethod::Options => "OPTIONS",
        }
    }

    /// Parses a method token.
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "GET" => Some(HttpMethod::Get),
            "HEAD" => Some(HttpMethod::Head),
            "POST" => Some(HttpMethod::Post),
            "PUT" => Some(HttpMethod::Put),
            "DELETE" => Some(HttpMethod::Delete),
            "CONNECT" => Some(HttpMethod::Connect),
            "OPTIONS" => Some(HttpMethod::Options),
            _ => None,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Request method.
    pub method: HttpMethod,
    /// Request target (path and query).
    pub path: String,
    /// Protocol version string (e.g. `HTTP/1.1`).
    pub version: String,
    /// Header name/value pairs in order of appearance (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Opaque body bytes.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Builds a GET request for `host` + `path` with standard headers.
    pub fn get(host: &str, path: &str) -> Self {
        HttpRequest {
            method: HttpMethod::Get,
            path: path.to_string(),
            version: "HTTP/1.1".to_string(),
            headers: vec![
                ("host".to_string(), host.to_string()),
                ("user-agent".to_string(), "gnf-client/0.1".to_string()),
                ("accept".to_string(), "*/*".to_string()),
            ],
            body: Vec::new(),
        }
    }

    /// Returns the value of a header (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Returns the Host header, if present.
    pub fn host(&self) -> Option<&str> {
        self.header("host")
    }

    /// Returns `host + path`, the string the HTTP filter's URL rules match on.
    pub fn url(&self) -> String {
        format!("{}{}", self.host().unwrap_or(""), self.path)
    }

    /// Parses a request from the beginning of a TCP payload.
    pub fn parse(data: &[u8]) -> GnfResult<Self> {
        let (head, body) = split_head(data)?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| GnfError::malformed_packet("http", "missing request line"))?;
        let mut parts = request_line.split_whitespace();
        let method_token = parts
            .next()
            .ok_or_else(|| GnfError::malformed_packet("http", "missing method"))?;
        let method = HttpMethod::parse(method_token).ok_or_else(|| {
            GnfError::malformed_packet("http", format!("unknown method {method_token:?}"))
        })?;
        let path = parts
            .next()
            .ok_or_else(|| GnfError::malformed_packet("http", "missing request target"))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| GnfError::malformed_packet("http", "missing version"))?
            .to_string();
        if !version.starts_with("HTTP/") {
            return Err(GnfError::malformed_packet(
                "http",
                format!("bad version {version:?}"),
            ));
        }
        let headers = parse_headers(lines)?;
        Ok(HttpRequest {
            method,
            path,
            version,
            headers,
            body: body.to_vec(),
        })
    }

    /// Serialises the request into wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "{} {} {}\r\n",
            self.method.as_str(),
            self.path,
            self.version
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Protocol version string.
    pub version: String,
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header name/value pairs (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Opaque body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Builds a response with the given status, reason and body.
    pub fn new(status: u16, reason: &str, body: &[u8]) -> Self {
        HttpResponse {
            version: "HTTP/1.1".to_string(),
            status,
            reason: reason.to_string(),
            headers: vec![
                ("content-length".to_string(), body.len().to_string()),
                ("connection".to_string(), "close".to_string()),
            ],
            body: body.to_vec(),
        }
    }

    /// The `403 Forbidden` page the HTTP filter returns for blocked URLs.
    pub fn forbidden() -> Self {
        Self::new(
            403,
            "Forbidden",
            b"<html><body>Blocked by GNF HTTP filter</body></html>",
        )
    }

    /// A plain `200 OK` response.
    pub fn ok(body: &[u8]) -> Self {
        Self::new(200, "OK", body)
    }

    /// Returns the value of a header (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a response from the beginning of a TCP payload.
    pub fn parse(data: &[u8]) -> GnfResult<Self> {
        let (head, body) = split_head(data)?;
        let mut lines = head.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| GnfError::malformed_packet("http", "missing status line"))?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts
            .next()
            .ok_or_else(|| GnfError::malformed_packet("http", "missing version"))?
            .to_string();
        if !version.starts_with("HTTP/") {
            return Err(GnfError::malformed_packet(
                "http",
                format!("bad version {version:?}"),
            ));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| GnfError::malformed_packet("http", "bad status code"))?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        Ok(HttpResponse {
            version,
            status,
            reason,
            headers,
            body: body.to_vec(),
        })
    }

    /// Serialises the response into wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("{} {} {}\r\n", self.version, self.status, self.reason);
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

/// Returns true if a TCP payload looks like the start of an HTTP request.
pub fn looks_like_http_request(data: &[u8]) -> bool {
    const PREFIXES: [&[u8]; 7] = [
        b"GET ",
        b"HEAD ",
        b"POST ",
        b"PUT ",
        b"DELETE ",
        b"CONNECT ",
        b"OPTIONS ",
    ];
    PREFIXES.iter().any(|p| data.starts_with(p))
}

/// Splits the header block from the body at the first blank line.
fn split_head(data: &[u8]) -> GnfResult<(String, &[u8])> {
    let separator = data
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| GnfError::malformed_packet("http", "incomplete header block"))?;
    let head = std::str::from_utf8(&data[..separator])
        .map_err(|_| GnfError::malformed_packet("http", "non-UTF8 header block"))?;
    Ok((head.to_string(), &data[separator + 4..]))
}

/// Parses `Name: value` lines into lower-cased pairs.
fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> GnfResult<Vec<(String, String)>> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            GnfError::malformed_packet("http", format!("bad header line {line:?}"))
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_request_roundtrip() {
        let req = HttpRequest::get("www.gla.ac.uk", "/research/");
        let bytes = req.to_bytes();
        assert!(looks_like_http_request(&bytes));
        let parsed = HttpRequest::parse(&bytes).unwrap();
        assert_eq!(parsed.method, HttpMethod::Get);
        assert_eq!(parsed.path, "/research/");
        assert_eq!(parsed.host(), Some("www.gla.ac.uk"));
        assert_eq!(parsed.url(), "www.gla.ac.uk/research/");
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn request_with_body_preserves_it() {
        let mut req = HttpRequest::get("api.example", "/submit");
        req.method = HttpMethod::Post;
        req.body = b"key=value".to_vec();
        let parsed = HttpRequest::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed.method, HttpMethod::Post);
        assert_eq!(parsed.body, b"key=value");
    }

    #[test]
    fn response_roundtrip() {
        let resp = HttpResponse::ok(b"hello world");
        let parsed = HttpResponse::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.body, b"hello world");
        assert_eq!(parsed.header("content-length"), Some("11"));
    }

    #[test]
    fn forbidden_response_is_a_403() {
        let resp = HttpResponse::forbidden();
        assert_eq!(resp.status, 403);
        let parsed = HttpResponse::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status, 403);
        assert!(String::from_utf8_lossy(&parsed.body).contains("GNF"));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(HttpRequest::parse(b"").is_err());
        assert!(HttpRequest::parse(b"GET /\r\n\r\n").is_err()); // missing version
        assert!(HttpRequest::parse(b"BREW /coffee HTTP/1.1\r\n\r\n").is_err());
        assert!(HttpRequest::parse(b"GET / HTTP/1.1\r\nbad header\r\n\r\n").is_err());
        assert!(HttpRequest::parse(b"GET / HTTP/1.1\r\nHost: x").is_err()); // no blank line
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let req = HttpRequest::parse(b"GET / HTTP/1.1\r\nHoSt: Example.COM\r\n\r\n").unwrap();
        assert_eq!(req.header("Host"), Some("Example.COM"));
        assert_eq!(req.header("HOST"), Some("Example.COM"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn http_request_detection() {
        assert!(looks_like_http_request(b"GET / HTTP/1.1\r\n"));
        assert!(looks_like_http_request(b"POST /x HTTP/1.1\r\n"));
        assert!(!looks_like_http_request(b"\x16\x03\x01")); // TLS client hello
        assert!(!looks_like_http_request(b""));
    }

    #[test]
    fn method_tokens_roundtrip() {
        for method in [
            HttpMethod::Get,
            HttpMethod::Head,
            HttpMethod::Post,
            HttpMethod::Put,
            HttpMethod::Delete,
            HttpMethod::Connect,
            HttpMethod::Options,
        ] {
            assert_eq!(HttpMethod::parse(method.as_str()), Some(method));
        }
        assert_eq!(HttpMethod::parse("PATCH"), None);
    }
}
