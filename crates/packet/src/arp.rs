//! ARP (RFC 826) requests and replies for IPv4 over Ethernet.
//!
//! Clients resolve their gateway with ARP when they associate with a new cell,
//! so the switch and the edge model need to parse and generate these packets.

use bytes::{BufMut, BytesMut};
use gnf_types::{GnfError, GnfResult, MacAddr};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Wire size of an IPv4-over-Ethernet ARP packet.
pub const ARP_PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArpOperation {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
    /// Any other opcode, preserved verbatim.
    Other(u16),
}

impl ArpOperation {
    /// Numeric opcode.
    pub fn value(&self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
            ArpOperation::Other(v) => *v,
        }
    }
}

impl From<u16> for ArpOperation {
    fn from(value: u16) -> Self {
        match value {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            other => ArpOperation::Other(other),
        }
    }
}

/// A parsed ARP packet (IPv4 over Ethernet only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArpPacket {
    /// Request or reply.
    pub operation: ArpOperation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a who-has request asking for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: ArpOperation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the reply answering `request` with the given MAC.
    pub fn reply_to(request: &ArpPacket, responder_mac: MacAddr) -> Self {
        ArpPacket {
            operation: ArpOperation::Reply,
            sender_mac: responder_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Parses an ARP packet, validating the hardware/protocol types.
    pub fn parse(data: &[u8]) -> GnfResult<(Self, usize)> {
        if data.len() < ARP_PACKET_LEN {
            return Err(GnfError::malformed_packet(
                "arp",
                format!("packet too short: {} bytes", data.len()),
            ));
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        let hlen = data[4];
        let plen = data[5];
        if htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4 {
            return Err(GnfError::malformed_packet(
                "arp",
                format!("unsupported hardware/protocol: htype={htype} ptype={ptype:#x}"),
            ));
        }
        let operation = ArpOperation::from(u16::from_be_bytes([data[6], data[7]]));
        let mut sender_mac = [0u8; 6];
        sender_mac.copy_from_slice(&data[8..14]);
        let sender_ip = Ipv4Addr::new(data[14], data[15], data[16], data[17]);
        let mut target_mac = [0u8; 6];
        target_mac.copy_from_slice(&data[18..24]);
        let target_ip = Ipv4Addr::new(data[24], data[25], data[26], data[27]);
        Ok((
            ArpPacket {
                operation,
                sender_mac: MacAddr(sender_mac),
                sender_ip,
                target_mac: MacAddr(target_mac),
                target_ip,
            },
            ARP_PACKET_LEN,
        ))
    }

    /// Appends the wire representation to `buf`.
    pub fn emit(&self, buf: &mut BytesMut) {
        buf.put_u16(1); // hardware type: Ethernet
        buf.put_u16(0x0800); // protocol type: IPv4
        buf.put_u8(6); // hardware length
        buf.put_u8(4); // protocol length
        buf.put_u16(self.operation.value());
        buf.put_slice(&self.sender_mac.octets());
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(&self.target_mac.octets());
        buf.put_slice(&self.target_ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_roundtrip() {
        let client_mac = MacAddr::derived(1, 1);
        let gw_mac = MacAddr::derived(2, 1);
        let req = ArpPacket::request(
            client_mac,
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert_eq!(req.operation, ArpOperation::Request);
        assert_eq!(req.target_mac, MacAddr::ZERO);

        let reply = ArpPacket::reply_to(&req, gw_mac);
        assert_eq!(reply.operation, ArpOperation::Reply);
        assert_eq!(reply.sender_mac, gw_mac);
        assert_eq!(reply.sender_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(reply.target_mac, client_mac);
        assert_eq!(reply.target_ip, Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn emit_parse_roundtrip() {
        let pkt = ArpPacket::request(
            MacAddr::derived(1, 9),
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(192, 168, 1, 1),
        );
        let mut buf = BytesMut::new();
        pkt.emit(&mut buf);
        assert_eq!(buf.len(), ARP_PACKET_LEN);
        let (parsed, consumed) = ArpPacket::parse(&buf).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(consumed, ARP_PACKET_LEN);
    }

    #[test]
    fn short_and_non_ipv4_packets_are_rejected() {
        assert!(ArpPacket::parse(&[0u8; 10]).is_err());
        let pkt = ArpPacket::request(
            MacAddr::derived(1, 9),
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(192, 168, 1, 1),
        );
        let mut buf = BytesMut::new();
        pkt.emit(&mut buf);
        // Corrupt the protocol type to IPv6.
        buf[2] = 0x86;
        buf[3] = 0xdd;
        assert!(ArpPacket::parse(&buf).is_err());
    }

    #[test]
    fn opcode_mapping() {
        assert_eq!(ArpOperation::from(1), ArpOperation::Request);
        assert_eq!(ArpOperation::from(2), ArpOperation::Reply);
        assert_eq!(ArpOperation::from(9), ArpOperation::Other(9));
        assert_eq!(ArpOperation::Other(9).value(), 9);
    }
}
