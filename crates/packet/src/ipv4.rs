//! IPv4 header parsing and construction (RFC 791), including header checksum
//! computation, TTL handling and DSCP — the fields the GNF NFs (firewall,
//! rate limiter, NAT) match on or rewrite.

use crate::checksum::{internet_checksum, Checksum};
use bytes::{BufMut, BytesMut};
use gnf_types::{GnfError, GnfResult};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Minimum IPv4 header length (no options).
pub const IPV4_HEADER_LEN: usize = 20;

/// Transport protocols the framework understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl IpProtocol {
    /// Numeric protocol number.
    pub fn value(&self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => *v,
        }
    }
}

impl From<u8> for IpProtocol {
    fn from(value: u8) -> Self {
        match value {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// A parsed IPv4 header (options are preserved as raw bytes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services code point (6 bits) + ECN (2 bits).
    pub dscp_ecn: u8,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw option bytes (empty for the common 20-byte header).
    pub options: Vec<u8>,
    /// Total length field (header + payload) as carried on the wire.
    pub total_length: u16,
}

impl Ipv4Header {
    /// Creates a minimal header for a payload of `payload_len` bytes.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            identification: 0,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
            total_length: (IPV4_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Header length in bytes, including options (always a multiple of 4).
    pub fn header_len(&self) -> usize {
        IPV4_HEADER_LEN + self.options.len()
    }

    /// Payload length according to the total-length field.
    pub fn payload_len(&self) -> usize {
        (self.total_length as usize).saturating_sub(self.header_len())
    }

    /// Parses an IPv4 header from the beginning of `data`, verifying version,
    /// IHL and the header checksum. Returns the header and bytes consumed.
    pub fn parse(data: &[u8]) -> GnfResult<(Self, usize)> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("header too short: {} bytes", data.len()),
            ));
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("unexpected version {version}"),
            ));
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("invalid IHL {ihl} for {}-byte buffer", data.len()),
            ));
        }
        if internet_checksum(&data[..ihl]) != 0 {
            return Err(GnfError::malformed_packet(
                "ipv4",
                "header checksum mismatch",
            ));
        }
        let total_length = u16::from_be_bytes([data[2], data[3]]);
        if (total_length as usize) < ihl {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("total length {total_length} shorter than header {ihl}"),
            ));
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        Ok((
            Ipv4Header {
                dscp_ecn: data[1],
                identification: u16::from_be_bytes([data[4], data[5]]),
                dont_fragment: flags_frag & 0x4000 != 0,
                more_fragments: flags_frag & 0x2000 != 0,
                fragment_offset: flags_frag & 0x1fff,
                ttl: data[8],
                protocol: IpProtocol::from(data[9]),
                src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
                dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
                options: data[IPV4_HEADER_LEN..ihl].to_vec(),
                total_length,
            },
            ihl,
        ))
    }

    /// Appends the wire representation (with a freshly computed checksum) to
    /// `buf`. `payload_len` overrides the stored total length so the header
    /// always agrees with the payload actually emitted after it.
    pub fn emit(&self, buf: &mut BytesMut, payload_len: usize) {
        let ihl = self.header_len();
        debug_assert_eq!(ihl % 4, 0, "IPv4 options must pad to 32-bit words");
        let total_length = (ihl + payload_len) as u16;

        let start = buf.len();
        buf.put_u8((4 << 4) | ((ihl / 4) as u8));
        buf.put_u8(self.dscp_ecn);
        buf.put_u16(total_length);
        buf.put_u16(self.identification);
        let mut flags_frag = self.fragment_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        buf.put_u16(flags_frag);
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol.value());
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        buf.put_slice(&self.options);

        let checksum = internet_checksum(&buf[start..start + ihl]);
        buf[start + 10..start + 12].copy_from_slice(&checksum.to_be_bytes());
    }

    /// Decrements the TTL, returning `false` when the packet must be dropped
    /// (TTL reached zero).
    pub fn decrement_ttl(&mut self) -> bool {
        if self.ttl <= 1 {
            self.ttl = 0;
            false
        } else {
            self.ttl -= 1;
            true
        }
    }

    /// Starts a transport-checksum accumulator seeded with this header's
    /// pseudo-header fields.
    pub fn pseudo_header_checksum(&self, transport_len: usize) -> Checksum {
        let mut cs = Checksum::new();
        cs.add_u32(u32::from(self.src));
        cs.add_u32(u32::from(self.dst));
        cs.add_u16(u16::from(self.protocol.value()));
        cs.add_u16(transport_len as u16);
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload_len: usize) -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            IpProtocol::Tcp,
            payload_len,
        )
    }

    #[test]
    fn emit_parse_roundtrip() {
        let hdr = sample(40);
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, 40);
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        let (parsed, consumed) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(consumed, IPV4_HEADER_LEN);
        assert_eq!(parsed.src, hdr.src);
        assert_eq!(parsed.dst, hdr.dst);
        assert_eq!(parsed.protocol, IpProtocol::Tcp);
        assert_eq!(parsed.total_length, 60);
        assert_eq!(parsed.payload_len(), 40);
        assert!(parsed.dont_fragment);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let hdr = sample(0);
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, 0);
        buf[8] ^= 0x01; // flip a TTL bit without fixing the checksum
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn short_and_wrong_version_headers_are_rejected() {
        assert!(Ipv4Header::parse(&[0u8; 10]).is_err());
        let hdr = sample(0);
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, 0);
        buf[0] = 0x65; // version 6
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn invalid_ihl_is_rejected() {
        let hdr = sample(0);
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, 0);
        buf[0] = 0x4f; // IHL = 60 bytes, but buffer is only 20
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn ttl_decrement_reports_expiry() {
        let mut hdr = sample(0);
        hdr.ttl = 2;
        assert!(hdr.decrement_ttl());
        assert_eq!(hdr.ttl, 1);
        assert!(!hdr.decrement_ttl());
        assert_eq!(hdr.ttl, 0);
        assert!(!hdr.decrement_ttl());
    }

    #[test]
    fn options_extend_header_length() {
        let mut hdr = sample(8);
        hdr.options = vec![0x01, 0x01, 0x01, 0x01]; // four NOPs
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, 8);
        assert_eq!(buf.len(), 24);
        let (parsed, consumed) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(consumed, 24);
        assert_eq!(parsed.options, hdr.options);
        assert_eq!(parsed.header_len(), 24);
    }

    #[test]
    fn protocol_mapping() {
        assert_eq!(IpProtocol::from(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from(89), IpProtocol::Other(89));
        assert_eq!(IpProtocol::Udp.value(), 17);
    }
}
