//! Packet batches: the unit of data-plane work.
//!
//! Production dataplanes (OVS batching, VPP vectors) amortize per-packet
//! overhead by moving *vectors* of packets through the pipeline: one flow
//! cache probe per run of same-flow packets, one counter update per batch,
//! one virtual-function dispatch per NF per batch. [`PacketBatch`] is that
//! vector for the GNF data plane. It deliberately stays a thin, ordered
//! wrapper over `Vec<Packet>`: batching must be *observably equivalent* to
//! per-packet processing (same verdicts, same NF state, same counters), so
//! the batch carries no processing state of its own — order in the batch is
//! arrival order, and every stage keeps its outputs aligned with its inputs.

use crate::packet::Packet;

/// An ordered batch of packets processed as one unit of data-plane work.
///
/// Invariants relied on by the batched pipeline stages:
///
/// * iteration order is arrival order (stages must preserve it);
/// * a batch holds packets that arrived on the same port of the same station
///   at the same virtual time (the emulator's batch-formation rule), so one
///   timestamp and one ingress port describe every packet in it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PacketBatch {
    packets: Vec<Packet>,
}

impl PacketBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        PacketBatch {
            packets: Vec::new(),
        }
    }

    /// Creates an empty batch with room for `capacity` packets.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketBatch {
            packets: Vec::with_capacity(capacity),
        }
    }

    /// Appends a packet to the end of the batch.
    pub fn push(&mut self, packet: Packet) {
        self.packets.push(packet);
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total frame bytes across the batch.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.len() as u64).sum()
    }

    /// The packets as a slice, in arrival order.
    pub fn as_slice(&self) -> &[Packet] {
        &self.packets
    }

    /// Iterates over the packets in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Consumes the batch, returning the underlying vector.
    pub fn into_vec(self) -> Vec<Packet> {
        self.packets
    }
}

impl From<Vec<Packet>> for PacketBatch {
    fn from(packets: Vec<Packet>) -> Self {
        PacketBatch { packets }
    }
}

impl From<Packet> for PacketBatch {
    fn from(packet: Packet) -> Self {
        PacketBatch {
            packets: vec![packet],
        }
    }
}

impl FromIterator<Packet> for PacketBatch {
    fn from_iter<I: IntoIterator<Item = Packet>>(iter: I) -> Self {
        PacketBatch {
            packets: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for PacketBatch {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl<'a> IntoIterator for &'a PacketBatch {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

impl Extend<Packet> for PacketBatch {
    fn extend<I: IntoIterator<Item = Packet>>(&mut self, iter: I) {
        self.packets.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use gnf_types::MacAddr;
    use std::net::Ipv4Addr;

    fn pkt(port: u16) -> Packet {
        builder::udp_packet(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 3),
            port,
            2000,
            b"abc",
        )
    }

    #[test]
    fn batch_preserves_arrival_order() {
        let mut batch = PacketBatch::with_capacity(3);
        for port in [1000u16, 1001, 1002] {
            batch.push(pkt(port));
        }
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        let ports: Vec<u16> = batch
            .iter()
            .map(|p| p.five_tuple().unwrap().src_port)
            .collect();
        assert_eq!(ports, vec![1000, 1001, 1002]);
        let back: Vec<Packet> = batch.clone().into_vec();
        assert_eq!(back.len(), 3);
        assert_eq!(PacketBatch::from(back), batch);
    }

    #[test]
    fn batch_conversions_and_totals() {
        let single = PacketBatch::from(pkt(1));
        assert_eq!(single.len(), 1);
        assert_eq!(single.total_bytes(), pkt(1).len() as u64);

        let collected: PacketBatch = (0..4u16).map(pkt).collect();
        assert_eq!(collected.len(), 4);
        let mut extended = PacketBatch::new();
        extended.extend(collected.clone());
        assert_eq!(extended, collected);
        assert_eq!(extended.as_slice().len(), 4);
        assert!(PacketBatch::new().is_empty());
        assert_eq!(PacketBatch::default().total_bytes(), 0);
    }
}
