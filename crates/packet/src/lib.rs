//! # gnf-packet
//!
//! Packet construction and parsing for the GNF data plane.
//!
//! The Glasgow Network Functions demo attaches *real* packet-processing NFs
//! (an iptables-style firewall, an HTTP filter and a DNS load balancer) to
//! client traffic. To reproduce their behaviour faithfully this crate
//! implements the protocol layers those NFs actually look at:
//!
//! * [`ethernet`] — Ethernet II framing (the unit forwarded by the software
//!   switch and the veth pairs).
//! * [`arp`] — ARP requests/replies used when clients associate with a cell.
//! * [`ipv4`] — IPv4 headers with checksums, TTL and DSCP.
//! * [`tcp`] / [`udp`] / [`icmp`] — the transport layers the firewall and rate
//!   limiter match on.
//! * [`dns`] — enough of RFC 1035 for the DNS load-balancer NF.
//! * [`http`] — enough of HTTP/1.1 for the HTTP filter and cache NFs.
//! * [`packet`] — the high-level [`Packet`] type combining all of the above.
//! * [`batch`] — [`PacketBatch`], the vectorized unit of data-plane work.
//! * [`builder`] — consistent frame constructors for traffic generators,
//!   tests and benchmarks.
//! * [`flow`] — five-tuple flow identification.
//! * [`mask`] — wildcard field masks and the consulted-field-recording
//!   five-tuple lookup API behind the switch's megaflow cache.
//!
//! Parsing never panics on untrusted input: every malformed frame is reported
//! as a [`gnf_types::GnfError::MalformedPacket`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod batch;
pub mod builder;
pub mod checksum;
pub mod dns;
pub mod ethernet;
pub mod flow;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod mask;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use batch::PacketBatch;
pub use dns::{DnsMessage, DnsQuestion, DnsRecordType, DnsResponseCode};
pub use ethernet::{EtherType, EthernetHeader};
pub use flow::FiveTuple;
pub use http::{HttpMethod, HttpRequest, HttpResponse};
pub use icmp::{IcmpKind, IcmpMessage};
pub use ipv4::{IpProtocol, Ipv4Header};
pub use mask::{FieldMask, MaskedTuple};
pub use packet::{FlowMeta, NetworkLayer, Packet, TransportLayer};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;
