//! ICMP echo messages (RFC 792) — the edge model uses ping round trips to
//! measure per-client latency through an NF chain, and the firewall can match
//! on ICMP.

use crate::checksum::internet_checksum;
use bytes::{BufMut, BytesMut};
use gnf_types::{GnfError, GnfResult};
use serde::{Deserialize, Serialize};

/// ICMP header length for echo messages.
pub const ICMP_HEADER_LEN: usize = 8;

/// ICMP message kinds the framework understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpKind {
    /// Echo request (type 8, code 0).
    EchoRequest,
    /// Echo reply (type 0, code 0).
    EchoReply,
    /// Destination unreachable (type 3), with the code preserved.
    DestinationUnreachable(u8),
    /// Time exceeded (type 11), with the code preserved.
    TimeExceeded(u8),
    /// Anything else as raw (type, code).
    Other(u8, u8),
}

impl IcmpKind {
    /// Returns the wire (type, code) pair.
    pub fn type_code(&self) -> (u8, u8) {
        match self {
            IcmpKind::EchoRequest => (8, 0),
            IcmpKind::EchoReply => (0, 0),
            IcmpKind::DestinationUnreachable(code) => (3, *code),
            IcmpKind::TimeExceeded(code) => (11, *code),
            IcmpKind::Other(t, c) => (*t, *c),
        }
    }

    /// Maps a wire (type, code) pair to a kind.
    pub fn from_type_code(ty: u8, code: u8) -> Self {
        match (ty, code) {
            (8, 0) => IcmpKind::EchoRequest,
            (0, 0) => IcmpKind::EchoReply,
            (3, c) => IcmpKind::DestinationUnreachable(c),
            (11, c) => IcmpKind::TimeExceeded(c),
            (t, c) => IcmpKind::Other(t, c),
        }
    }
}

/// A parsed ICMP message (echo-style: identifier + sequence + payload).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcmpMessage {
    /// Message kind.
    pub kind: IcmpKind,
    /// Echo identifier (or rest-of-header for non-echo messages).
    pub identifier: u16,
    /// Echo sequence number.
    pub sequence: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// Builds an echo request.
    pub fn echo_request(identifier: u16, sequence: u16, payload: Vec<u8>) -> Self {
        IcmpMessage {
            kind: IcmpKind::EchoRequest,
            identifier,
            sequence,
            payload,
        }
    }

    /// Builds the echo reply matching a request.
    pub fn echo_reply_to(request: &IcmpMessage) -> Self {
        IcmpMessage {
            kind: IcmpKind::EchoReply,
            identifier: request.identifier,
            sequence: request.sequence,
            payload: request.payload.clone(),
        }
    }

    /// Parses an ICMP message, verifying its checksum.
    pub fn parse(data: &[u8]) -> GnfResult<(Self, usize)> {
        if data.len() < ICMP_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "icmp",
                format!("message too short: {} bytes", data.len()),
            ));
        }
        if internet_checksum(data) != 0 {
            return Err(GnfError::malformed_packet("icmp", "checksum mismatch"));
        }
        Ok((
            IcmpMessage {
                kind: IcmpKind::from_type_code(data[0], data[1]),
                identifier: u16::from_be_bytes([data[4], data[5]]),
                sequence: u16::from_be_bytes([data[6], data[7]]),
                payload: data[ICMP_HEADER_LEN..].to_vec(),
            },
            data.len(),
        ))
    }

    /// Appends the wire representation (with checksum) to `buf`.
    pub fn emit(&self, buf: &mut BytesMut) {
        let start = buf.len();
        let (ty, code) = self.kind.type_code();
        buf.put_u8(ty);
        buf.put_u8(code);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(self.identifier);
        buf.put_u16(self.sequence);
        buf.put_slice(&self.payload);
        let checksum = internet_checksum(&buf[start..]);
        buf[start + 2..start + 4].copy_from_slice(&checksum.to_be_bytes());
    }

    /// Total serialised length.
    pub fn len(&self) -> usize {
        ICMP_HEADER_LEN + self.payload.len()
    }

    /// True when the payload is empty (header-only message).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let req = IcmpMessage::echo_request(0x1234, 7, vec![1, 2, 3, 4]);
        let mut buf = BytesMut::new();
        req.emit(&mut buf);
        assert_eq!(buf.len(), req.len());
        let (parsed, consumed) = IcmpMessage::parse(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(parsed, req);

        let reply = IcmpMessage::echo_reply_to(&req);
        assert_eq!(reply.kind, IcmpKind::EchoReply);
        assert_eq!(reply.identifier, req.identifier);
        assert_eq!(reply.sequence, req.sequence);
        assert_eq!(reply.payload, req.payload);
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let req = IcmpMessage::echo_request(1, 1, vec![0xaa; 16]);
        let mut buf = BytesMut::new();
        req.emit(&mut buf);
        buf[9] ^= 0xff;
        assert!(IcmpMessage::parse(&buf).is_err());
    }

    #[test]
    fn short_messages_are_rejected() {
        assert!(IcmpMessage::parse(&[0u8; 4]).is_err());
    }

    #[test]
    fn kind_mapping_preserves_codes() {
        assert_eq!(
            IcmpKind::from_type_code(3, 1),
            IcmpKind::DestinationUnreachable(1)
        );
        assert_eq!(IcmpKind::from_type_code(11, 0), IcmpKind::TimeExceeded(0));
        assert_eq!(IcmpKind::from_type_code(5, 2), IcmpKind::Other(5, 2));
        assert_eq!(IcmpKind::DestinationUnreachable(3).type_code(), (3, 3));
    }
}
