//! Minimal DNS message encoding/decoding (RFC 1035) — enough for the DNS
//! load-balancer NF: queries with QNAME/QTYPE, responses with A/CNAME answer
//! records, and name compression on the parse path.

use bytes::{BufMut, BytesMut};
use gnf_types::{GnfError, GnfResult};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// DNS header length.
pub const DNS_HEADER_LEN: usize = 12;

/// The standard DNS UDP port.
pub const DNS_PORT: u16 = 53;

/// Record / query types understood by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnsRecordType {
    /// IPv4 address record.
    A,
    /// Alias record.
    Cname,
    /// IPv6 address record (recognised, not synthesised).
    Aaaa,
    /// Any other type preserved verbatim.
    Other(u16),
}

impl DnsRecordType {
    /// Numeric RR type.
    pub fn value(&self) -> u16 {
        match self {
            DnsRecordType::A => 1,
            DnsRecordType::Cname => 5,
            DnsRecordType::Aaaa => 28,
            DnsRecordType::Other(v) => *v,
        }
    }
}

impl From<u16> for DnsRecordType {
    fn from(value: u16) -> Self {
        match value {
            1 => DnsRecordType::A,
            5 => DnsRecordType::Cname,
            28 => DnsRecordType::Aaaa,
            other => DnsRecordType::Other(other),
        }
    }
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsResponseCode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Anything else.
    Other(u8),
}

impl DnsResponseCode {
    /// Numeric RCODE.
    pub fn value(&self) -> u8 {
        match self {
            DnsResponseCode::NoError => 0,
            DnsResponseCode::FormErr => 1,
            DnsResponseCode::ServFail => 2,
            DnsResponseCode::NxDomain => 3,
            DnsResponseCode::Other(v) => *v,
        }
    }
}

impl From<u8> for DnsResponseCode {
    fn from(value: u8) -> Self {
        match value {
            0 => DnsResponseCode::NoError,
            1 => DnsResponseCode::FormErr,
            2 => DnsResponseCode::ServFail,
            3 => DnsResponseCode::NxDomain,
            other => DnsResponseCode::Other(other),
        }
    }
}

/// A DNS question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsQuestion {
    /// Queried name, lower-cased, without trailing dot (e.g. `www.gla.ac.uk`).
    pub name: String,
    /// Query type.
    pub qtype: DnsRecordType,
}

/// A DNS resource record in the answer section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsAnswer {
    /// Record owner name.
    pub name: String,
    /// Record type.
    pub rtype: DnsRecordType,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Record data.
    pub rdata: DnsRdata,
}

/// Decoded record data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsRdata {
    /// An IPv4 address (A record).
    Ipv4(Ipv4Addr),
    /// A domain name (CNAME record).
    Name(String),
    /// Raw bytes for unrecognised record types.
    Raw(Vec<u8>),
}

/// A DNS message (query or response).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsMessage {
    /// Transaction identifier.
    pub id: u16,
    /// True for responses, false for queries.
    pub is_response: bool,
    /// Recursion-desired flag.
    pub recursion_desired: bool,
    /// Response code (meaningful for responses).
    pub rcode: DnsResponseCode,
    /// Question section.
    pub questions: Vec<DnsQuestion>,
    /// Answer section.
    pub answers: Vec<DnsAnswer>,
}

impl DnsMessage {
    /// Builds an A-record query for `name`.
    pub fn query(id: u16, name: &str) -> Self {
        DnsMessage {
            id,
            is_response: false,
            recursion_desired: true,
            rcode: DnsResponseCode::NoError,
            questions: vec![DnsQuestion {
                name: normalize_name(name),
                qtype: DnsRecordType::A,
            }],
            answers: Vec::new(),
        }
    }

    /// Builds a response to `query` answering its first question with the
    /// given IPv4 addresses.
    pub fn response_to(query: &DnsMessage, addresses: &[Ipv4Addr], ttl: u32) -> Self {
        let name = query
            .questions
            .first()
            .map(|q| q.name.clone())
            .unwrap_or_default();
        DnsMessage {
            id: query.id,
            is_response: true,
            recursion_desired: query.recursion_desired,
            rcode: if addresses.is_empty() {
                DnsResponseCode::NxDomain
            } else {
                DnsResponseCode::NoError
            },
            questions: query.questions.clone(),
            answers: addresses
                .iter()
                .map(|addr| DnsAnswer {
                    name: name.clone(),
                    rtype: DnsRecordType::A,
                    ttl,
                    rdata: DnsRdata::Ipv4(*addr),
                })
                .collect(),
        }
    }

    /// Returns the name of the first question, if any.
    pub fn first_question_name(&self) -> Option<&str> {
        self.questions.first().map(|q| q.name.as_str())
    }

    /// Returns all IPv4 addresses present in A answers.
    pub fn a_records(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|a| match a.rdata {
                DnsRdata::Ipv4(addr) => Some(addr),
                _ => None,
            })
            .collect()
    }

    /// Parses a DNS message from a UDP payload.
    pub fn parse(data: &[u8]) -> GnfResult<Self> {
        if data.len() < DNS_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "dns",
                format!("message too short: {} bytes", data.len()),
            ));
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        let is_response = flags & 0x8000 != 0;
        let recursion_desired = flags & 0x0100 != 0;
        let rcode = DnsResponseCode::from((flags & 0x000f) as u8);
        let qdcount = u16::from_be_bytes([data[4], data[5]]) as usize;
        let ancount = u16::from_be_bytes([data[6], data[7]]) as usize;

        let mut offset = DNS_HEADER_LEN;
        let mut questions = Vec::with_capacity(qdcount.min(32));
        for _ in 0..qdcount {
            let (name, next) = parse_name(data, offset)?;
            if next + 4 > data.len() {
                return Err(GnfError::malformed_packet("dns", "truncated question"));
            }
            let qtype = u16::from_be_bytes([data[next], data[next + 1]]);
            questions.push(DnsQuestion {
                name,
                qtype: DnsRecordType::from(qtype),
            });
            offset = next + 4;
        }

        let mut answers = Vec::with_capacity(ancount.min(32));
        for _ in 0..ancount {
            let (name, next) = parse_name(data, offset)?;
            if next + 10 > data.len() {
                return Err(GnfError::malformed_packet("dns", "truncated answer"));
            }
            let rtype = DnsRecordType::from(u16::from_be_bytes([data[next], data[next + 1]]));
            let ttl = u32::from_be_bytes([
                data[next + 4],
                data[next + 5],
                data[next + 6],
                data[next + 7],
            ]);
            let rdlength = u16::from_be_bytes([data[next + 8], data[next + 9]]) as usize;
            let rdata_start = next + 10;
            if rdata_start + rdlength > data.len() {
                return Err(GnfError::malformed_packet("dns", "truncated rdata"));
            }
            let rdata_bytes = &data[rdata_start..rdata_start + rdlength];
            let rdata = match rtype {
                DnsRecordType::A if rdlength == 4 => DnsRdata::Ipv4(Ipv4Addr::new(
                    rdata_bytes[0],
                    rdata_bytes[1],
                    rdata_bytes[2],
                    rdata_bytes[3],
                )),
                DnsRecordType::Cname => {
                    let (cname, _) = parse_name(data, rdata_start)?;
                    DnsRdata::Name(cname)
                }
                _ => DnsRdata::Raw(rdata_bytes.to_vec()),
            };
            answers.push(DnsAnswer {
                name,
                rtype,
                ttl,
                rdata,
            });
            offset = rdata_start + rdlength;
        }

        Ok(DnsMessage {
            id,
            is_response,
            recursion_desired,
            rcode,
            questions,
            answers,
        })
    }

    /// Appends the wire representation to `buf` (no name compression).
    pub fn emit(&self, buf: &mut BytesMut) {
        buf.put_u16(self.id);
        let mut flags = 0u16;
        if self.is_response {
            flags |= 0x8000;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        if self.is_response {
            flags |= 0x0080; // recursion available
        }
        flags |= u16::from(self.rcode.value());
        buf.put_u16(flags);
        buf.put_u16(self.questions.len() as u16);
        buf.put_u16(self.answers.len() as u16);
        buf.put_u16(0); // NSCOUNT
        buf.put_u16(0); // ARCOUNT
        for q in &self.questions {
            emit_name(buf, &q.name);
            buf.put_u16(q.qtype.value());
            buf.put_u16(1); // class IN
        }
        for a in &self.answers {
            emit_name(buf, &a.name);
            buf.put_u16(a.rtype.value());
            buf.put_u16(1); // class IN
            buf.put_u32(a.ttl);
            match &a.rdata {
                DnsRdata::Ipv4(addr) => {
                    buf.put_u16(4);
                    buf.put_slice(&addr.octets());
                }
                DnsRdata::Name(name) => {
                    let mut tmp = BytesMut::new();
                    emit_name(&mut tmp, name);
                    buf.put_u16(tmp.len() as u16);
                    buf.put_slice(&tmp);
                }
                DnsRdata::Raw(bytes) => {
                    buf.put_u16(bytes.len() as u16);
                    buf.put_slice(bytes);
                }
            }
        }
    }

    /// Serialises the message into a fresh byte vector (UDP payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.emit(&mut buf);
        buf.to_vec()
    }
}

/// Lower-cases a name and strips any trailing dot.
fn normalize_name(name: &str) -> String {
    name.trim_end_matches('.').to_ascii_lowercase()
}

/// Emits a domain name as a sequence of length-prefixed labels.
fn emit_name(buf: &mut BytesMut, name: &str) {
    let name = normalize_name(name);
    if !name.is_empty() {
        for label in name.split('.') {
            let label = label.as_bytes();
            let len = label.len().min(63);
            buf.put_u8(len as u8);
            buf.put_slice(&label[..len]);
        }
    }
    buf.put_u8(0);
}

/// Parses a (possibly compressed) domain name starting at `offset`.
/// Returns the name and the offset just past the name in the original stream.
fn parse_name(data: &[u8], mut offset: usize) -> GnfResult<(String, usize)> {
    let mut labels: Vec<String> = Vec::new();
    let mut jumps = 0usize;
    let mut end_offset: Option<usize> = None;

    loop {
        if offset >= data.len() {
            return Err(GnfError::malformed_packet("dns", "name runs past buffer"));
        }
        let len = data[offset];
        if len == 0 {
            if end_offset.is_none() {
                end_offset = Some(offset + 1);
            }
            break;
        }
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            if offset + 1 >= data.len() {
                return Err(GnfError::malformed_packet("dns", "truncated pointer"));
            }
            let pointer = (usize::from(len & 0x3f) << 8) | usize::from(data[offset + 1]);
            if end_offset.is_none() {
                end_offset = Some(offset + 2);
            }
            jumps += 1;
            if jumps > 16 {
                return Err(GnfError::malformed_packet("dns", "pointer loop"));
            }
            if pointer >= data.len() {
                return Err(GnfError::malformed_packet("dns", "pointer out of range"));
            }
            offset = pointer;
            continue;
        }
        if len & 0xc0 != 0 {
            return Err(GnfError::malformed_packet("dns", "reserved label type"));
        }
        let start = offset + 1;
        let end = start + usize::from(len);
        if end > data.len() {
            return Err(GnfError::malformed_packet("dns", "label runs past buffer"));
        }
        labels.push(String::from_utf8_lossy(&data[start..end]).to_ascii_lowercase());
        offset = end;
        if labels.len() > 128 {
            return Err(GnfError::malformed_packet("dns", "too many labels"));
        }
    }

    Ok((
        labels.join("."),
        end_offset.expect("end offset is set before the loop exits"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let query = DnsMessage::query(0xbeef, "WWW.Gla.ac.UK.");
        let bytes = query.to_bytes();
        let parsed = DnsMessage::parse(&bytes).unwrap();
        assert_eq!(parsed.id, 0xbeef);
        assert!(!parsed.is_response);
        assert!(parsed.recursion_desired);
        assert_eq!(parsed.first_question_name(), Some("www.gla.ac.uk"));
        assert_eq!(parsed.questions[0].qtype, DnsRecordType::A);
        assert!(parsed.answers.is_empty());
    }

    #[test]
    fn response_roundtrip_with_multiple_answers() {
        let query = DnsMessage::query(7, "service.edge.example");
        let addrs = [Ipv4Addr::new(10, 0, 1, 1), Ipv4Addr::new(10, 0, 1, 2)];
        let response = DnsMessage::response_to(&query, &addrs, 300);
        let bytes = response.to_bytes();
        let parsed = DnsMessage::parse(&bytes).unwrap();
        assert!(parsed.is_response);
        assert_eq!(parsed.id, 7);
        assert_eq!(parsed.rcode, DnsResponseCode::NoError);
        assert_eq!(parsed.a_records(), addrs.to_vec());
        assert_eq!(parsed.answers[0].ttl, 300);
        assert_eq!(parsed.answers[0].name, "service.edge.example");
    }

    #[test]
    fn empty_answer_set_yields_nxdomain() {
        let query = DnsMessage::query(9, "missing.example");
        let response = DnsMessage::response_to(&query, &[], 60);
        assert_eq!(response.rcode, DnsResponseCode::NxDomain);
        let parsed = DnsMessage::parse(&response.to_bytes()).unwrap();
        assert_eq!(parsed.rcode, DnsResponseCode::NxDomain);
    }

    #[test]
    fn compressed_names_are_followed() {
        // Hand-built response: header, question "a.b", answer with a pointer
        // back to the question name.
        let mut data = vec![
            0x00, 0x01, 0x81, 0x80, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
        ];
        data.extend_from_slice(&[1, b'a', 1, b'b', 0]); // name at offset 12
        data.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // type A class IN
        data.extend_from_slice(&[0xc0, 0x0c]); // pointer to offset 12
        data.extend_from_slice(&[0x00, 0x01, 0x00, 0x01]); // type A class IN
        data.extend_from_slice(&[0x00, 0x00, 0x00, 0x3c]); // ttl 60
        data.extend_from_slice(&[0x00, 0x04, 192, 0, 2, 1]); // rdlength + addr
        let parsed = DnsMessage::parse(&data).unwrap();
        assert_eq!(parsed.first_question_name(), Some("a.b"));
        assert_eq!(parsed.answers[0].name, "a.b");
        assert_eq!(parsed.a_records(), vec![Ipv4Addr::new(192, 0, 2, 1)]);
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(DnsMessage::parse(&[0u8; 4]).is_err());
        // Question count says 1 but no question bytes follow.
        let data = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        assert!(DnsMessage::parse(&data).is_err());
        // Pointer loop: name points at itself.
        let mut looped = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        looped.extend_from_slice(&[0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01]);
        assert!(DnsMessage::parse(&looped).is_err());
    }

    #[test]
    fn cname_rdata_is_decoded() {
        let answer = DnsAnswer {
            name: "alias.example".into(),
            rtype: DnsRecordType::Cname,
            ttl: 120,
            rdata: DnsRdata::Name("canonical.example".into()),
        };
        let msg = DnsMessage {
            id: 3,
            is_response: true,
            recursion_desired: false,
            rcode: DnsResponseCode::NoError,
            questions: vec![],
            answers: vec![answer.clone()],
        };
        let parsed = DnsMessage::parse(&msg.to_bytes()).unwrap();
        assert_eq!(parsed.answers[0].rdata, answer.rdata);
    }

    #[test]
    fn record_type_mapping() {
        assert_eq!(DnsRecordType::from(1), DnsRecordType::A);
        assert_eq!(DnsRecordType::from(5), DnsRecordType::Cname);
        assert_eq!(DnsRecordType::from(28), DnsRecordType::Aaaa);
        assert_eq!(DnsRecordType::from(15), DnsRecordType::Other(15));
        assert_eq!(DnsRecordType::Other(15).value(), 15);
    }
}
