//! Wildcard field masks over the transport five-tuple.
//!
//! The megaflow (wildcard) flow cache in `gnf-switch` memoizes decisions per
//! *pattern* of header fields instead of per exact flow. For such an entry to
//! be correct, its mask must cover **every five-tuple field whose value
//! influenced the decision** — if a lookup short-circuited before reading a
//! field, that field may stay wildcarded, because any packet agreeing on the
//! fields that *were* read follows the same evaluation path.
//!
//! This module provides the two pieces that make accumulating such masks
//! mechanical rather than error-prone:
//!
//! * [`FieldMask`] — a bit set over the five five-tuple fields, with
//!   [`FieldMask::project`] producing the canonical masked tuple used as a
//!   wildcard cache key;
//! * [`MaskedTuple`] — a read guard over a [`FiveTuple`] whose accessors
//!   record each field as it is consulted. Lookup code (steering selectors,
//!   firewall rules) reads fields only through the guard, so the accumulated
//!   mask is exactly the set of fields the executed path depended on.

use crate::flow::FiveTuple;
use crate::ipv4::IpProtocol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A set of five-tuple fields, used as the wildcard mask of a megaflow
/// cache entry: masked (set) fields are matched exactly, unmasked fields
/// match any value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldMask(u8);

impl FieldMask {
    /// The empty mask: every field wildcarded.
    pub const EMPTY: FieldMask = FieldMask(0);
    /// The source IPv4 address.
    pub const SRC_IP: FieldMask = FieldMask(1 << 0);
    /// The destination IPv4 address.
    pub const DST_IP: FieldMask = FieldMask(1 << 1);
    /// The transport protocol.
    pub const PROTOCOL: FieldMask = FieldMask(1 << 2);
    /// The source port.
    pub const SRC_PORT: FieldMask = FieldMask(1 << 3);
    /// The destination port.
    pub const DST_PORT: FieldMask = FieldMask(1 << 4);
    /// Every field exact — equivalent to an exact-match entry.
    pub const ALL: FieldMask = FieldMask(0b1_1111);

    /// Adds the fields of `other` to this mask.
    pub fn insert(&mut self, other: FieldMask) {
        self.0 |= other.0;
    }

    /// The union of two masks.
    #[must_use]
    pub fn union(self, other: FieldMask) -> FieldMask {
        FieldMask(self.0 | other.0)
    }

    /// True when every field of `other` is also in this mask.
    pub fn contains(&self, other: FieldMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no field is masked (the entry would match any tuple).
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of exact-matched fields.
    pub fn field_count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Projects a tuple onto this mask: masked fields keep their value,
    /// wildcarded fields are squashed to a fixed sentinel. Two tuples that
    /// agree on every masked field project to the same value, so the
    /// projection is usable as a hash key *within one mask's table*.
    pub fn project(&self, tuple: &FiveTuple) -> FiveTuple {
        FiveTuple {
            src_ip: if self.contains(Self::SRC_IP) {
                tuple.src_ip
            } else {
                Ipv4Addr::UNSPECIFIED
            },
            dst_ip: if self.contains(Self::DST_IP) {
                tuple.dst_ip
            } else {
                Ipv4Addr::UNSPECIFIED
            },
            protocol: if self.contains(Self::PROTOCOL) {
                tuple.protocol
            } else {
                IpProtocol::Other(0)
            },
            src_port: if self.contains(Self::SRC_PORT) {
                tuple.src_port
            } else {
                0
            },
            dst_port: if self.contains(Self::DST_PORT) {
                tuple.dst_port
            } else {
                0
            },
        }
    }
}

impl fmt::Display for FieldMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (bit, name) in [
            (Self::SRC_IP, "src_ip"),
            (Self::DST_IP, "dst_ip"),
            (Self::PROTOCOL, "proto"),
            (Self::SRC_PORT, "src_port"),
            (Self::DST_PORT, "dst_port"),
        ] {
            if self.contains(bit) {
                if !first {
                    f.write_str("+")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("any")?;
        }
        Ok(())
    }
}

/// A five-tuple read guard that records every field consulted into a
/// [`FieldMask`].
///
/// Match code that reads the tuple exclusively through this guard gets the
/// wildcard-correctness property for free: exactly the fields whose values
/// the executed path depended on end up in the mask, and fields skipped by
/// short-circuit evaluation stay wildcarded.
pub struct MaskedTuple<'a> {
    tuple: &'a FiveTuple,
    mask: &'a mut FieldMask,
}

impl<'a> MaskedTuple<'a> {
    /// Wraps a tuple, accumulating consulted fields into `mask`.
    pub fn new(tuple: &'a FiveTuple, mask: &'a mut FieldMask) -> Self {
        MaskedTuple { tuple, mask }
    }

    /// Reads the source IPv4 address, recording the consultation.
    pub fn src_ip(&mut self) -> Ipv4Addr {
        self.mask.insert(FieldMask::SRC_IP);
        self.tuple.src_ip
    }

    /// Reads the destination IPv4 address, recording the consultation.
    pub fn dst_ip(&mut self) -> Ipv4Addr {
        self.mask.insert(FieldMask::DST_IP);
        self.tuple.dst_ip
    }

    /// Reads the transport protocol, recording the consultation.
    pub fn protocol(&mut self) -> IpProtocol {
        self.mask.insert(FieldMask::PROTOCOL);
        self.tuple.protocol
    }

    /// Reads the source port, recording the consultation.
    pub fn src_port(&mut self) -> u16 {
        self.mask.insert(FieldMask::SRC_PORT);
        self.tuple.src_port
    }

    /// Reads the destination port, recording the consultation.
    pub fn dst_port(&mut self) -> u16 {
        self.mask.insert(FieldMask::DST_PORT);
        self.tuple.dst_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(203, 0, 113, 9),
            IpProtocol::Tcp,
            40_000,
            443,
        )
    }

    #[test]
    fn masked_reads_accumulate_exactly_the_consulted_fields() {
        let t = tuple();
        let mut mask = FieldMask::EMPTY;
        let mut lens = MaskedTuple::new(&t, &mut mask);
        assert_eq!(lens.protocol(), IpProtocol::Tcp);
        assert_eq!(lens.dst_port(), 443);
        assert!(mask.contains(FieldMask::PROTOCOL));
        assert!(mask.contains(FieldMask::DST_PORT));
        assert!(!mask.contains(FieldMask::SRC_PORT));
        assert!(!mask.contains(FieldMask::SRC_IP));
        assert_eq!(mask.field_count(), 2);
    }

    #[test]
    fn projection_squashes_wildcarded_fields() {
        let t = tuple();
        let mask = FieldMask::PROTOCOL.union(FieldMask::DST_PORT);
        let projected = mask.project(&t);
        assert_eq!(projected.protocol, IpProtocol::Tcp);
        assert_eq!(projected.dst_port, 443);
        assert_eq!(projected.src_ip, Ipv4Addr::UNSPECIFIED);
        assert_eq!(projected.dst_ip, Ipv4Addr::UNSPECIFIED);
        assert_eq!(projected.src_port, 0);

        // Two tuples that agree on the masked fields project identically...
        let other = FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 99),
            Ipv4Addr::new(8, 8, 8, 8),
            IpProtocol::Tcp,
            51_000,
            443,
        );
        assert_eq!(mask.project(&other), projected);
        // ...and ones that differ on a masked field do not.
        let different = FiveTuple::new(t.src_ip, t.dst_ip, IpProtocol::Tcp, t.src_port, 80);
        assert_ne!(mask.project(&different), projected);
    }

    #[test]
    fn full_projection_is_the_identity() {
        let t = tuple();
        assert_eq!(FieldMask::ALL.project(&t), t);
        assert_eq!(FieldMask::ALL.field_count(), 5);
        assert!(FieldMask::EMPTY.is_empty());
        assert!(!FieldMask::ALL.is_empty());
    }

    #[test]
    fn union_and_contains() {
        let mut mask = FieldMask::EMPTY;
        mask.insert(FieldMask::SRC_IP);
        let combined = mask.union(FieldMask::DST_PORT);
        assert!(combined.contains(FieldMask::SRC_IP));
        assert!(combined.contains(FieldMask::DST_PORT));
        assert!(!combined.contains(FieldMask::PROTOCOL));
        assert!(FieldMask::ALL.contains(combined));
    }

    #[test]
    fn display_names_the_masked_fields() {
        assert_eq!(FieldMask::EMPTY.to_string(), "any");
        let mask = FieldMask::PROTOCOL.union(FieldMask::DST_PORT);
        assert_eq!(mask.to_string(), "proto+dst_port");
        assert_eq!(
            FieldMask::ALL.to_string(),
            "src_ip+dst_ip+proto+src_port+dst_port"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let mask = FieldMask::SRC_IP.union(FieldMask::PROTOCOL);
        let value = mask.to_value();
        let back = FieldMask::from_value(&value).unwrap();
        assert_eq!(back, mask);
    }
}
