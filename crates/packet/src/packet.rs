//! The high-level [`Packet`] type passed between clients, the software switch
//! and the network functions.
//!
//! A `Packet` owns the raw frame bytes plus a parsed view of the layers the
//! framework understands (Ethernet, ARP or IPv4, TCP/UDP/ICMP). Parsing is
//! split into two stages so the per-flow fast path stays cheap:
//!
//! * **Fast header scan** — performed once in [`Packet::parse`]. It fully
//!   *validates* the frame (same accept/reject decisions as the historical
//!   eager parser: Ethernet length, IPv4 version/IHL/checksum/total-length,
//!   TCP data offset, UDP length, ICMP checksum) and extracts the
//!   [`FiveTuple`] plus the transport payload offsets into a small `Copy`
//!   [`FlowMeta`] — no heap allocation beyond the frame itself.
//! * **Full layer parse** — building the [`NetworkLayer`] tree (header
//!   structs, option bytes, ICMP payload vectors) is deferred behind a
//!   `OnceLock` and only happens when an NF actually asks for a typed header
//!   via [`Packet::network`]/[`Packet::ipv4`]/[`Packet::tcp`]/etc. Packets
//!   that ride the switch's flow-cache fast path, and NFs that only need the
//!   five-tuple or raw payload bytes (firewall conntrack, rate limiter, IDS
//!   signature scan, DNS/HTTP payload parsing), never pay for it.
//!
//! ARP frames and unknown EtherTypes are resolved eagerly (they are rare
//! control traffic and their "parse" is trivial), so the lazy stage can never
//! fail: every frame that leaves `Packet::parse` successfully has already
//! been validated to the same depth the eager parser enforced.

use crate::arp::ArpPacket;
use crate::dns::{DnsMessage, DNS_PORT};
use crate::ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
use crate::flow::FiveTuple;
use crate::http::{looks_like_http_request, HttpRequest, HTTP_PORT};
use crate::icmp::{IcmpMessage, ICMP_HEADER_LEN};
use crate::ipv4::{IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
use crate::tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use bytes::Bytes;
use gnf_types::{GnfError, GnfResult, MacAddr};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// The parsed network layer of a frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkLayer {
    /// An ARP packet.
    Arp(ArpPacket),
    /// An IPv4 packet with its transport layer.
    Ipv4 {
        /// The IPv4 header.
        header: Ipv4Header,
        /// The transport layer carried inside.
        transport: TransportLayer,
    },
    /// Any other EtherType; payload left opaque.
    Other,
}

/// The parsed transport layer of an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportLayer {
    /// TCP segment: header plus the offset of its payload within the frame.
    Tcp {
        /// Parsed TCP header.
        header: TcpHeader,
        /// Offset of the TCP payload from the start of the frame.
        payload_offset: usize,
    },
    /// UDP datagram: header plus the offset of its payload within the frame.
    Udp {
        /// Parsed UDP header.
        header: UdpHeader,
        /// Offset of the UDP payload from the start of the frame.
        payload_offset: usize,
    },
    /// ICMP message (fully parsed, including payload).
    Icmp(IcmpMessage),
    /// Unknown IP protocol; payload left opaque.
    Other,
}

/// Flow metadata extracted by the fast header scan: everything the switch's
/// flow cache and the payload-oriented NFs need, with no heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowMeta {
    /// The transport five-tuple (ports are 0 for ICMP).
    pub tuple: FiveTuple,
    /// Offset of the transport header from the start of the frame.
    l4_offset: usize,
    /// Offset of the transport payload from the start of the frame.
    payload_offset: usize,
    /// End of the transport payload (frame offset, padding excluded).
    payload_end: usize,
}

/// What the fast header scan concluded about the layers behind Ethernet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeaderScan {
    /// ARP / unknown EtherType / IPv4 with an unknown transport: validated,
    /// but carries no transport flow.
    NonFlow,
    /// IPv4 carrying TCP, UDP or ICMP.
    Flow(FlowMeta),
}

/// A validated Ethernet frame flowing through the GNF data plane.
///
/// The lazily built layer view is boxed: packets move by value between the
/// switch, the chain and every NF (and through `Verdict`s), so keeping the
/// struct small — frame handle, Ethernet header, fast-scan metadata and one
/// pointer — makes each hop a sub-cacheline copy instead of dragging the
/// full parsed header tree along.
pub struct Packet {
    bytes: Bytes,
    ethernet: EthernetHeader,
    scan: HeaderScan,
    network: OnceLock<Box<NetworkLayer>>,
}

impl Packet {
    /// Parses a raw Ethernet frame.
    ///
    /// Runs the fast header scan: the frame is fully validated (malformed
    /// frames are rejected here, never later), but typed layer structs are
    /// only built on first access.
    pub fn parse(bytes: Bytes) -> GnfResult<Self> {
        let (ethernet, eth_len) = EthernetHeader::parse(&bytes)?;
        let network = OnceLock::new();
        let scan = match ethernet.ethertype {
            EtherType::Arp => {
                // ARP is rare control traffic: parse eagerly so the lazy
                // stage is infallible.
                let (arp, _) = ArpPacket::parse(&bytes[eth_len..])?;
                let _ = network.set(Box::new(NetworkLayer::Arp(arp)));
                HeaderScan::NonFlow
            }
            EtherType::Ipv4 => Self::scan_ipv4(&bytes, eth_len)?,
            _ => {
                let _ = network.set(Box::new(NetworkLayer::Other));
                HeaderScan::NonFlow
            }
        };
        Ok(Packet {
            bytes,
            ethernet,
            scan,
            network,
        })
    }

    /// Validates the IPv4 and transport headers and extracts the flow
    /// metadata, enforcing exactly the checks the typed parsers enforce.
    fn scan_ipv4(bytes: &[u8], eth_len: usize) -> GnfResult<HeaderScan> {
        let data = &bytes[eth_len..];
        if data.len() < IPV4_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("header too short: {} bytes", data.len()),
            ));
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("unexpected version {version}"),
            ));
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("invalid IHL {ihl} for {}-byte buffer", data.len()),
            ));
        }
        if crate::checksum::internet_checksum(&data[..ihl]) != 0 {
            return Err(GnfError::malformed_packet(
                "ipv4",
                "header checksum mismatch",
            ));
        }
        let total_length = u16::from_be_bytes([data[2], data[3]]);
        if (total_length as usize) < ihl {
            return Err(GnfError::malformed_packet(
                "ipv4",
                format!("total length {total_length} shorter than header {ihl}"),
            ));
        }
        let src = std::net::Ipv4Addr::new(data[12], data[13], data[14], data[15]);
        let dst = std::net::Ipv4Addr::new(data[16], data[17], data[18], data[19]);
        let protocol = IpProtocol::from(data[9]);

        let l4_offset = eth_len + ihl;
        // Respect the IPv4 total length: anything beyond it is padding.
        let ip_end = (eth_len + total_length as usize).min(bytes.len());
        let l4 = &bytes[l4_offset..ip_end];
        let meta = match protocol {
            IpProtocol::Tcp => {
                if l4.len() < TCP_HEADER_LEN {
                    return Err(GnfError::malformed_packet(
                        "tcp",
                        format!("header too short: {} bytes", l4.len()),
                    ));
                }
                let data_offset = ((l4[12] >> 4) as usize) * 4;
                if data_offset < TCP_HEADER_LEN || l4.len() < data_offset {
                    return Err(GnfError::malformed_packet(
                        "tcp",
                        format!("invalid data offset {data_offset}"),
                    ));
                }
                FlowMeta {
                    tuple: FiveTuple::new(
                        src,
                        dst,
                        protocol,
                        u16::from_be_bytes([l4[0], l4[1]]),
                        u16::from_be_bytes([l4[2], l4[3]]),
                    ),
                    l4_offset,
                    payload_offset: l4_offset + data_offset,
                    payload_end: ip_end,
                }
            }
            IpProtocol::Udp => {
                if l4.len() < UDP_HEADER_LEN {
                    return Err(GnfError::malformed_packet(
                        "udp",
                        format!("header too short: {} bytes", l4.len()),
                    ));
                }
                let length = u16::from_be_bytes([l4[4], l4[5]]) as usize;
                if length < UDP_HEADER_LEN {
                    return Err(GnfError::malformed_packet(
                        "udp",
                        format!("length field {length} below header size"),
                    ));
                }
                let payload_offset = l4_offset + UDP_HEADER_LEN;
                FlowMeta {
                    tuple: FiveTuple::new(
                        src,
                        dst,
                        protocol,
                        u16::from_be_bytes([l4[0], l4[1]]),
                        u16::from_be_bytes([l4[2], l4[3]]),
                    ),
                    l4_offset,
                    payload_offset,
                    // The historical parser bounded the UDP payload by the
                    // length field and the frame end (not the IP end).
                    payload_end: (payload_offset + (length - UDP_HEADER_LEN)).min(bytes.len()),
                }
            }
            IpProtocol::Icmp => {
                if l4.len() < ICMP_HEADER_LEN {
                    return Err(GnfError::malformed_packet(
                        "icmp",
                        format!("message too short: {} bytes", l4.len()),
                    ));
                }
                if crate::checksum::internet_checksum(l4) != 0 {
                    return Err(GnfError::malformed_packet("icmp", "checksum mismatch"));
                }
                FlowMeta {
                    tuple: FiveTuple::new(src, dst, protocol, 0, 0),
                    l4_offset,
                    payload_offset: l4_offset + ICMP_HEADER_LEN,
                    payload_end: ip_end,
                }
            }
            IpProtocol::Other(_) => return Ok(HeaderScan::NonFlow),
        };
        Ok(HeaderScan::Flow(meta))
    }

    /// Builds the full typed layer view. Only reachable for IPv4 frames (ARP
    /// and unknown EtherTypes are resolved eagerly in [`Packet::parse`]), and
    /// infallible because the fast scan already validated every check the
    /// typed parsers perform.
    fn build_network(&self) -> NetworkLayer {
        debug_assert_eq!(self.ethernet.ethertype, EtherType::Ipv4);
        let eth_len = ETHERNET_HEADER_LEN;
        // The `Err` arms below are unreachable while `scan_ipv4` enforces
        // every check the typed parsers enforce; the debug assertions turn
        // any future drift between the two into a test failure instead of a
        // silent downgrade to `Other` (which would make `five_tuple()`
        // return `Some` while `tcp()`/`udp()`/`ipv4()` return `None`).
        let parsed = Ipv4Header::parse(&self.bytes[eth_len..]);
        debug_assert!(
            parsed.is_ok(),
            "fast scan accepted an IPv4 header the typed parser rejects"
        );
        let Ok((ip, ip_len)) = parsed else {
            return NetworkLayer::Other;
        };
        let l4_offset = eth_len + ip_len;
        let ip_end = (eth_len + ip.total_length as usize).min(self.bytes.len());
        let l4 = &self.bytes[l4_offset..ip_end];
        let transport = match ip.protocol {
            IpProtocol::Tcp => match TcpHeader::parse(l4) {
                Ok((header, consumed)) => TransportLayer::Tcp {
                    header,
                    payload_offset: l4_offset + consumed,
                },
                Err(e) => {
                    debug_assert!(
                        false,
                        "fast scan accepted a TCP header the typed parser rejects: {e}"
                    );
                    TransportLayer::Other
                }
            },
            IpProtocol::Udp => match UdpHeader::parse(l4) {
                Ok((header, consumed)) => TransportLayer::Udp {
                    header,
                    payload_offset: l4_offset + consumed,
                },
                Err(e) => {
                    debug_assert!(
                        false,
                        "fast scan accepted a UDP header the typed parser rejects: {e}"
                    );
                    TransportLayer::Other
                }
            },
            IpProtocol::Icmp => match IcmpMessage::parse(l4) {
                Ok((msg, _)) => TransportLayer::Icmp(msg),
                Err(e) => {
                    debug_assert!(
                        false,
                        "fast scan accepted an ICMP message the typed parser rejects: {e}"
                    );
                    TransportLayer::Other
                }
            },
            IpProtocol::Other(_) => TransportLayer::Other,
        };
        NetworkLayer::Ipv4 {
            header: ip,
            transport,
        }
    }

    /// Parses a frame from a byte vector.
    pub fn from_vec(bytes: Vec<u8>) -> GnfResult<Self> {
        Self::parse(Bytes::from(bytes))
    }

    /// The raw frame bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the frame is empty (never the case for parsed packets).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The Ethernet header.
    pub fn ethernet(&self) -> &EthernetHeader {
        &self.ethernet
    }

    /// Source MAC address.
    pub fn src_mac(&self) -> MacAddr {
        self.ethernet.src
    }

    /// Destination MAC address.
    pub fn dst_mac(&self) -> MacAddr {
        self.ethernet.dst
    }

    /// The flow metadata from the fast header scan, when the frame carries a
    /// TCP/UDP/ICMP flow. Never triggers the full layer parse.
    pub fn flow_meta(&self) -> Option<&FlowMeta> {
        match &self.scan {
            HeaderScan::Flow(meta) => Some(meta),
            HeaderScan::NonFlow => None,
        }
    }

    /// The fully parsed network layer (built lazily on first access).
    pub fn network(&self) -> &NetworkLayer {
        self.network.get_or_init(|| Box::new(self.build_network()))
    }

    /// The ARP packet, if this frame carries one.
    pub fn arp(&self) -> Option<&ArpPacket> {
        match self.network() {
            NetworkLayer::Arp(arp) => Some(arp),
            _ => None,
        }
    }

    /// The IPv4 header, if this is an IPv4 frame.
    pub fn ipv4(&self) -> Option<&Ipv4Header> {
        match self.network() {
            NetworkLayer::Ipv4 { header, .. } => Some(header),
            _ => None,
        }
    }

    /// The TCP header, if this is a TCP frame.
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match self.network() {
            NetworkLayer::Ipv4 {
                transport: TransportLayer::Tcp { header, .. },
                ..
            } => Some(header),
            _ => None,
        }
    }

    /// The UDP header, if this is a UDP frame.
    pub fn udp(&self) -> Option<&UdpHeader> {
        match self.network() {
            NetworkLayer::Ipv4 {
                transport: TransportLayer::Udp { header, .. },
                ..
            } => Some(header),
            _ => None,
        }
    }

    /// The ICMP message, if this is an ICMP frame.
    pub fn icmp(&self) -> Option<&IcmpMessage> {
        match self.network() {
            NetworkLayer::Ipv4 {
                transport: TransportLayer::Icmp(msg),
                ..
            } => Some(msg),
            _ => None,
        }
    }

    /// The TCP flags, if this is a TCP frame. Served from the fast header
    /// scan (the flags byte is read straight out of the frame) — never
    /// triggers the full layer parse. Used by NFs that inspect handshake
    /// state (IDS SYN-flood detection) on the batch fast path.
    pub fn tcp_flags(&self) -> Option<TcpFlags> {
        match &self.scan {
            HeaderScan::Flow(meta) if meta.tuple.protocol == IpProtocol::Tcp => {
                Some(TcpFlags::from_byte(self.bytes[meta.l4_offset + 13]))
            }
            _ => None,
        }
    }

    /// The TCP payload bytes, if any. Served from the fast header scan —
    /// never triggers the full layer parse.
    pub fn tcp_payload(&self) -> Option<&[u8]> {
        match &self.scan {
            HeaderScan::Flow(meta) if meta.tuple.protocol == IpProtocol::Tcp => {
                Some(&self.bytes[meta.payload_offset..meta.payload_end.max(meta.payload_offset)])
            }
            _ => None,
        }
    }

    /// The UDP payload bytes, if any. Served from the fast header scan —
    /// never triggers the full layer parse.
    pub fn udp_payload(&self) -> Option<&[u8]> {
        match &self.scan {
            HeaderScan::Flow(meta) if meta.tuple.protocol == IpProtocol::Udp => {
                Some(&self.bytes[meta.payload_offset..meta.payload_end.max(meta.payload_offset)])
            }
            _ => None,
        }
    }

    /// The five-tuple of this packet, if it is TCP, UDP or ICMP over IPv4.
    /// Served from the fast header scan — never triggers the full layer
    /// parse; this is the lookup key of the switch's flow cache.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        self.flow_meta().map(|meta| meta.tuple)
    }

    /// RSS-style shard hash of the frame: [`FiveTuple::shard_hash`] for
    /// transport flows, and a symmetric MAC-pair hash for non-IP frames
    /// (ARP, unknown EtherTypes) — both directions of an exchange land on
    /// the same shard either way, and the value is stable across runs and
    /// platforms (FNV-1a, no `RandomState`).
    pub fn shard_hash(&self) -> u64 {
        if let Some(tuple) = self.five_tuple() {
            return tuple.shard_hash();
        }
        // Order the MAC pair so request and reply hash identically.
        let (a, b) = {
            let src = self.src_mac();
            let dst = self.dst_mac();
            if src.octets() <= dst.octets() {
                (src, dst)
            } else {
                (dst, src)
            }
        };
        let hash = crate::flow::fnv1a(crate::flow::FNV_OFFSET, &a.octets());
        crate::flow::mix(crate::flow::fnv1a(hash, &b.octets()))
    }

    /// Attempts to parse the payload as a DNS message (UDP port 53 on either
    /// side). Works on the fast-scan offsets, so a DNS miss costs nothing.
    pub fn dns(&self) -> Option<DnsMessage> {
        let tuple = self.flow_meta()?.tuple;
        if tuple.protocol != IpProtocol::Udp
            || (tuple.src_port != DNS_PORT && tuple.dst_port != DNS_PORT)
        {
            return None;
        }
        DnsMessage::parse(self.udp_payload()?).ok()
    }

    /// Attempts to parse the payload as an HTTP request (TCP port 80 on the
    /// destination side, payload starting with a known method token). Works
    /// on the fast-scan offsets, so a non-HTTP packet costs one comparison.
    pub fn http_request(&self) -> Option<HttpRequest> {
        let tuple = self.flow_meta()?.tuple;
        if tuple.protocol != IpProtocol::Tcp || tuple.dst_port != HTTP_PORT {
            return None;
        }
        let payload = self.tcp_payload()?;
        if !looks_like_http_request(payload) {
            return None;
        }
        HttpRequest::parse(payload).ok()
    }

    /// True when this packet is an IPv4 packet addressed *from* the given MAC
    /// (used by the switch's per-client steering).
    pub fn is_from_mac(&self, mac: MacAddr) -> bool {
        self.ethernet.src == mac
    }

    /// A one-line human-readable summary used in logs and the UI event feed.
    pub fn summary(&self) -> String {
        match self.network() {
            NetworkLayer::Arp(arp) => format!(
                "ARP {:?} {} -> {}",
                arp.operation, arp.sender_ip, arp.target_ip
            ),
            NetworkLayer::Ipv4 { header, transport } => match transport {
                TransportLayer::Tcp { header: tcp, .. } => format!(
                    "TCP {}:{} -> {}:{} [{}] {}B",
                    header.src,
                    tcp.src_port,
                    header.dst,
                    tcp.dst_port,
                    tcp.flags,
                    self.len()
                ),
                TransportLayer::Udp { header: udp, .. } => format!(
                    "UDP {}:{} -> {}:{} {}B",
                    header.src,
                    udp.src_port,
                    header.dst,
                    udp.dst_port,
                    self.len()
                ),
                TransportLayer::Icmp(icmp) => {
                    format!("ICMP {:?} {} -> {}", icmp.kind, header.src, header.dst)
                }
                TransportLayer::Other => format!(
                    "IPv4 proto {} {} -> {}",
                    header.protocol.value(),
                    header.src,
                    header.dst
                ),
            },
            NetworkLayer::Other => format!(
                "L2 {} -> {} ethertype {:#06x}",
                self.ethernet.src,
                self.ethernet.dst,
                self.ethernet.ethertype.value()
            ),
        }
    }
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        Packet {
            bytes: self.bytes.clone(),
            ethernet: self.ethernet,
            scan: self.scan,
            // The memoized layer view transfers to the clone when already
            // built; otherwise the clone re-parses lazily on demand.
            network: self.network.clone(),
        }
    }
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        // Parsing is a pure function of the frame bytes, so byte equality is
        // packet equality — whether or not either side has materialized its
        // lazy layer view.
        self.bytes == other.bytes
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Packet")
            .field("ethernet", &self.ethernet)
            .field("scan", &self.scan)
            .field("network", &self.network.get())
            .field("len", &self.bytes.len())
            .finish()
    }
}

impl Serialize for Packet {
    fn to_value(&self) -> serde::Value {
        // The frame bytes are the canonical representation; the parsed view
        // is derived state.
        self.bytes.to_value()
    }
}

impl Deserialize for Packet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let bytes = Bytes::from_value(value)?;
        Packet::parse(bytes).map_err(|e| serde::Error::custom(format!("invalid packet: {e}")))
    }
}

impl TryFrom<Vec<u8>> for Packet {
    type Error = GnfError;
    fn try_from(bytes: Vec<u8>) -> Result<Self, Self::Error> {
        Packet::from_vec(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use std::net::Ipv4Addr;

    fn client_mac() -> MacAddr {
        MacAddr::derived(1, 1)
    }
    fn gw_mac() -> MacAddr {
        MacAddr::derived(2, 1)
    }

    #[test]
    fn tcp_packet_accessors() {
        let pkt = builder::tcp_data(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40000,
            80,
            b"hello",
        );
        assert_eq!(pkt.src_mac(), client_mac());
        assert_eq!(pkt.dst_mac(), gw_mac());
        assert!(pkt.ipv4().is_some());
        assert!(pkt.tcp().is_some());
        assert!(pkt.udp().is_none());
        assert_eq!(pkt.tcp_payload().unwrap(), b"hello");
        let ft = pkt.five_tuple().unwrap();
        assert_eq!(ft.dst_port, 80);
        assert_eq!(ft.protocol, IpProtocol::Tcp);
        assert!(pkt.summary().contains("TCP"));
    }

    #[test]
    fn shard_hash_uses_the_tuple_for_flows_and_macs_otherwise() {
        let pkt = builder::tcp_data(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40000,
            80,
            b"hello",
        );
        assert_eq!(pkt.shard_hash(), pkt.five_tuple().unwrap().shard_hash());
        // The reply direction of the same flow lands on the same shard.
        let reply = builder::tcp_data(
            gw_mac(),
            client_mac(),
            Ipv4Addr::new(93, 184, 216, 34),
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            40000,
            b"world",
        );
        assert_eq!(pkt.shard_hash(), reply.shard_hash());

        // Non-IP frames fall back to a symmetric MAC-pair hash.
        let arp = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert!(arp.five_tuple().is_none());
        let arp_again = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert_eq!(arp.shard_hash(), arp_again.shard_hash());
    }

    #[test]
    fn flow_accessors_do_not_materialize_the_layer_view() {
        let pkt = builder::tcp_data(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40000,
            80,
            b"payload-bytes",
        );
        // Five-tuple, payload and HTTP/DNS probing ride the fast scan.
        assert!(pkt.five_tuple().is_some());
        assert_eq!(pkt.tcp_payload().unwrap(), b"payload-bytes");
        assert!(pkt.http_request().is_none());
        assert!(pkt.dns().is_none());
        assert!(
            pkt.network.get().is_none(),
            "fast-path accessors must not build the full layer view"
        );
        // A typed-header accessor materializes it.
        assert!(pkt.tcp().is_some());
        assert!(pkt.network.get().is_some());
    }

    #[test]
    fn lazy_and_eager_views_agree() {
        for pkt in [
            builder::tcp_data(
                client_mac(),
                gw_mac(),
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(93, 184, 216, 34),
                40000,
                443,
                b"data",
            ),
            builder::udp_packet(
                client_mac(),
                gw_mac(),
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(8, 8, 8, 8),
                5353,
                53,
                b"q",
            ),
            builder::icmp_echo_request(
                client_mac(),
                gw_mac(),
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(1, 1, 1, 1),
                7,
                1,
            ),
        ] {
            let meta_tuple = pkt.five_tuple().unwrap();
            // Force the full parse and recompute the tuple from the typed view.
            let NetworkLayer::Ipv4 { header, transport } = pkt.network() else {
                panic!("expected IPv4");
            };
            let (src_port, dst_port) = match transport {
                TransportLayer::Tcp { header, .. } => (header.src_port, header.dst_port),
                TransportLayer::Udp { header, .. } => (header.src_port, header.dst_port),
                TransportLayer::Icmp(_) => (0, 0),
                TransportLayer::Other => panic!("expected a transport"),
            };
            assert_eq!(
                meta_tuple,
                FiveTuple::new(header.src, header.dst, header.protocol, src_port, dst_port)
            );
        }
    }

    #[test]
    fn tcp_flags_served_from_the_fast_scan() {
        let pkt = builder::tcp_syn(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40000,
            443,
        );
        let flags = pkt.tcp_flags().expect("TCP frame has flags");
        assert!(flags.syn && !flags.ack);
        assert!(
            pkt.network.get().is_none(),
            "tcp_flags must not build the full layer view"
        );
        // The fast accessor agrees with the typed header.
        assert_eq!(flags, pkt.tcp().unwrap().flags);
        // Non-TCP frames have no flags.
        let udp = builder::udp_packet(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            4000,
            53,
            b"x",
        );
        assert!(udp.tcp_flags().is_none());
    }

    #[test]
    fn dns_packet_is_detected() {
        let pkt = builder::dns_query(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            4444,
            0x1234,
            "example.com",
        );
        let dns = pkt.dns().expect("should parse DNS");
        assert_eq!(dns.first_question_name(), Some("example.com"));
        assert!(!dns.is_response);
        assert!(pkt.http_request().is_none());
    }

    #[test]
    fn http_request_is_detected() {
        let pkt = builder::http_get(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40001,
            "blocked.example",
            "/index.html",
        );
        let req = pkt.http_request().expect("should parse HTTP");
        assert_eq!(req.host(), Some("blocked.example"));
        assert_eq!(req.path, "/index.html");
        // A non-port-80 TCP packet is not treated as HTTP.
        let other = builder::tcp_data(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40001,
            8080,
            b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(other.http_request().is_none());
    }

    #[test]
    fn arp_packet_accessors() {
        let pkt = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert!(pkt.arp().is_some());
        assert!(pkt.ipv4().is_none());
        assert!(pkt.five_tuple().is_none());
        assert_eq!(pkt.dst_mac(), MacAddr::BROADCAST);
        assert!(pkt.summary().contains("ARP"));
    }

    #[test]
    fn icmp_packet_accessors() {
        let pkt = builder::icmp_echo_request(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(1, 1, 1, 1),
            7,
            1,
        );
        assert!(pkt.icmp().is_some());
        let ft = pkt.five_tuple().unwrap();
        assert_eq!(ft.src_port, 0);
        assert_eq!(ft.protocol, IpProtocol::Icmp);
    }

    #[test]
    fn garbage_frames_are_rejected() {
        assert!(Packet::from_vec(vec![0u8; 5]).is_err());
        // Valid Ethernet header claiming IPv4 but with a garbage IP header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MacAddr::BROADCAST.octets());
        bytes.extend_from_slice(&client_mac().octets());
        bytes.extend_from_slice(&0x0800u16.to_be_bytes());
        bytes.extend_from_slice(&[0xff; 20]);
        assert!(Packet::from_vec(bytes).is_err());
    }

    #[test]
    fn truncated_transport_headers_are_rejected_at_parse_time() {
        // A valid IPv4 header claiming TCP but with no room for the TCP
        // header: the fast scan must reject it exactly like the eager parser.
        let ok = builder::tcp_data(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40000,
            80,
            b"x",
        );
        let mut bytes = ok.bytes().to_vec();
        bytes.truncate(14 + 20 + 10); // Ethernet + IPv4, half a TCP header
                                      // Fix up the IPv4 total length and checksum for the truncated frame.
        let total = (bytes.len() - 14) as u16;
        bytes[16..18].copy_from_slice(&total.to_be_bytes());
        bytes[24] = 0;
        bytes[25] = 0;
        let checksum = crate::checksum::internet_checksum(&bytes[14..34]);
        bytes[24..26].copy_from_slice(&checksum.to_be_bytes());
        assert!(Packet::from_vec(bytes).is_err());
    }

    #[test]
    fn unknown_ethertype_is_kept_opaque() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&gw_mac().octets());
        bytes.extend_from_slice(&client_mac().octets());
        bytes.extend_from_slice(&0x88ccu16.to_be_bytes()); // LLDP
        bytes.extend_from_slice(&[0u8; 30]);
        let pkt = Packet::from_vec(bytes).unwrap();
        assert_eq!(pkt.network(), &NetworkLayer::Other);
        assert!(pkt.five_tuple().is_none());
        assert!(pkt.summary().contains("L2"));
    }
}
