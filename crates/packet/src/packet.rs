//! The high-level [`Packet`] type passed between clients, the software switch
//! and the network functions.
//!
//! A `Packet` owns the raw frame bytes plus the parsed view of every layer the
//! framework understands (Ethernet, ARP or IPv4, TCP/UDP/ICMP). Parsing
//! happens exactly once, when the frame enters the data plane; NFs then
//! inspect the typed view and, when they need to rewrite fields (NAT, DNS load
//! balancer), build a new frame through [`crate::builder`].

use crate::arp::ArpPacket;
use crate::dns::{DnsMessage, DNS_PORT};
use crate::ethernet::{EtherType, EthernetHeader};
use crate::flow::FiveTuple;
use crate::http::{looks_like_http_request, HttpRequest, HTTP_PORT};
use crate::icmp::IcmpMessage;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use bytes::Bytes;
use gnf_types::{GnfError, GnfResult, MacAddr};
use serde::{Deserialize, Serialize};

/// The parsed network layer of a frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkLayer {
    /// An ARP packet.
    Arp(ArpPacket),
    /// An IPv4 packet with its transport layer.
    Ipv4 {
        /// The IPv4 header.
        header: Ipv4Header,
        /// The transport layer carried inside.
        transport: TransportLayer,
    },
    /// Any other EtherType; payload left opaque.
    Other,
}

/// The parsed transport layer of an IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportLayer {
    /// TCP segment: header plus the offset of its payload within the frame.
    Tcp {
        /// Parsed TCP header.
        header: TcpHeader,
        /// Offset of the TCP payload from the start of the frame.
        payload_offset: usize,
    },
    /// UDP datagram: header plus the offset of its payload within the frame.
    Udp {
        /// Parsed UDP header.
        header: UdpHeader,
        /// Offset of the UDP payload from the start of the frame.
        payload_offset: usize,
    },
    /// ICMP message (fully parsed, including payload).
    Icmp(IcmpMessage),
    /// Unknown IP protocol; payload left opaque.
    Other,
}

/// A fully parsed Ethernet frame flowing through the GNF data plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    bytes: Bytes,
    ethernet: EthernetHeader,
    network: NetworkLayer,
}

impl Packet {
    /// Parses a raw Ethernet frame.
    pub fn parse(bytes: Bytes) -> GnfResult<Self> {
        let (ethernet, eth_len) = EthernetHeader::parse(&bytes)?;
        let rest = &bytes[eth_len..];
        let network = match ethernet.ethertype {
            EtherType::Arp => {
                let (arp, _) = ArpPacket::parse(rest)?;
                NetworkLayer::Arp(arp)
            }
            EtherType::Ipv4 => {
                let (ip, ip_len) = Ipv4Header::parse(rest)?;
                let l4_offset = eth_len + ip_len;
                // Respect the IPv4 total length: anything beyond it is padding.
                let ip_end = (eth_len + ip.total_length as usize).min(bytes.len());
                let l4 = &bytes[l4_offset..ip_end];
                let transport = match ip.protocol {
                    IpProtocol::Tcp => {
                        let (header, consumed) = TcpHeader::parse(l4)?;
                        TransportLayer::Tcp {
                            header,
                            payload_offset: l4_offset + consumed,
                        }
                    }
                    IpProtocol::Udp => {
                        let (header, consumed) = UdpHeader::parse(l4)?;
                        TransportLayer::Udp {
                            header,
                            payload_offset: l4_offset + consumed,
                        }
                    }
                    IpProtocol::Icmp => {
                        let (msg, _) = IcmpMessage::parse(l4)?;
                        TransportLayer::Icmp(msg)
                    }
                    IpProtocol::Other(_) => TransportLayer::Other,
                };
                NetworkLayer::Ipv4 {
                    header: ip,
                    transport,
                }
            }
            _ => NetworkLayer::Other,
        };
        Ok(Packet {
            bytes,
            ethernet,
            network,
        })
    }

    /// Parses a frame from a byte vector.
    pub fn from_vec(bytes: Vec<u8>) -> GnfResult<Self> {
        Self::parse(Bytes::from(bytes))
    }

    /// The raw frame bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the frame is empty (never the case for parsed packets).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The Ethernet header.
    pub fn ethernet(&self) -> &EthernetHeader {
        &self.ethernet
    }

    /// Source MAC address.
    pub fn src_mac(&self) -> MacAddr {
        self.ethernet.src
    }

    /// Destination MAC address.
    pub fn dst_mac(&self) -> MacAddr {
        self.ethernet.dst
    }

    /// The parsed network layer.
    pub fn network(&self) -> &NetworkLayer {
        &self.network
    }

    /// The ARP packet, if this frame carries one.
    pub fn arp(&self) -> Option<&ArpPacket> {
        match &self.network {
            NetworkLayer::Arp(arp) => Some(arp),
            _ => None,
        }
    }

    /// The IPv4 header, if this is an IPv4 frame.
    pub fn ipv4(&self) -> Option<&Ipv4Header> {
        match &self.network {
            NetworkLayer::Ipv4 { header, .. } => Some(header),
            _ => None,
        }
    }

    /// The TCP header, if this is a TCP frame.
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match &self.network {
            NetworkLayer::Ipv4 {
                transport: TransportLayer::Tcp { header, .. },
                ..
            } => Some(header),
            _ => None,
        }
    }

    /// The UDP header, if this is a UDP frame.
    pub fn udp(&self) -> Option<&UdpHeader> {
        match &self.network {
            NetworkLayer::Ipv4 {
                transport: TransportLayer::Udp { header, .. },
                ..
            } => Some(header),
            _ => None,
        }
    }

    /// The ICMP message, if this is an ICMP frame.
    pub fn icmp(&self) -> Option<&IcmpMessage> {
        match &self.network {
            NetworkLayer::Ipv4 {
                transport: TransportLayer::Icmp(msg),
                ..
            } => Some(msg),
            _ => None,
        }
    }

    /// The TCP payload bytes, if any.
    pub fn tcp_payload(&self) -> Option<&[u8]> {
        match &self.network {
            NetworkLayer::Ipv4 {
                header,
                transport: TransportLayer::Tcp { payload_offset, .. },
            } => {
                let end = (14 + header.total_length as usize).min(self.bytes.len());
                Some(&self.bytes[*payload_offset..end.max(*payload_offset)])
            }
            _ => None,
        }
    }

    /// The UDP payload bytes, if any.
    pub fn udp_payload(&self) -> Option<&[u8]> {
        match &self.network {
            NetworkLayer::Ipv4 {
                transport:
                    TransportLayer::Udp {
                        header,
                        payload_offset,
                    },
                ..
            } => {
                let end = (payload_offset + header.payload_len()).min(self.bytes.len());
                Some(&self.bytes[*payload_offset..end])
            }
            _ => None,
        }
    }

    /// The five-tuple of this packet, if it is TCP, UDP or ICMP over IPv4.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        let header = self.ipv4()?;
        let (src_port, dst_port) = match &self.network {
            NetworkLayer::Ipv4 { transport, .. } => match transport {
                TransportLayer::Tcp { header, .. } => (header.src_port, header.dst_port),
                TransportLayer::Udp { header, .. } => (header.src_port, header.dst_port),
                TransportLayer::Icmp(_) => (0, 0),
                TransportLayer::Other => return None,
            },
            _ => return None,
        };
        Some(FiveTuple::new(
            header.src,
            header.dst,
            header.protocol,
            src_port,
            dst_port,
        ))
    }

    /// Attempts to parse the payload as a DNS message (UDP port 53 on either
    /// side).
    pub fn dns(&self) -> Option<DnsMessage> {
        let udp = self.udp()?;
        if udp.src_port != DNS_PORT && udp.dst_port != DNS_PORT {
            return None;
        }
        DnsMessage::parse(self.udp_payload()?).ok()
    }

    /// Attempts to parse the payload as an HTTP request (TCP port 80 on the
    /// destination side, payload starting with a known method token).
    pub fn http_request(&self) -> Option<HttpRequest> {
        let tcp = self.tcp()?;
        if tcp.dst_port != HTTP_PORT {
            return None;
        }
        let payload = self.tcp_payload()?;
        if !looks_like_http_request(payload) {
            return None;
        }
        HttpRequest::parse(payload).ok()
    }

    /// True when this packet is an IPv4 packet addressed *from* the given MAC
    /// (used by the switch's per-client steering).
    pub fn is_from_mac(&self, mac: MacAddr) -> bool {
        self.ethernet.src == mac
    }

    /// A one-line human-readable summary used in logs and the UI event feed.
    pub fn summary(&self) -> String {
        match &self.network {
            NetworkLayer::Arp(arp) => format!(
                "ARP {:?} {} -> {}",
                arp.operation, arp.sender_ip, arp.target_ip
            ),
            NetworkLayer::Ipv4 { header, transport } => match transport {
                TransportLayer::Tcp { header: tcp, .. } => format!(
                    "TCP {}:{} -> {}:{} [{}] {}B",
                    header.src,
                    tcp.src_port,
                    header.dst,
                    tcp.dst_port,
                    tcp.flags,
                    self.len()
                ),
                TransportLayer::Udp { header: udp, .. } => format!(
                    "UDP {}:{} -> {}:{} {}B",
                    header.src, udp.src_port, header.dst, udp.dst_port, self.len()
                ),
                TransportLayer::Icmp(icmp) => format!(
                    "ICMP {:?} {} -> {}",
                    icmp.kind, header.src, header.dst
                ),
                TransportLayer::Other => format!(
                    "IPv4 proto {} {} -> {}",
                    header.protocol.value(),
                    header.src,
                    header.dst
                ),
            },
            NetworkLayer::Other => format!(
                "L2 {} -> {} ethertype {:#06x}",
                self.ethernet.src,
                self.ethernet.dst,
                self.ethernet.ethertype.value()
            ),
        }
    }
}

impl TryFrom<Vec<u8>> for Packet {
    type Error = GnfError;
    fn try_from(bytes: Vec<u8>) -> Result<Self, Self::Error> {
        Packet::from_vec(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;
    use std::net::Ipv4Addr;

    fn client_mac() -> MacAddr {
        MacAddr::derived(1, 1)
    }
    fn gw_mac() -> MacAddr {
        MacAddr::derived(2, 1)
    }

    #[test]
    fn tcp_packet_accessors() {
        let pkt = builder::tcp_data(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40000,
            80,
            b"hello",
        );
        assert_eq!(pkt.src_mac(), client_mac());
        assert_eq!(pkt.dst_mac(), gw_mac());
        assert!(pkt.ipv4().is_some());
        assert!(pkt.tcp().is_some());
        assert!(pkt.udp().is_none());
        assert_eq!(pkt.tcp_payload().unwrap(), b"hello");
        let ft = pkt.five_tuple().unwrap();
        assert_eq!(ft.dst_port, 80);
        assert_eq!(ft.protocol, IpProtocol::Tcp);
        assert!(pkt.summary().contains("TCP"));
    }

    #[test]
    fn dns_packet_is_detected() {
        let pkt = builder::dns_query(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            4444,
            0x1234,
            "example.com",
        );
        let dns = pkt.dns().expect("should parse DNS");
        assert_eq!(dns.first_question_name(), Some("example.com"));
        assert!(!dns.is_response);
        assert!(pkt.http_request().is_none());
    }

    #[test]
    fn http_request_is_detected() {
        let pkt = builder::http_get(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40001,
            "blocked.example",
            "/index.html",
        );
        let req = pkt.http_request().expect("should parse HTTP");
        assert_eq!(req.host(), Some("blocked.example"));
        assert_eq!(req.path, "/index.html");
        // A non-port-80 TCP packet is not treated as HTTP.
        let other = builder::tcp_data(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            40001,
            8080,
            b"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(other.http_request().is_none());
    }

    #[test]
    fn arp_packet_accessors() {
        let pkt = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert!(pkt.arp().is_some());
        assert!(pkt.ipv4().is_none());
        assert!(pkt.five_tuple().is_none());
        assert_eq!(pkt.dst_mac(), MacAddr::BROADCAST);
        assert!(pkt.summary().contains("ARP"));
    }

    #[test]
    fn icmp_packet_accessors() {
        let pkt = builder::icmp_echo_request(
            client_mac(),
            gw_mac(),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(1, 1, 1, 1),
            7,
            1,
        );
        assert!(pkt.icmp().is_some());
        let ft = pkt.five_tuple().unwrap();
        assert_eq!(ft.src_port, 0);
        assert_eq!(ft.protocol, IpProtocol::Icmp);
    }

    #[test]
    fn garbage_frames_are_rejected() {
        assert!(Packet::from_vec(vec![0u8; 5]).is_err());
        // Valid Ethernet header claiming IPv4 but with a garbage IP header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MacAddr::BROADCAST.octets());
        bytes.extend_from_slice(&client_mac().octets());
        bytes.extend_from_slice(&0x0800u16.to_be_bytes());
        bytes.extend_from_slice(&[0xff; 20]);
        assert!(Packet::from_vec(bytes).is_err());
    }

    #[test]
    fn unknown_ethertype_is_kept_opaque() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&gw_mac().octets());
        bytes.extend_from_slice(&client_mac().octets());
        bytes.extend_from_slice(&0x88ccu16.to_be_bytes()); // LLDP
        bytes.extend_from_slice(&[0u8; 30]);
        let pkt = Packet::from_vec(bytes).unwrap();
        assert_eq!(pkt.network(), &NetworkLayer::Other);
        assert!(pkt.five_tuple().is_none());
        assert!(pkt.summary().contains("L2"));
    }
}
