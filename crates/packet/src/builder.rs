//! Convenience constructors for complete, well-formed frames.
//!
//! Traffic generators, tests and benchmarks build frames through these
//! functions so that checksums, lengths and layer offsets are always
//! consistent. Each function returns a fully parsed [`Packet`].

use crate::arp::ArpPacket;
use crate::dns::{DnsMessage, DNS_PORT};
use crate::ethernet::{EtherType, EthernetHeader};
use crate::http::{HttpRequest, HttpResponse, HTTP_PORT};
use crate::icmp::IcmpMessage;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::packet::Packet;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;
use bytes::BytesMut;
use gnf_types::MacAddr;
use std::net::Ipv4Addr;

/// Builds an Ethernet + IPv4 + TCP frame carrying `payload`.
#[allow(clippy::too_many_arguments)]
pub fn tcp_packet(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    flags: TcpFlags,
    payload: &[u8],
) -> Packet {
    let mut tcp = TcpHeader::new(src_port, dst_port, flags);
    tcp.seq = 1;
    let mut l4 = BytesMut::with_capacity(20 + payload.len());
    tcp.emit(&mut l4, src_ip, dst_ip, payload);

    build_ipv4_frame(src_mac, dst_mac, src_ip, dst_ip, IpProtocol::Tcp, &l4)
}

/// Builds a TCP data segment with the `ACK|PSH` flags set (a typical in-flow
/// data packet).
pub fn tcp_data(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Packet {
    let flags = TcpFlags {
        ack: true,
        psh: !payload.is_empty(),
        ..TcpFlags::default()
    };
    tcp_packet(
        src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, flags, payload,
    )
}

/// Builds a TCP SYN (connection-opening) segment.
pub fn tcp_syn(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
) -> Packet {
    tcp_packet(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        TcpFlags::SYN,
        b"",
    )
}

/// Builds an Ethernet + IPv4 + UDP frame carrying `payload`.
#[allow(clippy::too_many_arguments)]
pub fn udp_packet(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Packet {
    let udp = UdpHeader::new(src_port, dst_port, payload.len());
    let mut l4 = BytesMut::with_capacity(8 + payload.len());
    udp.emit(&mut l4, src_ip, dst_ip, payload);
    build_ipv4_frame(src_mac, dst_mac, src_ip, dst_ip, IpProtocol::Udp, &l4)
}

/// Builds an ICMP echo request frame.
pub fn icmp_echo_request(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    identifier: u16,
    sequence: u16,
) -> Packet {
    let msg = IcmpMessage::echo_request(identifier, sequence, vec![0x47; 32]);
    let mut l4 = BytesMut::with_capacity(msg.len());
    msg.emit(&mut l4);
    build_ipv4_frame(src_mac, dst_mac, src_ip, dst_ip, IpProtocol::Icmp, &l4)
}

/// Builds a broadcast ARP who-has request.
pub fn arp_request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Packet {
    let arp = ArpPacket::request(sender_mac, sender_ip, target_ip);
    let mut payload = BytesMut::with_capacity(28);
    arp.emit(&mut payload);
    build_frame(sender_mac, MacAddr::BROADCAST, EtherType::Arp, &payload)
}

/// Builds a unicast ARP reply answering `request`.
pub fn arp_reply(request: &ArpPacket, responder_mac: MacAddr) -> Packet {
    let arp = ArpPacket::reply_to(request, responder_mac);
    let mut payload = BytesMut::with_capacity(28);
    arp.emit(&mut payload);
    build_frame(responder_mac, request.sender_mac, EtherType::Arp, &payload)
}

/// Builds a DNS A-record query carried over UDP to port 53.
#[allow(clippy::too_many_arguments)]
pub fn dns_query(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    id: u16,
    name: &str,
) -> Packet {
    let msg = DnsMessage::query(id, name);
    udp_packet(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        src_port,
        DNS_PORT,
        &msg.to_bytes(),
    )
}

/// Builds a DNS response frame for the given query packet contents.
#[allow(clippy::too_many_arguments)]
pub fn dns_response(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    dst_port: u16,
    query: &DnsMessage,
    addresses: &[Ipv4Addr],
    ttl: u32,
) -> Packet {
    let msg = DnsMessage::response_to(query, addresses, ttl);
    udp_packet(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        DNS_PORT,
        dst_port,
        &msg.to_bytes(),
    )
}

/// Builds an HTTP GET request frame to port 80.
#[allow(clippy::too_many_arguments)]
pub fn http_get(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    host: &str,
    path: &str,
) -> Packet {
    let req = HttpRequest::get(host, path);
    tcp_data(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        src_port,
        HTTP_PORT,
        &req.to_bytes(),
    )
}

/// Builds an HTTP response frame from port 80 back to the client.
#[allow(clippy::too_many_arguments)]
pub fn http_response(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    dst_port: u16,
    response: &HttpResponse,
) -> Packet {
    tcp_data(
        src_mac,
        dst_mac,
        src_ip,
        dst_ip,
        HTTP_PORT,
        dst_port,
        &response.to_bytes(),
    )
}

/// Builds a raw IPv4 frame around an already-encoded transport payload.
fn build_ipv4_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    protocol: IpProtocol,
    l4: &[u8],
) -> Packet {
    let ip = Ipv4Header::new(src_ip, dst_ip, protocol, l4.len());
    let mut payload = BytesMut::with_capacity(20 + l4.len());
    ip.emit(&mut payload, l4.len());
    payload.extend_from_slice(l4);
    build_frame(src_mac, dst_mac, EtherType::Ipv4, &payload)
}

/// Builds an Ethernet frame around an already-encoded payload.
fn build_frame(src_mac: MacAddr, dst_mac: MacAddr, ethertype: EtherType, payload: &[u8]) -> Packet {
    let eth = EthernetHeader {
        dst: dst_mac,
        src: src_mac,
        ethertype,
    };
    let mut frame = BytesMut::with_capacity(14 + payload.len());
    eth.emit(&mut frame);
    frame.extend_from_slice(payload);
    Packet::parse(frame.freeze()).expect("builder produced an unparseable frame")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::derived(1, 1), MacAddr::derived(2, 1))
    }
    fn ips() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(203, 0, 113, 5))
    }

    #[test]
    fn every_builder_produces_parseable_frames() {
        let (cm, gm) = macs();
        let (ci, si) = ips();
        let packets = vec![
            tcp_syn(cm, gm, ci, si, 40000, 443),
            tcp_data(cm, gm, ci, si, 40000, 443, b"data"),
            udp_packet(cm, gm, ci, si, 5000, 5001, b"payload"),
            icmp_echo_request(cm, gm, ci, si, 1, 1),
            arp_request(cm, ci, si),
            dns_query(cm, gm, ci, si, 4242, 7, "edge.example"),
            http_get(cm, gm, ci, si, 40001, "www.example", "/"),
        ];
        for pkt in packets {
            // Re-parsing the raw bytes must give back an identical packet.
            let reparsed = Packet::parse(pkt.bytes().clone()).unwrap();
            assert_eq!(&reparsed, &pkt);
        }
    }

    #[test]
    fn dns_response_builder_answers_the_query() {
        let (cm, gm) = macs();
        let (ci, si) = ips();
        let query_pkt = dns_query(cm, gm, ci, si, 4242, 7, "service.example");
        let query = query_pkt.dns().unwrap();
        let addrs = [Ipv4Addr::new(10, 10, 0, 1)];
        let resp_pkt = dns_response(gm, cm, si, ci, 4242, &query, &addrs, 60);
        let resp = resp_pkt.dns().unwrap();
        assert!(resp.is_response);
        assert_eq!(resp.id, 7);
        assert_eq!(resp.a_records(), addrs.to_vec());
    }

    #[test]
    fn http_response_builder_is_parseable() {
        let (cm, gm) = macs();
        let (ci, si) = ips();
        let resp = HttpResponse::forbidden();
        let pkt = http_response(gm, cm, si, ci, 40001, &resp);
        let tcp = pkt.tcp().unwrap();
        assert_eq!(tcp.src_port, HTTP_PORT);
        let parsed = HttpResponse::parse(pkt.tcp_payload().unwrap()).unwrap();
        assert_eq!(parsed.status, 403);
    }

    #[test]
    fn arp_reply_targets_the_requester() {
        let (cm, gm) = macs();
        let (ci, si) = ips();
        let req_pkt = arp_request(cm, ci, si);
        let req = req_pkt.arp().unwrap();
        let reply_pkt = arp_reply(req, gm);
        assert_eq!(reply_pkt.dst_mac(), cm);
        let reply = reply_pkt.arp().unwrap();
        assert_eq!(reply.sender_mac, gm);
        assert_eq!(reply.target_ip, ci);
    }
}
