//! UDP datagram headers (RFC 768). DNS traffic — the workload of the DNS load
//! balancer NF — is carried over UDP.

use crate::checksum::transport_checksum;
use crate::ipv4::IpProtocol;
use bytes::{BufMut, BytesMut};
use gnf_types::{GnfError, GnfResult};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// UDP header length.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload, as carried on the wire.
    pub length: u16,
}

impl UdpHeader {
    /// Creates a header for a payload of `payload_len` bytes.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Payload length implied by the length field.
    pub fn payload_len(&self) -> usize {
        (self.length as usize).saturating_sub(UDP_HEADER_LEN)
    }

    /// Parses a UDP header. Returns the header and bytes consumed.
    pub fn parse(data: &[u8]) -> GnfResult<(Self, usize)> {
        if data.len() < UDP_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "udp",
                format!("header too short: {} bytes", data.len()),
            ));
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if (length as usize) < UDP_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "udp",
                format!("length field {length} below header size"),
            ));
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length,
            },
            UDP_HEADER_LEN,
        ))
    }

    /// Appends the header and payload to `buf`, computing the checksum against
    /// the given IPv4 endpoint addresses.
    pub fn emit(&self, buf: &mut BytesMut, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        let start = buf.len();
        let length = (UDP_HEADER_LEN + payload.len()) as u16;
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(length);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(payload);
        let segment = &buf[start..];
        let checksum = transport_checksum(src, dst, IpProtocol::Udp.value(), segment);
        buf[start + 6..start + 8].copy_from_slice(&checksum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::Checksum;

    #[test]
    fn emit_parse_roundtrip() {
        let src = Ipv4Addr::new(10, 0, 0, 2);
        let dst = Ipv4Addr::new(8, 8, 4, 4);
        let payload = b"dns-query-bytes";
        let hdr = UdpHeader::new(53124, 53, payload.len());
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, src, dst, payload);
        assert_eq!(buf.len(), UDP_HEADER_LEN + payload.len());

        let (parsed, consumed) = UdpHeader::parse(&buf).unwrap();
        assert_eq!(consumed, UDP_HEADER_LEN);
        assert_eq!(parsed.src_port, 53124);
        assert_eq!(parsed.dst_port, 53);
        assert_eq!(parsed.payload_len(), payload.len());
        assert_eq!(&buf[consumed..], payload);
    }

    #[test]
    fn emitted_checksum_verifies() {
        let src = Ipv4Addr::new(172, 16, 0, 1);
        let dst = Ipv4Addr::new(172, 16, 0, 2);
        let hdr = UdpHeader::new(9999, 53, 4);
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, src, dst, b"abcd");
        let mut cs = Checksum::new();
        cs.add_u32(u32::from(src));
        cs.add_u32(u32::from(dst));
        cs.add_u16(17);
        cs.add_u16(buf.len() as u16);
        cs.add_bytes(&buf);
        assert_eq!(cs.finish(), 0);
    }

    #[test]
    fn short_or_inconsistent_headers_are_rejected() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
        let mut buf = BytesMut::new();
        UdpHeader::new(1, 2, 0).emit(&mut buf, Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, b"");
        buf[4] = 0;
        buf[5] = 3; // length 3 < 8
        assert!(UdpHeader::parse(&buf).is_err());
    }
}
