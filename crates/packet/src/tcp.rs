//! TCP segment headers (RFC 793): the fields the firewall matches on (ports,
//! flags) and enough state to let the NAT and the HTTP filter follow
//! connections. Options are carried opaquely.

use crate::checksum::transport_checksum;
use crate::ipv4::IpProtocol;
use bytes::{BufMut, BytesMut};
use gnf_types::{GnfError, GnfResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// FIN: sender has finished sending.
    pub fin: bool,
    /// SYN: synchronise sequence numbers.
    pub syn: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// ACK: acknowledgement field is significant.
    pub ack: bool,
    /// URG: urgent pointer is significant.
    pub urg: bool,
}

impl TcpFlags {
    /// The flag set of a connection-opening SYN.
    pub const SYN: TcpFlags = TcpFlags {
        fin: false,
        syn: true,
        rst: false,
        psh: false,
        ack: false,
        urg: false,
    };

    /// The flag set of a SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
        urg: false,
    };

    /// The flag set of a plain data/acknowledgement segment.
    pub const ACK: TcpFlags = TcpFlags {
        ack: true,
        syn: false,
        fin: false,
        rst: false,
        psh: false,
        urg: false,
    };

    /// The flag set of a connection-closing FIN-ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        fin: true,
        ack: true,
        syn: false,
        rst: false,
        psh: false,
        urg: false,
    };

    /// The flag set of a reset.
    pub const RST: TcpFlags = TcpFlags {
        rst: true,
        syn: false,
        fin: false,
        psh: false,
        ack: false,
        urg: false,
    };

    /// Encodes the flags into the low byte of the TCP header's 13th/14th bytes.
    pub fn to_byte(&self) -> u8 {
        let mut b = 0u8;
        if self.fin {
            b |= 0x01;
        }
        if self.syn {
            b |= 0x02;
        }
        if self.rst {
            b |= 0x04;
        }
        if self.psh {
            b |= 0x08;
        }
        if self.ack {
            b |= 0x10;
        }
        if self.urg {
            b |= 0x20;
        }
        b
    }

    /// Decodes the flag byte.
    pub fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            urg: b & 0x20 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if self.psh {
            parts.push("PSH");
        }
        if self.urg {
            parts.push("URG");
        }
        if parts.is_empty() {
            f.write_str("-")
        } else {
            f.write_str(&parts.join("|"))
        }
    }
}

/// A parsed TCP header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw option bytes (length must be a multiple of 4).
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// Creates a header with the given ports and flags and sensible defaults.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags,
            window: 65_535,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Header length including options.
    pub fn header_len(&self) -> usize {
        TCP_HEADER_LEN + self.options.len()
    }

    /// Parses a TCP header from `data`. Returns the header and bytes consumed.
    pub fn parse(data: &[u8]) -> GnfResult<(Self, usize)> {
        if data.len() < TCP_HEADER_LEN {
            return Err(GnfError::malformed_packet(
                "tcp",
                format!("header too short: {} bytes", data.len()),
            ));
        }
        let data_offset = ((data[12] >> 4) as usize) * 4;
        if data_offset < TCP_HEADER_LEN || data.len() < data_offset {
            return Err(GnfError::malformed_packet(
                "tcp",
                format!("invalid data offset {data_offset}"),
            ));
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: TcpFlags::from_byte(data[13]),
                window: u16::from_be_bytes([data[14], data[15]]),
                urgent: u16::from_be_bytes([data[18], data[19]]),
                options: data[TCP_HEADER_LEN..data_offset].to_vec(),
            },
            data_offset,
        ))
    }

    /// Appends the header and payload to `buf`, computing the checksum against
    /// the given IPv4 endpoint addresses.
    pub fn emit(&self, buf: &mut BytesMut, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        debug_assert_eq!(
            self.options.len() % 4,
            0,
            "TCP options must pad to 32-bit words"
        );
        let header_len = self.header_len();
        let start = buf.len();
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(((header_len / 4) as u8) << 4);
        buf.put_u8(self.flags.to_byte());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(self.urgent);
        buf.put_slice(&self.options);
        buf.put_slice(payload);

        let segment = &buf[start..];
        let checksum = transport_checksum(src, dst, IpProtocol::Tcp.value(), segment);
        buf[start + 16..start + 18].copy_from_slice(&checksum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::Checksum;

    #[test]
    fn flags_roundtrip_through_byte() {
        for byte in 0u8..64 {
            let flags = TcpFlags::from_byte(byte);
            assert_eq!(flags.to_byte(), byte & 0x3f);
        }
        assert_eq!(TcpFlags::SYN.to_byte(), 0x02);
        assert_eq!(TcpFlags::SYN_ACK.to_byte(), 0x12);
        assert_eq!(TcpFlags::RST.to_byte(), 0x04);
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
    }

    #[test]
    fn emit_parse_roundtrip_with_payload() {
        let src = Ipv4Addr::new(10, 0, 0, 2);
        let dst = Ipv4Addr::new(93, 184, 216, 34);
        let mut hdr = TcpHeader::new(49152, 80, TcpFlags::ACK);
        hdr.seq = 1000;
        hdr.ack = 2000;
        let payload = b"GET / HTTP/1.1\r\n\r\n";
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, src, dst, payload);
        assert_eq!(buf.len(), TCP_HEADER_LEN + payload.len());

        let (parsed, consumed) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(consumed, TCP_HEADER_LEN);
        assert_eq!(parsed.src_port, 49152);
        assert_eq!(parsed.dst_port, 80);
        assert_eq!(parsed.seq, 1000);
        assert_eq!(parsed.ack, 2000);
        assert_eq!(parsed.flags, TcpFlags::ACK);
        assert_eq!(&buf[consumed..], payload);
    }

    #[test]
    fn emitted_checksum_verifies() {
        let src = Ipv4Addr::new(192, 168, 1, 2);
        let dst = Ipv4Addr::new(8, 8, 8, 8);
        let hdr = TcpHeader::new(1234, 443, TcpFlags::SYN);
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, src, dst, b"");
        let mut cs = Checksum::new();
        cs.add_u32(u32::from(src));
        cs.add_u32(u32::from(dst));
        cs.add_u16(6);
        cs.add_u16(buf.len() as u16);
        cs.add_bytes(&buf);
        assert_eq!(cs.finish(), 0);
    }

    #[test]
    fn short_or_bad_offset_headers_are_rejected() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
        let mut buf = BytesMut::new();
        TcpHeader::new(1, 2, TcpFlags::SYN).emit(
            &mut buf,
            Ipv4Addr::LOCALHOST,
            Ipv4Addr::LOCALHOST,
            b"",
        );
        buf[12] = 0x20; // data offset 8 bytes < 20
        assert!(TcpHeader::parse(&buf).is_err());
        buf[12] = 0xf0; // data offset 60 bytes > buffer
        assert!(TcpHeader::parse(&buf).is_err());
    }

    #[test]
    fn options_are_preserved() {
        let mut hdr = TcpHeader::new(5000, 80, TcpFlags::SYN);
        hdr.options = vec![0x02, 0x04, 0x05, 0xb4]; // MSS 1460
        let mut buf = BytesMut::new();
        hdr.emit(&mut buf, Ipv4Addr::LOCALHOST, Ipv4Addr::LOCALHOST, b"x");
        let (parsed, consumed) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(consumed, 24);
        assert_eq!(parsed.options, hdr.options);
    }
}
