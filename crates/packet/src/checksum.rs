//! RFC 1071 Internet checksum, used by IPv4, ICMP, TCP and UDP.
//!
//! The checksum is the 16-bit one's-complement of the one's-complement sum of
//! the covered bytes. TCP and UDP additionally cover a pseudo-header built
//! from the IPv4 source/destination addresses, the protocol number and the
//! segment length.

use std::net::Ipv4Addr;

/// Accumulator for the one's-complement sum. Data can be fed in several
/// chunks (header, pseudo-header, payload) before finalising.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a byte slice to the sum. Slices of odd length are zero-padded on
    /// the right, per RFC 1071.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.add_u16(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Adds a single big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Adds a 32-bit value as two 16-bit words (used for IPv4 addresses in the
    /// pseudo-header).
    pub fn add_u32(&mut self, value: u32) {
        self.add_u16((value >> 16) as u16);
        self.add_u16((value & 0xffff) as u16);
    }

    /// Folds the carries and returns the one's-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Computes the Internet checksum of a byte slice.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut cs = Checksum::new();
    cs.add_bytes(data);
    cs.finish()
}

/// Verifies a slice whose checksum field is already filled in: the folded sum
/// over the whole slice must be zero.
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

/// Computes the TCP/UDP checksum: pseudo-header (src, dst, zero, protocol,
/// length) followed by the transport header and payload with the checksum
/// field zeroed by the caller.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let mut cs = Checksum::new();
    cs.add_u32(u32::from(src));
    cs.add_u32(u32::from(dst));
    cs.add_u16(u16::from(protocol));
    cs.add_u16(segment.len() as u16);
    cs.add_bytes(segment);
    let folded = cs.finish();
    // Per RFC 768 a computed UDP checksum of zero is transmitted as all-ones;
    // doing the same for TCP is harmless (0xffff and 0x0000 are equivalent in
    // one's-complement arithmetic).
    if folded == 0 {
        0xffff
    } else {
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // Example from RFC 1071 section 3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // One's-complement sum is 0xddf2, checksum is its complement 0x220d.
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_is_padded() {
        let even = internet_checksum(&[0x12, 0x34, 0x56, 0x00]);
        let odd = internet_checksum(&[0x12, 0x34, 0x56]);
        assert_eq!(even, odd);
    }

    #[test]
    fn verify_accepts_slice_containing_its_own_checksum() {
        let mut header = vec![
            0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let cs = internet_checksum(&header);
        header[10..12].copy_from_slice(&cs.to_be_bytes());
        assert!(verify(&header));
        // Corrupt one byte and verification must fail.
        header[0] ^= 0xff;
        assert!(!verify(&header));
    }

    #[test]
    fn transport_checksum_verifies_round_trip() {
        let src = Ipv4Addr::new(192, 168, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        // A fake UDP segment with the checksum field (bytes 6..8) zeroed.
        let mut segment = vec![
            0x04, 0xd2, 0x00, 0x35, 0x00, 0x0c, 0x00, 0x00, b'h', b'i', b'!', b'!',
        ];
        let cs = transport_checksum(src, dst, 17, &segment);
        segment[6..8].copy_from_slice(&cs.to_be_bytes());
        // Re-running the checksum over the segment with the field filled in
        // must fold to zero (or the all-ones equivalent).
        let mut check = Checksum::new();
        check.add_u32(u32::from(src));
        check.add_u32(u32::from(dst));
        check.add_u16(17);
        check.add_u16(segment.len() as u16);
        check.add_bytes(&segment);
        assert_eq!(check.finish(), 0);
    }

    #[test]
    fn zero_checksum_is_mapped_to_all_ones() {
        // An empty segment between zero addresses with protocol 0 and length 0
        // sums to zero, which must be reported as 0xffff.
        let cs = transport_checksum(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 0, &[]);
        assert_eq!(cs, 0xffff);
    }
}
