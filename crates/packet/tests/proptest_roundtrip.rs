//! Property-based tests for the packet layer: every frame produced by the
//! builders must survive a parse → re-parse cycle, checksums must verify, and
//! random byte strings must never cause a panic.

use gnf_packet::builder;
use gnf_packet::{DnsMessage, HttpRequest, Packet, TcpFlags};
use gnf_types::MacAddr;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    (any::<u8>(), any::<u32>()).prop_map(|(ns, ix)| MacAddr::derived(ns, ix))
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    any::<u8>().prop_map(TcpFlags::from_byte)
}

fn arb_dns_name() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,12}", 1..5).prop_map(|labels| labels.join("."))
}

proptest! {
    #[test]
    fn tcp_frames_roundtrip(
        src_mac in arb_mac(),
        dst_mac in arb_mac(),
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        src_port in 1u16..,
        dst_port in 1u16..,
        flags in arb_flags(),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let pkt = builder::tcp_packet(
            src_mac, dst_mac, src_ip, dst_ip, src_port, dst_port, flags, &payload,
        );
        let reparsed = Packet::parse(pkt.bytes().clone()).unwrap();
        prop_assert_eq!(&reparsed, &pkt);
        let tcp = reparsed.tcp().unwrap();
        prop_assert_eq!(tcp.src_port, src_port);
        prop_assert_eq!(tcp.dst_port, dst_port);
        prop_assert_eq!(tcp.flags, flags);
        prop_assert_eq!(reparsed.tcp_payload().unwrap(), &payload[..]);
        let ft = reparsed.five_tuple().unwrap();
        prop_assert_eq!(ft.src_ip, src_ip);
        prop_assert_eq!(ft.dst_ip, dst_ip);
        // The canonical flow key must be direction-agnostic.
        prop_assert_eq!(ft.canonical(), ft.reversed().canonical());
    }

    #[test]
    fn udp_frames_roundtrip(
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        src_port in 1u16..,
        dst_port in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..900),
    ) {
        let pkt = builder::udp_packet(
            MacAddr::derived(1, 1), MacAddr::derived(2, 2),
            src_ip, dst_ip, src_port, dst_port, &payload,
        );
        let reparsed = Packet::parse(pkt.bytes().clone()).unwrap();
        prop_assert_eq!(reparsed.udp_payload().unwrap(), &payload[..]);
        prop_assert_eq!(reparsed.udp().unwrap().payload_len(), payload.len());
    }

    #[test]
    fn dns_messages_roundtrip(
        id in any::<u16>(),
        name in arb_dns_name(),
        addrs in proptest::collection::vec(arb_ipv4(), 0..8),
        ttl in 0u32..86_400,
    ) {
        let query = DnsMessage::query(id, &name);
        let parsed_query = DnsMessage::parse(&query.to_bytes()).unwrap();
        prop_assert_eq!(&parsed_query, &query);

        let response = DnsMessage::response_to(&query, &addrs, ttl);
        let parsed_response = DnsMessage::parse(&response.to_bytes()).unwrap();
        prop_assert_eq!(parsed_response.a_records(), addrs);
        prop_assert_eq!(parsed_response.id, id);
    }

    #[test]
    fn http_requests_roundtrip(
        host in "[a-z]{1,10}(\\.[a-z]{2,6}){1,2}",
        path in "/[a-zA-Z0-9/_.-]{0,40}",
    ) {
        let req = HttpRequest::get(&host, &path);
        let parsed = HttpRequest::parse(&req.to_bytes()).unwrap();
        prop_assert_eq!(parsed.host(), Some(host.as_str()));
        prop_assert_eq!(&parsed.path, &path);
    }

    #[test]
    fn random_bytes_never_panic_the_parser(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Must return Ok or Err, never panic.
        let _ = Packet::from_vec(bytes.clone());
        let _ = DnsMessage::parse(&bytes);
        let _ = HttpRequest::parse(&bytes);
    }

    #[test]
    fn icmp_echo_frames_roundtrip(
        identifier in any::<u16>(),
        sequence in any::<u16>(),
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
    ) {
        let pkt = builder::icmp_echo_request(
            MacAddr::derived(1, 1), MacAddr::derived(2, 2),
            src_ip, dst_ip, identifier, sequence,
        );
        let icmp = pkt.icmp().unwrap();
        prop_assert_eq!(icmp.identifier, identifier);
        prop_assert_eq!(icmp.sequence, sequence);
    }
}
