//! # gnf-vm
//!
//! The virtual-machine NFV baseline the paper's container approach is compared
//! against.
//!
//! Current NFV frameworks criticised in the paper ("utilise commodity x86
//! servers using resource-hungry Virtual Machines") deploy each network
//! function as a full VM: a guest OS image of hundreds of megabytes, seconds
//! to tens of seconds of boot time, and hundreds of megabytes of memory per
//! instance. [`VmRuntime`] implements exactly the same
//! [`gnf_container::NfvRuntime`] interface as
//! [`gnf_container::ContainerRuntime`], so the instantiation
//! (E2), density (E3) and migration experiments can run both technologies
//! through identical code paths and compare the outcomes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gnf_container::cost::CostModel;
use gnf_container::cost::RuntimeKind;
use gnf_container::delegate_runtime;
use gnf_container::image::{vm_layers_for, NfImage};
use gnf_container::runtime::RuntimePool;
use gnf_nf::NfKind;
use gnf_types::{GnfResult, HostClass, ImageId, ResourceSpec};
use serde::{Deserialize, Serialize};

/// The VM-based NFV runtime baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmRuntime {
    pool: RuntimePool,
}

impl VmRuntime {
    /// Creates a VM runtime on a host of the given class.
    ///
    /// Note that creating the runtime does not guarantee any VM actually
    /// fits: on a home-router class host the per-VM footprint exceeds the
    /// host capacity, which is exactly the point the paper makes.
    pub fn new(host: HostClass) -> Self {
        VmRuntime {
            pool: RuntimePool::new(host, CostModel::vm_on(host)),
        }
    }

    /// Creates a runtime with an explicit capacity override.
    pub fn with_capacity(host: HostClass, capacity: ResourceSpec) -> Self {
        VmRuntime {
            pool: RuntimePool::new(host, CostModel::vm_on(host)).with_capacity(capacity),
        }
    }
}

delegate_runtime!(VmRuntime, RuntimeKind::VirtualMachine);

/// A repository of full-VM images mirroring the standard container images:
/// one `glanf/<nf>-vm` image per NF kind, each including a complete guest OS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmImageCatalog {
    images: Vec<NfImage>,
}

impl Default for VmImageCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl VmImageCatalog {
    /// Builds the catalog with one VM image per NF kind.
    pub fn new() -> Self {
        let images = NfKind::all()
            .iter()
            .enumerate()
            .map(|(ix, kind)| NfImage {
                id: ImageId::new(1_000 + ix as u64),
                name: format!("{}-vm", kind.image_name()),
                layers: vm_layers_for(*kind),
            })
            .collect();
        VmImageCatalog { images }
    }

    /// The VM image for an NF kind.
    pub fn for_kind(&self, kind: NfKind) -> GnfResult<&NfImage> {
        let name = format!("{}-vm", kind.image_name());
        self.images
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| gnf_types::GnfError::not_found("vm image", name))
    }

    /// All VM images.
    pub fn images(&self) -> &[NfImage] {
        &self.images
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_container::runtime::NfvRuntime;
    use gnf_container::{ContainerRuntime, ImageRepository};

    #[test]
    fn vm_catalog_has_an_image_per_kind() {
        let catalog = VmImageCatalog::new();
        assert_eq!(catalog.images().len(), NfKind::all().len());
        for kind in NfKind::all() {
            let image = catalog.for_kind(kind).unwrap();
            assert!(image.name.ends_with("-vm"));
            assert!(image.size_mb() > 300, "VM images include a guest OS");
        }
    }

    #[test]
    fn vms_cannot_run_on_a_home_router_but_containers_can() {
        let catalog = VmImageCatalog::new();
        let repo = ImageRepository::with_standard_images();
        let kind = NfKind::Firewall;

        let mut vms = VmRuntime::new(HostClass::HomeRouter);
        let vm_image = catalog.for_kind(kind).unwrap();
        // The VM image alone exceeds the router's storage.
        assert!(vms.deploy("fw-vm", vm_image, kind.vm_footprint()).is_err());

        let mut containers = ContainerRuntime::new(HostClass::HomeRouter);
        let c_image = repo.for_kind(kind).unwrap();
        let deployed = containers
            .deploy("fw-c", c_image, kind.container_footprint())
            .unwrap();
        assert!(deployed.total_duration.as_millis() > 0);
    }

    #[test]
    fn vm_instantiation_is_orders_of_magnitude_slower() {
        let catalog = VmImageCatalog::new();
        let repo = ImageRepository::with_standard_images();
        let kind = NfKind::HttpFilter;
        let host = HostClass::PopServer;

        let mut vms = VmRuntime::new(host);
        let mut containers = ContainerRuntime::new(host);
        let vm = vms
            .deploy(
                "hf-vm",
                catalog.for_kind(kind).unwrap(),
                kind.vm_footprint(),
            )
            .unwrap();
        let container = containers
            .deploy(
                "hf-c",
                repo.for_kind(kind).unwrap(),
                kind.container_footprint(),
            )
            .unwrap();
        let ratio = vm.total_duration.as_millis_f64() / container.total_duration.as_millis_f64();
        assert!(
            ratio > 10.0,
            "VM deploy should be >10x slower, got {ratio:.1}x"
        );
    }

    #[test]
    fn container_density_dwarfs_vm_density_on_the_same_host() {
        let catalog = VmImageCatalog::new();
        let repo = ImageRepository::with_standard_images();
        let kind = NfKind::RateLimiter;
        let host = HostClass::EdgeServer;

        let mut vms = VmRuntime::new(host);
        let vm_image = catalog.for_kind(kind).unwrap();
        let mut vm_count = 0;
        while vms
            .deploy(&format!("vm-{vm_count}"), vm_image, kind.vm_footprint())
            .is_ok()
        {
            vm_count += 1;
            assert!(vm_count < 10_000);
        }

        let mut containers = ContainerRuntime::new(host);
        let c_image = repo.for_kind(kind).unwrap();
        let mut c_count = 0;
        while containers
            .deploy(&format!("c-{c_count}"), c_image, kind.container_footprint())
            .is_ok()
        {
            c_count += 1;
            assert!(c_count < 100_000);
        }

        assert!(vm_count >= 1);
        assert!(
            c_count as f64 / vm_count as f64 > 10.0,
            "expected container density ≫ VM density, got {c_count} vs {vm_count}"
        );
    }

    #[test]
    fn vm_lifecycle_works_on_capable_hosts() {
        let catalog = VmImageCatalog::new();
        let kind = NfKind::Firewall;
        let mut vms = VmRuntime::new(HostClass::CloudVm);
        let image = catalog.for_kind(kind).unwrap();
        let deployed = vms.deploy("fw-vm", image, kind.vm_footprint()).unwrap();
        assert!(vms.checkpoint(deployed.handle, 1_000_000).is_ok());
        vms.stop(deployed.handle).unwrap();
        vms.remove(deployed.handle).unwrap();
        assert_eq!(vms.instance_count(), 0);
        assert_eq!(vms.runtime_kind(), RuntimeKind::VirtualMachine);
    }
}
