//! Service chains: the paper's Manager can associate "single or chain of NFs"
//! with a client's traffic. A chain is an ordered list of NFs; upstream
//! packets traverse it front-to-back, downstream packets back-to-front (so the
//! NF closest to the client sees both directions last/first consistently,
//! mirroring how the veth pairs would be stitched together on a real host).

use crate::nf::{
    Direction, FieldsConsulted, NetworkFunction, NfContext, NfEvent, NfStats, Verdict,
};
use crate::spec::NfKind;
use crate::state::{NfStateDelta, NfStateSnapshot};
use gnf_packet::{FieldMask, Packet, PacketBatch};
use std::borrow::Cow;
use std::sync::Arc;

/// The chain's certified contribution to a megaflow (wildcard) cache entry:
/// what happens to any packet agreeing with the reported one on the masked
/// fields, and the tokens that replay the statistics of exactly the NFs that
/// packet would have visited (see [`NfChain::wildcard_report`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ChainBypass {
    /// Every NF forwards matching packets unchanged: the whole chain may be
    /// skipped. `tokens` (one per NF, in **traversal order** for the
    /// reported direction) replay each NF's statistics via
    /// [`NfChain::credit_bypass`].
    Forward {
        /// Union of the five-tuple fields any NF consulted.
        mask: FieldMask,
        /// Per-NF replay tokens, in traversal order.
        tokens: Arc<[u64]>,
    },
    /// The chain silently drops matching packets at the last tokened NF:
    /// they may be retired before the chain runs. `tokens` (in traversal
    /// order) cover exactly the NFs the packet would have visited — the
    /// dropping NF last — and replay their statistics via
    /// [`NfChain::credit_bypass_drop`]; `reason` is the drop reason every
    /// matching packet would receive.
    Drop {
        /// Union of the five-tuple fields the visited NFs consulted.
        mask: FieldMask,
        /// Replay tokens for the visited NFs, the dropping NF last.
        tokens: Arc<[u64]>,
        /// The replayed drop reason.
        reason: Cow<'static, str>,
    },
}

/// Scratch buffers [`NfChain::process_batch`] reuses across calls: the
/// verdict slots and the alive-index bookkeeping are the same shape every
/// flush, so their allocations are paid once per chain, not once per batch.
/// (The packet vector itself must still be handed to each NF by value — that
/// is the batch contract — so packets are not pooled here.)
#[derive(Default)]
struct BatchScratch {
    verdicts: Vec<Option<Verdict>>,
    alive_ix: Vec<usize>,
    next_ix: Vec<usize>,
    spare: Vec<Packet>,
}

/// An ordered chain of network functions treated as a single function.
pub struct NfChain {
    name: String,
    nfs: Vec<Box<dyn NetworkFunction>>,
    stats: NfStats,
    scratch: BatchScratch,
}

impl NfChain {
    /// Creates an empty chain.
    pub fn new(name: &str) -> Self {
        NfChain {
            name: name.to_string(),
            nfs: Vec::new(),
            stats: NfStats::default(),
            scratch: BatchScratch::default(),
        }
    }

    /// Appends an NF to the end of the chain (furthest from the client).
    pub fn push(&mut self, nf: Box<dyn NetworkFunction>) {
        self.nfs.push(nf);
    }

    /// Number of NFs in the chain.
    pub fn len(&self) -> usize {
        self.nfs.len()
    }

    /// True when the chain contains no NFs.
    pub fn is_empty(&self) -> bool {
        self.nfs.is_empty()
    }

    /// The chain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kinds of the NFs in chain order.
    pub fn kinds(&self) -> Vec<NfKind> {
        self.nfs.iter().map(|nf| nf.kind()).collect()
    }

    /// Per-NF statistics, in chain order, as `(name, kind, stats)`.
    pub fn per_nf_stats(&self) -> Vec<(String, NfKind, NfStats)> {
        self.nfs
            .iter()
            .map(|nf| (nf.name().to_string(), nf.kind(), nf.stats()))
            .collect()
    }

    /// Access an NF by index (for tests and white-box assertions).
    pub fn nf(&self, index: usize) -> Option<&dyn NetworkFunction> {
        self.nfs.get(index).map(|b| b.as_ref())
    }

    /// Chain-level statistics (packets entering/leaving the whole chain).
    pub fn stats(&self) -> NfStats {
        self.stats
    }

    /// Processes a packet through the chain.
    ///
    /// * `Ingress` packets traverse NFs in order `0, 1, 2, ...`.
    /// * `Egress` packets traverse them in reverse.
    ///
    /// The first NF that drops or replies short-circuits the rest of the
    /// chain, exactly as if the packet never reached the later veth pairs.
    pub fn process(&mut self, packet: Packet, direction: Direction, ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());
        let len = self.nfs.len();
        let mut current = packet;
        // Walk indices directly in either direction — no per-packet order
        // vector on the pass-through path.
        for step in 0..len {
            let ix = match direction {
                Direction::Ingress => step,
                Direction::Egress => len - 1 - step,
            };
            match self.nfs[ix].process(current, direction, ctx) {
                Verdict::Forward(next) => current = next,
                verdict @ Verdict::Drop(_) | verdict @ Verdict::Reply(_) => {
                    self.stats.record_verdict(&verdict);
                    return verdict;
                }
            }
        }
        let verdict = Verdict::Forward(current);
        self.stats.record_verdict(&verdict);
        verdict
    }

    /// Processes a batch of packets through the chain, returning one verdict
    /// per packet aligned with the batch order.
    ///
    /// Equivalent to calling [`NfChain::process`] once per packet: because
    /// every NF is a function of only its own state, the packets it is
    /// handed and the (shared, single-timestamp) context, running the whole
    /// batch through NF 1 before NF 2 sees any of it produces the same
    /// verdicts and the same final NF state as interleaving per packet —
    /// each NF still sees exactly the survivors of the previous stage, in
    /// arrival order. Dropped/replied packets short-circuit out of later
    /// stages exactly as in per-packet processing.
    pub fn process_batch(
        &mut self,
        batch: PacketBatch,
        direction: Direction,
        ctx: &NfContext,
    ) -> Vec<Verdict> {
        let total = batch.len();
        self.stats
            .record_in_batch(total as u64, batch.total_bytes());
        let len = self.nfs.len();
        // The bookkeeping buffers persist across batches (their allocations
        // amortize to zero on a steady flush load); only their contents are
        // per-call.
        let mut verdicts = std::mem::take(&mut self.scratch.verdicts);
        verdicts.clear();
        verdicts.resize_with(total, || None);
        // The packets still travelling the chain, with their original batch
        // positions so early drop/reply verdicts land in the right slot.
        let mut alive: Vec<Packet> = batch.into_vec();
        let mut alive_ix = std::mem::take(&mut self.scratch.alive_ix);
        alive_ix.clear();
        alive_ix.extend(0..total);
        let mut next_ix = std::mem::take(&mut self.scratch.next_ix);
        // One retained packet vector seeds the first stage's survivor
        // collection. Each NF consumes the vector it is handed (that is the
        // by-value batch contract), so stages after the first still pay one
        // fresh allocation — only the verdict/index buffers and this first
        // collector amortize across batches.
        let mut spare = std::mem::take(&mut self.scratch.spare);
        spare.clear();
        for step in 0..len {
            if alive.is_empty() {
                break;
            }
            let ix = match direction {
                Direction::Ingress => step,
                Direction::Egress => len - 1 - step,
            };
            spare.reserve(alive_ix.len());
            let results = self.nfs[ix].process_batch(
                PacketBatch::from(std::mem::replace(&mut alive, spare)),
                direction,
                ctx,
            );
            debug_assert_eq!(results.len(), alive_ix.len(), "NF batch must stay aligned");
            next_ix.clear();
            next_ix.reserve(alive_ix.len());
            for (slot, verdict) in alive_ix.iter().copied().zip(results) {
                match verdict {
                    Verdict::Forward(packet) => {
                        alive.push(packet);
                        next_ix.push(slot);
                    }
                    verdict @ Verdict::Drop(_) | verdict @ Verdict::Reply(_) => {
                        self.stats.record_verdict(&verdict);
                        verdicts[slot] = Some(verdict);
                    }
                }
            }
            std::mem::swap(&mut alive_ix, &mut next_ix);
            spare = Vec::new();
        }
        for (slot, packet) in alive_ix.drain(..).zip(alive.drain(..)) {
            let verdict = Verdict::Forward(packet);
            self.stats.record_verdict(&verdict);
            verdicts[slot] = Some(verdict);
        }
        let out = verdicts
            .drain(..)
            .map(|v| v.expect("every batch slot received a verdict"))
            .collect();
        self.scratch.verdicts = verdicts;
        self.scratch.alive_ix = alive_ix;
        self.scratch.next_ix = next_ix;
        self.scratch.spare = alive;
        out
    }

    /// The chain index visited at `step` of a traversal in `direction`
    /// (ingress walks `0, 1, 2, ...`; egress walks in reverse).
    fn traversal_ix(&self, direction: Direction, step: usize) -> usize {
        match direction {
            Direction::Ingress => step,
            Direction::Egress => self.nfs.len() - 1 - step,
        }
    }

    /// The chain's contribution to a megaflow (wildcard) cache entry for the
    /// most recently processed packet (or single-flow batch) travelling in
    /// `direction`.
    ///
    /// Walks the NFs in traversal order asking each what the cache may
    /// assume ([`NetworkFunction::fields_consulted`]):
    ///
    /// * every NF reports [`FieldsConsulted::Pure`] →
    ///   [`ChainBypass::Forward`] with the union mask and one token per NF;
    /// * pure NFs up to one reporting [`FieldsConsulted::PureDrop`] →
    ///   [`ChainBypass::Drop`]: the walk stops at the dropper, because NFs
    ///   behind it never saw the packet (their state is stale and must not
    ///   be consulted) and will not see matching packets either;
    /// * any visited NF is [`FieldsConsulted::Opaque`] → `None` — the chain
    ///   must keep processing every packet, and the switch may cache its own
    ///   decision only.
    ///
    /// An empty chain is trivially forward-bypassable (empty mask, no
    /// tokens).
    pub fn wildcard_report(&self, direction: Direction) -> Option<ChainBypass> {
        let mut mask = FieldMask::EMPTY;
        let mut tokens = Vec::with_capacity(self.nfs.len());
        for step in 0..self.nfs.len() {
            let ix = self.traversal_ix(direction, step);
            match self.nfs[ix].fields_consulted() {
                FieldsConsulted::Pure { mask: m, token } => {
                    mask.insert(m);
                    tokens.push(token);
                }
                FieldsConsulted::PureDrop {
                    mask: m,
                    token,
                    reason,
                } => {
                    mask.insert(m);
                    tokens.push(token);
                    return Some(ChainBypass::Drop {
                        mask,
                        tokens: tokens.into(),
                        reason,
                    });
                }
                FieldsConsulted::Opaque => return None,
            }
        }
        Some(ChainBypass::Forward {
            mask,
            tokens: tokens.into(),
        })
    }

    /// Replays the statistics of `packets` bypassed packets totalling
    /// `bytes` — chain-level counters plus every member NF via its token —
    /// exactly as if each packet had traversed the chain in `direction` and
    /// been forwarded. `tokens` must come from a [`ChainBypass::Forward`]
    /// report of this chain for the same direction.
    pub fn credit_bypass(
        &mut self,
        direction: Direction,
        tokens: &[u64],
        packets: u64,
        bytes: u64,
    ) {
        self.stats.record_in_batch(packets, bytes);
        self.stats.record_bypassed_forward(packets, bytes);
        debug_assert!(tokens.len() <= self.nfs.len(), "one token per NF");
        for (step, token) in tokens.iter().enumerate().take(self.nfs.len()) {
            let ix = self.traversal_ix(direction, step);
            self.nfs[ix].credit_bypass(*token, packets, bytes);
        }
    }

    /// Replays the statistics of `packets` bypassed **dropped** packets
    /// totalling `bytes`, exactly as if each had traversed the chain in
    /// `direction` and been dropped by the last tokened NF: the NFs before
    /// it are credited as having forwarded the packets, the dropper as
    /// having dropped them, and the chain-level counters record the drops.
    /// `tokens` must come from a [`ChainBypass::Drop`] report of this chain
    /// for the same direction.
    pub fn credit_bypass_drop(
        &mut self,
        direction: Direction,
        tokens: &[u64],
        packets: u64,
        bytes: u64,
    ) {
        self.stats.record_in_batch(packets, bytes);
        self.stats.record_bypassed_drop(packets);
        debug_assert!(tokens.len() <= self.nfs.len(), "at most one token per NF");
        let visited = tokens.len().min(self.nfs.len());
        let Some(last_step) = visited.checked_sub(1) else {
            return;
        };
        for (step, token) in tokens.iter().enumerate().take(last_step) {
            let ix = self.traversal_ix(direction, step);
            self.nfs[ix].credit_bypass(*token, packets, bytes);
        }
        let ix = self.traversal_ix(direction, last_step);
        self.nfs[ix].credit_bypass_drop(tokens[last_step], packets, bytes);
    }

    /// Exports every member NF's state, in chain order.
    pub fn export_state(&self) -> Vec<NfStateSnapshot> {
        self.nfs.iter().map(|nf| nf.export_state()).collect()
    }

    /// Imports state previously produced by [`NfChain::export_state`].
    /// Extra or missing entries are ignored (the chain may have been
    /// reconfigured between export and import).
    pub fn import_state(&mut self, states: Vec<NfStateSnapshot>) {
        for (nf, state) in self.nfs.iter_mut().zip(states) {
            nf.import_state(state);
        }
    }

    /// Replaces every member NF's state wholesale with `states` (chain
    /// order), discarding anything accumulated locally. Used when a pre-copy
    /// baseline is (re-)staged on a migration target: unlike
    /// [`NfChain::import_state`] this does not merge with prior contents.
    pub fn replace_state(&mut self, states: Vec<NfStateSnapshot>) {
        for (nf, state) in self.nfs.iter_mut().zip(states) {
            nf.replace_state(state);
        }
    }

    /// Applies one pre-copy delta per NF (chain order) on top of the current
    /// state: each NF's state is exported, patched with
    /// [`NfStateDelta::apply`], and replaced. After this the chain's exported
    /// state is identical to the source's at the moment the deltas were
    /// diffed.
    pub fn apply_state_deltas(&mut self, deltas: Vec<NfStateDelta>) {
        for (nf, delta) in self.nfs.iter_mut().zip(deltas) {
            if matches!(delta, NfStateDelta::Unchanged) {
                continue;
            }
            let base = nf.export_state();
            nf.replace_state(delta.apply(&base));
        }
    }

    /// Total serialized size of the chain's migratable state in bytes.
    pub fn state_size_bytes(&self) -> usize {
        self.export_state()
            .iter()
            .map(|s| s.approximate_size_bytes())
            .sum()
    }

    /// Drains pending events from every NF in the chain.
    pub fn drain_events(&mut self) -> Vec<(String, NfEvent)> {
        let mut out = Vec::new();
        for nf in &mut self.nfs {
            let name = nf.name().to_string();
            for event in nf.drain_events() {
                out.push((name.clone(), event));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::{Firewall, FirewallConfig, FirewallRule};
    use crate::http_filter::{HttpFilter, HttpFilterConfig};
    use crate::rate_limiter::{RateLimiter, RateLimiterConfig};
    use gnf_packet::builder;
    use gnf_types::{MacAddr, SimTime};
    use std::net::Ipv4Addr;

    fn ctx() -> NfContext {
        NfContext::at(SimTime::from_secs(1))
    }

    fn demo_chain() -> NfChain {
        // The demo's chain: firewall (block port 22) then HTTP filter.
        let mut chain = NfChain::new("demo-chain");
        chain.push(Box::new(Firewall::new(
            "fw",
            FirewallConfig::with_rules(vec![FirewallRule::block_tcp_dst_port("no-ssh", 22)]),
        )));
        chain.push(Box::new(HttpFilter::new(
            "hf",
            HttpFilterConfig::block_hosts(&["blocked.example"]),
        )));
        chain
    }

    fn http(host: &str) -> Packet {
        builder::http_get(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(198, 51, 100, 7),
            40_000,
            host,
            "/",
        )
    }

    #[test]
    fn packets_flow_through_all_nfs() {
        let mut chain = demo_chain();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.kinds(), vec![NfKind::Firewall, NfKind::HttpFilter]);
        let verdict = chain.process(http("ok.example"), Direction::Ingress, &ctx());
        assert!(verdict.is_forward());
        let per_nf = chain.per_nf_stats();
        assert_eq!(per_nf[0].2.packets_in, 1);
        assert_eq!(per_nf[1].2.packets_in, 1);
        assert_eq!(chain.stats().packets_forwarded, 1);
    }

    #[test]
    fn early_drop_short_circuits_the_chain() {
        let mut chain = demo_chain();
        let ssh = builder::tcp_syn(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(198, 51, 100, 7),
            40_001,
            22,
        );
        let verdict = chain.process(ssh, Direction::Ingress, &ctx());
        assert!(verdict.is_drop());
        let per_nf = chain.per_nf_stats();
        assert_eq!(per_nf[0].2.packets_dropped, 1);
        assert_eq!(per_nf[1].2.packets_in, 0, "the filter never saw the packet");
    }

    #[test]
    fn reply_from_a_later_nf_is_returned() {
        let mut chain = demo_chain();
        let verdict = chain.process(http("blocked.example"), Direction::Ingress, &ctx());
        assert!(verdict.is_reply());
        assert_eq!(chain.stats().packets_replied, 1);
    }

    #[test]
    fn egress_traverses_in_reverse_order() {
        // Build a chain where only the rate limiter (placed first) would block
        // downstream traffic; confirm the downstream packet hits it even
        // though it is "first" in the chain.
        let mut chain = NfChain::new("rl-chain");
        chain.push(Box::new(RateLimiter::new(
            "rl",
            RateLimiterConfig {
                rate_bytes_per_sec: 1.0,
                burst_bytes: 1.0, // effectively blocks everything
                ..Default::default()
            },
        )));
        chain.push(Box::new(Firewall::new("fw", FirewallConfig::default())));

        let downstream = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            Ipv4Addr::new(198, 51, 100, 7),
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            40_000,
            b"data",
        );
        let verdict = chain.process(downstream, Direction::Egress, &ctx());
        assert!(
            verdict.is_drop(),
            "rate limiter must see egress traffic too"
        );
        // The firewall (last in egress order... first traversed) saw it first.
        let per_nf = chain.per_nf_stats();
        assert_eq!(per_nf[1].2.packets_in, 1);
    }

    #[test]
    fn batch_processing_matches_per_packet_processing() {
        let packets = vec![
            http("ok.example"),
            http("blocked.example"), // reply from the filter
            builder::tcp_syn(
                MacAddr::derived(1, 1),
                MacAddr::derived(2, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(198, 51, 100, 7),
                40_001,
                22,
            ), // dropped by the firewall
            http("ok.example"),
        ];

        let mut per_packet = demo_chain();
        let expected: Vec<Verdict> = packets
            .iter()
            .map(|p| per_packet.process(p.clone(), Direction::Ingress, &ctx()))
            .collect();

        let mut batched = demo_chain();
        let verdicts = batched.process_batch(packets.into(), Direction::Ingress, &ctx());

        assert_eq!(verdicts, expected, "verdicts aligned with inputs");
        assert_eq!(batched.stats(), per_packet.stats());
        let a = batched.per_nf_stats();
        let b = per_packet.per_nf_stats();
        assert_eq!(a, b, "per-NF statistics identical");
        // The firewall-dropped SYN never reached the filter in either mode.
        assert_eq!(a[1].2.packets_in, 3);
        assert_eq!(a[0].2.packets_in, 4);
    }

    #[test]
    fn empty_batch_produces_no_verdicts() {
        let mut chain = demo_chain();
        let verdicts =
            chain.process_batch(gnf_packet::PacketBatch::new(), Direction::Ingress, &ctx());
        assert!(verdicts.is_empty());
        assert_eq!(chain.stats().packets_in, 0);
    }

    #[test]
    fn empty_chain_forwards_everything() {
        let mut chain = NfChain::new("empty");
        assert!(chain.is_empty());
        let verdict = chain.process(http("anything.example"), Direction::Ingress, &ctx());
        assert!(verdict.is_forward());
    }

    #[test]
    fn chain_state_export_import_is_positional() {
        let mut chain = demo_chain();
        // Establish a connection through the firewall.
        chain.process(http("ok.example"), Direction::Ingress, &ctx());
        let states = chain.export_state();
        assert_eq!(states.len(), 2);
        assert!(states[0].approximate_size_bytes() > 0, "conntrack state");

        let mut fresh = demo_chain();
        fresh.import_state(states);
        assert!(fresh.state_size_bytes() > 0);

        // Importing a shorter state vector must not panic.
        let mut partial = demo_chain();
        partial.import_state(vec![NfStateSnapshot::Stateless]);
    }

    #[test]
    fn wildcard_report_requires_every_nf_to_be_pure() {
        use crate::firewall::{CidrV4, PortMatch, ProtocolMatch, RuleAction};
        use gnf_packet::FieldMask;
        use std::net::Ipv4Addr;

        let untracked = |name: &str, rules: Vec<FirewallRule>| {
            Box::new(Firewall::new(
                name,
                FirewallConfig {
                    rules,
                    default_action: RuleAction::Accept,
                    track_connections: false,
                    conntrack_idle_timeout_secs: 60,
                },
            ))
        };
        let port_rule = FirewallRule {
            protocol: ProtocolMatch::Tcp,
            dst_port: PortMatch::Range(10_000, 10_100),
            action: RuleAction::Drop,
            ..FirewallRule::any("range", RuleAction::Drop)
        };
        let ip_rule =
            FirewallRule::block_dst("cidr", CidrV4::new(Ipv4Addr::new(192, 168, 0, 0), 16));

        let mut chain = NfChain::new("pure-chain");
        chain.push(untracked("fw-ports", vec![port_rule]));
        chain.push(untracked("fw-ips", vec![ip_rule]));
        let pkt = http("ok.example");
        let len = pkt.len() as u64;
        assert!(chain.process(pkt, Direction::Ingress, &ctx()).is_forward());

        let Some(ChainBypass::Forward { mask, tokens }) = chain.wildcard_report(Direction::Ingress)
        else {
            panic!("all NFs pure");
        };
        // The union of both firewalls' consulted fields.
        assert!(mask.contains(FieldMask::PROTOCOL));
        assert!(mask.contains(FieldMask::DST_PORT));
        assert!(mask.contains(FieldMask::DST_IP));
        assert_eq!(tokens.len(), 2);

        // Crediting replays chain and per-NF statistics exactly.
        let mut reference = NfChain::new("pure-chain");
        reference.push(untracked(
            "fw-ports",
            vec![FirewallRule {
                protocol: ProtocolMatch::Tcp,
                dst_port: PortMatch::Range(10_000, 10_100),
                action: RuleAction::Drop,
                ..FirewallRule::any("range", RuleAction::Drop)
            }],
        ));
        reference.push(untracked(
            "fw-ips",
            vec![FirewallRule::block_dst(
                "cidr",
                CidrV4::new(Ipv4Addr::new(192, 168, 0, 0), 16),
            )],
        ));
        for _ in 0..4 {
            reference.process(http("ok.example"), Direction::Ingress, &ctx());
        }
        chain.credit_bypass(Direction::Ingress, &tokens, 3, 3 * len);
        assert_eq!(chain.stats(), reference.stats());
        assert_eq!(chain.per_nf_stats(), reference.per_nf_stats());

        // One opaque NF (default trait impl — the HTTP filter reads the
        // payload) makes the whole chain unreportable.
        let mut opaque = demo_chain();
        opaque.process(http("ok.example"), Direction::Ingress, &ctx());
        assert!(opaque.wildcard_report(Direction::Ingress).is_none());

        // An empty chain is trivially bypassable.
        let empty = NfChain::new("empty");
        let Some(ChainBypass::Forward { mask, tokens }) = empty.wildcard_report(Direction::Ingress)
        else {
            panic!("empty chain is pure");
        };
        assert!(mask.is_empty());
        assert!(tokens.is_empty());
    }

    #[test]
    fn wildcard_drop_report_stops_at_the_dropping_nf() {
        use crate::firewall::{PortMatch, ProtocolMatch, RuleAction};
        use crate::ids::{Ids, IdsConfig};
        use gnf_packet::FieldMask;

        let untracked = |name: &str, rules: Vec<FirewallRule>| {
            Box::new(Firewall::new(
                name,
                FirewallConfig {
                    rules,
                    default_action: RuleAction::Accept,
                    track_connections: false,
                    conntrack_idle_timeout_secs: 60,
                },
            ))
        };
        let deny_privileged = FirewallRule {
            protocol: ProtocolMatch::Tcp,
            dst_port: PortMatch::Range(1, 1023),
            action: RuleAction::Drop,
            ..FirewallRule::any("privileged", RuleAction::Drop)
        };
        // Pure pass-through firewall, then the denying firewall, then an
        // opaque IDS. The IDS never sees the dropped packet, so the chain is
        // still drop-bypassable despite the opaque tail.
        let build = || {
            let mut chain = NfChain::new("drop-chain");
            chain.push(untracked("fw-pass", vec![]));
            chain.push(untracked("fw-deny", vec![deny_privileged.clone()]));
            chain.push(Box::new(Ids::new("ids", IdsConfig::default())));
            chain
        };
        let ssh = builder::tcp_syn(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(198, 51, 100, 7),
            40_001,
            22,
        );
        let len = ssh.len() as u64;
        let mut chain = build();
        let verdict = chain.process(ssh.clone(), Direction::Ingress, &ctx());
        let Verdict::Drop(dropped_reason) = &verdict else {
            panic!("expected a drop");
        };

        let Some(ChainBypass::Drop {
            mask,
            tokens,
            reason,
        }) = chain.wildcard_report(Direction::Ingress)
        else {
            panic!("drop at the second NF must be certifiable");
        };
        assert_eq!(tokens.len(), 2, "tokens cover exactly the visited NFs");
        assert_eq!(&reason, dropped_reason);
        assert!(mask.contains(FieldMask::PROTOCOL));
        assert!(mask.contains(FieldMask::DST_PORT));

        // Crediting replays chain-level and per-NF statistics exactly.
        let mut reference = build();
        for _ in 0..4 {
            reference.process(ssh.clone(), Direction::Ingress, &ctx());
        }
        chain.credit_bypass_drop(Direction::Ingress, &tokens, 3, 3 * len);
        assert_eq!(chain.stats(), reference.stats());
        assert_eq!(chain.per_nf_stats(), reference.per_nf_stats());

        // Egress traverses the chain in reverse: the opaque IDS is visited
        // first, so no egress drop entry may be certified.
        let mut egress = build();
        let back = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            Ipv4Addr::new(198, 51, 100, 7),
            Ipv4Addr::new(10, 0, 0, 2),
            80,
            22,
            b"x",
        );
        assert!(egress.process(back, Direction::Egress, &ctx()).is_drop());
        assert!(egress.wildcard_report(Direction::Egress).is_none());
    }

    #[test]
    fn egress_wildcard_reports_and_credits_in_traversal_order() {
        use crate::firewall::{PortMatch, ProtocolMatch, RuleAction};

        let untracked = |name: &str, rules: Vec<FirewallRule>| {
            Box::new(Firewall::new(
                name,
                FirewallConfig {
                    rules,
                    default_action: RuleAction::Accept,
                    track_connections: false,
                    conntrack_idle_timeout_secs: 60,
                },
            ))
        };
        // Chain [deny-fw, pass-fw]: on egress the pass firewall is visited
        // first and the deny firewall drops second, so the drop tokens are
        // [pass-token, deny-token] in traversal order.
        let deny_privileged = FirewallRule {
            protocol: ProtocolMatch::Tcp,
            dst_port: PortMatch::Range(1, 1023),
            action: RuleAction::Drop,
            ..FirewallRule::any("privileged", RuleAction::Drop)
        };
        let build = || {
            let mut chain = NfChain::new("egress-chain");
            chain.push(untracked("fw-deny", vec![deny_privileged.clone()]));
            chain.push(untracked("fw-pass", vec![]));
            chain
        };
        let down = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            Ipv4Addr::new(198, 51, 100, 7),
            Ipv4Addr::new(10, 0, 0, 2),
            40_000,
            443,
            b"down",
        );
        let len = down.len() as u64;
        let mut chain = build();
        assert!(chain
            .process(down.clone(), Direction::Egress, &ctx())
            .is_drop());
        let Some(ChainBypass::Drop { tokens, .. }) = chain.wildcard_report(Direction::Egress)
        else {
            panic!("egress drop at the chain-order-first NF is certifiable");
        };
        assert_eq!(tokens.len(), 2);

        let mut reference = build();
        for _ in 0..3 {
            reference.process(down.clone(), Direction::Egress, &ctx());
        }
        chain.credit_bypass_drop(Direction::Egress, &tokens, 2, 2 * len);
        assert_eq!(chain.stats(), reference.stats());
        assert_eq!(
            chain.per_nf_stats(),
            reference.per_nf_stats(),
            "tokens land on the right NFs in egress traversal order"
        );
    }

    #[test]
    fn chain_events_are_labelled_with_the_nf_name() {
        let mut chain = demo_chain();
        chain.process(http("blocked.example"), Direction::Ingress, &ctx());
        let events = chain.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "hf");
        assert_eq!(events[0].1.category, "blocked-url");
        assert!(chain.drain_events().is_empty());
    }
}
