//! A source-NAT (masquerading) NF.
//!
//! On the client's upstream traffic the NAT rewrites the source address to a
//! configured public address and allocates an ephemeral source port per flow;
//! on downstream traffic it reverses the translation. The translation table is
//! part of the migratable state so established flows survive a roam.

use crate::nf::{Direction, NetworkFunction, NfContext, NfStats, Verdict};
use crate::spec::NfKind;
use crate::state::NfStateSnapshot;
use bytes::BytesMut;
use gnf_packet::ethernet::EthernetHeader;
use gnf_packet::ipv4::Ipv4Header;
use gnf_packet::{FiveTuple, IpProtocol, Packet, TcpHeader, UdpHeader};

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The first ephemeral port the NAT allocates.
pub const NAT_PORT_BASE: u16 = 40_000;

/// The source-NAT NF.
pub struct Nat {
    name: String,
    public_ip: Ipv4Addr,
    /// Original (client-side) tuple → allocated public port.
    forward: HashMap<FiveTuple, u16>,
    /// Allocated public port → original tuple.
    reverse: HashMap<u16, FiveTuple>,
    next_port: u16,
    translated_packets: u64,
    stats: NfStats,
}

impl Nat {
    /// Creates a NAT masquerading behind `public_ip`.
    pub fn new(name: &str, public_ip: Ipv4Addr) -> Self {
        Nat {
            name: name.to_string(),
            public_ip,
            forward: HashMap::new(),
            reverse: HashMap::new(),
            next_port: NAT_PORT_BASE,
            translated_packets: 0,
            stats: NfStats::default(),
        }
    }

    /// The public address used for translated flows.
    pub fn public_ip(&self) -> Ipv4Addr {
        self.public_ip
    }

    /// Number of active translations.
    pub fn active_translations(&self) -> usize {
        self.forward.len()
    }

    /// Total packets whose headers were rewritten.
    pub fn translated_packets(&self) -> u64 {
        self.translated_packets
    }

    fn allocate_port(&mut self, original: FiveTuple) -> u16 {
        if let Some(port) = self.forward.get(&original) {
            return *port;
        }
        // Skip ports that are still in use (wrap around the ephemeral range).
        let mut candidate = self.next_port;
        loop {
            if !self.reverse.contains_key(&candidate) {
                break;
            }
            candidate = if candidate == u16::MAX {
                NAT_PORT_BASE
            } else {
                candidate + 1
            };
        }
        self.next_port = if candidate == u16::MAX {
            NAT_PORT_BASE
        } else {
            candidate + 1
        };
        self.forward.insert(original, candidate);
        self.reverse.insert(candidate, original);
        candidate
    }

    /// Rebuilds a packet with rewritten IPv4 addresses and transport ports,
    /// preserving every other header field and the payload.
    fn rewrite(
        packet: &Packet,
        new_src: Ipv4Addr,
        new_dst: Ipv4Addr,
        new_src_port: u16,
        new_dst_port: u16,
    ) -> Option<Packet> {
        let ip = packet.ipv4()?;
        let eth = packet.ethernet();

        let mut new_ip = ip.clone();
        new_ip.src = new_src;
        new_ip.dst = new_dst;

        let mut l4 = BytesMut::new();
        match ip.protocol {
            IpProtocol::Tcp => {
                let tcp = packet.tcp()?;
                let payload = packet.tcp_payload().unwrap_or(&[]);
                let mut new_tcp: TcpHeader = tcp.clone();
                new_tcp.src_port = new_src_port;
                new_tcp.dst_port = new_dst_port;
                new_tcp.emit(&mut l4, new_src, new_dst, payload);
            }
            IpProtocol::Udp => {
                let udp = packet.udp()?;
                let payload = packet.udp_payload().unwrap_or(&[]);
                let new_udp = UdpHeader::new(new_src_port, new_dst_port, payload.len());
                let _ = udp; // lengths are recomputed from the payload
                new_udp.emit(&mut l4, new_src, new_dst, payload);
            }
            _ => return None,
        }

        let new_eth = EthernetHeader {
            dst: eth.dst,
            src: eth.src,
            ethertype: eth.ethertype,
        };
        let mut frame = BytesMut::with_capacity(14 + 20 + l4.len());
        new_eth.emit(&mut frame);
        let ip_out = Ipv4Header {
            options: Vec::new(),
            ..new_ip
        };
        ip_out.emit(&mut frame, l4.len());
        frame.extend_from_slice(&l4);
        Packet::parse(frame.freeze()).ok()
    }
}

impl NetworkFunction for Nat {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> NfKind {
        NfKind::Nat
    }

    fn process(&mut self, packet: Packet, direction: Direction, _ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());
        let Some(tuple) = packet.five_tuple() else {
            let verdict = Verdict::Forward(packet);
            self.stats.record_verdict(&verdict);
            return verdict;
        };
        // Only TCP/UDP flows are translated; ICMP and others pass through.
        if !matches!(tuple.protocol, IpProtocol::Tcp | IpProtocol::Udp) {
            let verdict = Verdict::Forward(packet);
            self.stats.record_verdict(&verdict);
            return verdict;
        }

        let verdict = match direction {
            Direction::Ingress => {
                let public_port = self.allocate_port(tuple);
                match Self::rewrite(
                    &packet,
                    self.public_ip,
                    tuple.dst_ip,
                    public_port,
                    tuple.dst_port,
                ) {
                    Some(rewritten) => {
                        self.translated_packets += 1;
                        Verdict::Forward(rewritten)
                    }
                    None => Verdict::Forward(packet),
                }
            }
            Direction::Egress => {
                // Downstream: the packet is addressed to (public_ip, public_port).
                if tuple.dst_ip == self.public_ip {
                    if let Some(original) = self.reverse.get(&tuple.dst_port).copied() {
                        match Self::rewrite(
                            &packet,
                            tuple.src_ip,
                            original.src_ip,
                            tuple.src_port,
                            original.src_port,
                        ) {
                            Some(rewritten) => {
                                self.translated_packets += 1;
                                Verdict::Forward(rewritten)
                            }
                            None => Verdict::Forward(packet),
                        }
                    } else {
                        Verdict::Drop(
                            format!("no NAT translation for public port {}", tuple.dst_port).into(),
                        )
                    }
                } else {
                    Verdict::Forward(packet)
                }
            }
        };
        self.stats.record_verdict(&verdict);
        verdict
    }

    fn stats(&self) -> NfStats {
        self.stats
    }

    fn export_state(&self) -> NfStateSnapshot {
        let mut mappings: Vec<(FiveTuple, u16)> =
            self.forward.iter().map(|(k, v)| (*k, *v)).collect();
        mappings.sort_by_key(|(_, port)| *port);
        NfStateSnapshot::Nat {
            mappings,
            next_port: self.next_port,
        }
    }

    fn import_state(&mut self, state: NfStateSnapshot) {
        if let NfStateSnapshot::Nat {
            mappings,
            next_port,
        } = state
        {
            for (tuple, port) in mappings {
                self.forward.insert(tuple, port);
                self.reverse.insert(port, tuple);
            }
            self.next_port = next_port;
        }
    }

    fn replace_state(&mut self, state: NfStateSnapshot) {
        if matches!(state, NfStateSnapshot::Nat { .. }) {
            self.forward.clear();
            self.reverse.clear();
        }
        self.import_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_packet::builder;
    use gnf_types::{MacAddr, SimTime};

    fn public_ip() -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, 1)
    }
    fn client_ip() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }
    fn server_ip() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 10)
    }
    fn ctx() -> NfContext {
        NfContext::at(SimTime::from_secs(1))
    }

    fn upstream_tcp(src_port: u16, payload: &[u8]) -> Packet {
        builder::tcp_data(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            server_ip(),
            src_port,
            80,
            payload,
        )
    }

    #[test]
    fn upstream_traffic_is_masqueraded() {
        let mut nat = Nat::new("nat", public_ip());
        let verdict = nat.process(upstream_tcp(50_000, b"hello"), Direction::Ingress, &ctx());
        let Verdict::Forward(out) = verdict else {
            panic!("expected forward")
        };
        let ip = out.ipv4().unwrap();
        assert_eq!(ip.src, public_ip());
        assert_eq!(ip.dst, server_ip());
        let tcp = out.tcp().unwrap();
        assert_eq!(tcp.src_port, NAT_PORT_BASE);
        assert_eq!(tcp.dst_port, 80);
        // Payload survives the rewrite.
        assert_eq!(out.tcp_payload().unwrap(), b"hello");
        assert_eq!(nat.active_translations(), 1);
    }

    #[test]
    fn downstream_traffic_is_restored_to_the_client() {
        let mut nat = Nat::new("nat", public_ip());
        nat.process(upstream_tcp(50_000, b"req"), Direction::Ingress, &ctx());

        // The server replies to the public endpoint.
        let reply = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            public_ip(),
            80,
            NAT_PORT_BASE,
            b"resp",
        );
        let verdict = nat.process(reply, Direction::Egress, &ctx());
        let Verdict::Forward(out) = verdict else {
            panic!("expected forward")
        };
        assert_eq!(out.ipv4().unwrap().dst, client_ip());
        assert_eq!(out.tcp().unwrap().dst_port, 50_000);
        assert_eq!(out.tcp_payload().unwrap(), b"resp");
    }

    #[test]
    fn each_flow_gets_a_distinct_public_port() {
        let mut nat = Nat::new("nat", public_ip());
        let a = nat
            .process(upstream_tcp(50_000, b""), Direction::Ingress, &ctx())
            .into_forwarded()
            .unwrap();
        let b = nat
            .process(upstream_tcp(50_001, b""), Direction::Ingress, &ctx())
            .into_forwarded()
            .unwrap();
        assert_ne!(a.tcp().unwrap().src_port, b.tcp().unwrap().src_port);
        assert_eq!(nat.active_translations(), 2);
        // Re-sending on the first flow reuses its port.
        let again = nat
            .process(upstream_tcp(50_000, b""), Direction::Ingress, &ctx())
            .into_forwarded()
            .unwrap();
        assert_eq!(again.tcp().unwrap().src_port, a.tcp().unwrap().src_port);
        assert_eq!(nat.active_translations(), 2);
    }

    #[test]
    fn unknown_downstream_ports_are_dropped() {
        let mut nat = Nat::new("nat", public_ip());
        let stray = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            public_ip(),
            80,
            45_555,
            b"stray",
        );
        assert!(nat.process(stray, Direction::Egress, &ctx()).is_drop());
    }

    #[test]
    fn udp_flows_are_translated_too() {
        let mut nat = Nat::new("nat", public_ip());
        let dns = builder::dns_query(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            Ipv4Addr::new(8, 8, 8, 8),
            5353,
            7,
            "example.com",
        );
        let out = nat
            .process(dns, Direction::Ingress, &ctx())
            .into_forwarded()
            .unwrap();
        assert_eq!(out.ipv4().unwrap().src, public_ip());
        assert_eq!(out.udp().unwrap().src_port, NAT_PORT_BASE);
        // The DNS payload still parses after the rewrite.
        assert_eq!(
            out.dns().unwrap().first_question_name(),
            Some("example.com")
        );
    }

    #[test]
    fn icmp_and_non_ip_traffic_pass_through_unchanged() {
        let mut nat = Nat::new("nat", public_ip());
        let ping = builder::icmp_echo_request(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            server_ip(),
            1,
            1,
        );
        let out = nat
            .process(ping.clone(), Direction::Ingress, &ctx())
            .into_forwarded()
            .unwrap();
        assert_eq!(out, ping);
        let arp = builder::arp_request(MacAddr::derived(1, 1), client_ip(), server_ip());
        assert!(nat.process(arp, Direction::Ingress, &ctx()).is_forward());
        assert_eq!(nat.translated_packets(), 0);
    }

    #[test]
    fn translation_table_migrates() {
        let mut nat1 = Nat::new("nat", public_ip());
        nat1.process(upstream_tcp(50_000, b"x"), Direction::Ingress, &ctx());
        let snapshot = nat1.export_state();

        let mut nat2 = Nat::new("nat", public_ip());
        nat2.import_state(snapshot);
        // The reply arrives at the *new* station and is still translated back.
        let reply = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            public_ip(),
            80,
            NAT_PORT_BASE,
            b"resp",
        );
        let out = nat2
            .process(reply, Direction::Egress, &ctx())
            .into_forwarded()
            .unwrap();
        assert_eq!(out.ipv4().unwrap().dst, client_ip());
        // And new flows on the target continue the port sequence.
        let fresh = nat2
            .process(upstream_tcp(50_009, b""), Direction::Ingress, &ctx())
            .into_forwarded()
            .unwrap();
        assert_eq!(fresh.tcp().unwrap().src_port, NAT_PORT_BASE + 1);
    }
}
