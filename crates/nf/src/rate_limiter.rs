//! The token-bucket rate-limiter NF — one of the edge services the paper's
//! introduction motivates alongside firewalls and caches.
//!
//! The limiter polices the client's traffic against a configured rate and
//! burst, either per client (one bucket for everything) or per flow. The
//! bucket levels are part of the migratable state, so a roaming client cannot
//! escape its limit by hopping between cells.

use crate::nf::{Direction, NetworkFunction, NfContext, NfEvent, NfStats, Verdict};
use crate::spec::NfKind;
use crate::state::NfStateSnapshot;
use gnf_packet::{FiveTuple, Packet, PacketBatch};
use gnf_types::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bucket granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimiterScope {
    /// One bucket shared by all of the client's traffic.
    PerClient,
    /// One bucket per transport flow.
    PerFlow,
}

/// Rate limiter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimiterConfig {
    /// Sustained rate in bytes per second.
    pub rate_bytes_per_sec: f64,
    /// Burst capacity in bytes.
    pub burst_bytes: f64,
    /// Bucket granularity.
    pub scope: LimiterScope,
    /// Which directions are policed.
    pub police_ingress: bool,
    /// Whether downstream traffic is policed too.
    pub police_egress: bool,
}

impl Default for RateLimiterConfig {
    fn default() -> Self {
        RateLimiterConfig {
            rate_bytes_per_sec: 1_250_000.0, // 10 Mbit/s
            burst_bytes: 64_000.0,
            scope: LimiterScope::PerClient,
            police_ingress: true,
            police_egress: true,
        }
    }
}

impl RateLimiterConfig {
    /// A per-client limiter with the given rate (bytes/s) and burst (bytes).
    pub fn per_client(rate_bytes_per_sec: f64, burst_bytes: f64) -> Self {
        RateLimiterConfig {
            rate_bytes_per_sec,
            burst_bytes,
            ..Default::default()
        }
    }
}

/// The shared "all traffic" bucket key used in [`LimiterScope::PerClient`]
/// mode.
fn client_bucket_key() -> FiveTuple {
    FiveTuple::new(
        std::net::Ipv4Addr::UNSPECIFIED,
        std::net::Ipv4Addr::UNSPECIFIED,
        gnf_packet::IpProtocol::Other(255),
        0,
        0,
    )
}

/// The token-bucket rate-limiter NF.
pub struct RateLimiter {
    name: String,
    config: RateLimiterConfig,
    buckets: HashMap<FiveTuple, f64>,
    last_refill: SimTime,
    dropped_bytes: u64,
    conforming_bytes: u64,
    stats: NfStats,
    events: Vec<NfEvent>,
    limit_engaged: bool,
}

impl RateLimiter {
    /// Creates a rate limiter from its configuration.
    pub fn new(name: &str, config: RateLimiterConfig) -> Self {
        RateLimiter {
            name: name.to_string(),
            config,
            buckets: HashMap::new(),
            last_refill: SimTime::ZERO,
            dropped_bytes: 0,
            conforming_bytes: 0,
            stats: NfStats::default(),
            events: Vec::new(),
            limit_engaged: false,
        }
    }

    /// Bytes dropped because the limit was exceeded.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Bytes that conformed to the limit.
    pub fn conforming_bytes(&self) -> u64 {
        self.conforming_bytes
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        if elapsed > 0.0 {
            let add = elapsed * self.config.rate_bytes_per_sec;
            for level in self.buckets.values_mut() {
                *level = (*level + add).min(self.config.burst_bytes);
            }
            self.last_refill = now;
        }
    }

    fn bucket_key(&self, packet: &Packet) -> FiveTuple {
        match self.config.scope {
            LimiterScope::PerClient => client_bucket_key(),
            LimiterScope::PerFlow => packet
                .five_tuple()
                .map(|t| t.canonical())
                .unwrap_or_else(client_bucket_key),
        }
    }

    fn policed(&self, direction: Direction) -> bool {
        match direction {
            Direction::Ingress => self.config.police_ingress,
            Direction::Egress => self.config.police_egress,
        }
    }
}

impl NetworkFunction for RateLimiter {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> NfKind {
        NfKind::RateLimiter
    }

    fn process(&mut self, packet: Packet, direction: Direction, ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());
        if !self.policed(direction) {
            let verdict = Verdict::Forward(packet);
            self.stats.record_verdict(&verdict);
            return verdict;
        }

        self.refill(ctx.now);
        let key = self.bucket_key(&packet);
        let burst = self.config.burst_bytes;
        let level = self.buckets.entry(key).or_insert(burst);
        let cost = packet.len() as f64;

        let verdict = if *level >= cost {
            *level -= cost;
            self.conforming_bytes += packet.len() as u64;
            self.limit_engaged = false;
            Verdict::Forward(packet)
        } else {
            self.dropped_bytes += packet.len() as u64;
            if !self.limit_engaged {
                self.limit_engaged = true;
                self.events.push(NfEvent::warning(
                    "rate-limit",
                    format!("client exceeded {} B/s", self.config.rate_bytes_per_sec),
                ));
            }
            Verdict::Drop("rate limit exceeded".into())
        };
        self.stats.record_verdict(&verdict);
        verdict
    }

    fn process_batch(
        &mut self,
        batch: PacketBatch,
        direction: Direction,
        ctx: &NfContext,
    ) -> Vec<Verdict> {
        if !self.policed(direction) {
            let mut out = Vec::with_capacity(batch.len());
            for packet in batch {
                self.stats.record_in(packet.len());
                let verdict = Verdict::Forward(packet);
                self.stats.record_verdict(&verdict);
                out.push(verdict);
            }
            return out;
        }
        // One token refill per batch: every packet shares the batch
        // timestamp, so the per-packet path's later refills are no-ops.
        self.refill(ctx.now);
        let mut out = Vec::with_capacity(batch.len());
        // The active bucket is kept in a local and written back on key
        // change, so a run of same-bucket packets (all of them, in
        // per-client scope) costs one map probe instead of one per packet.
        let mut cached: Option<(FiveTuple, f64)> = None;
        for packet in batch {
            self.stats.record_in(packet.len());
            let key = self.bucket_key(&packet);
            match &cached {
                Some((cached_key, _)) if *cached_key == key => {}
                _ => {
                    if let Some((stale_key, level)) = cached.take() {
                        self.buckets.insert(stale_key, level);
                    }
                    let level = *self.buckets.entry(key).or_insert(self.config.burst_bytes);
                    cached = Some((key, level));
                }
            }
            let level = &mut cached.as_mut().expect("bucket cached above").1;
            let cost = packet.len() as f64;
            let verdict = if *level >= cost {
                *level -= cost;
                self.conforming_bytes += packet.len() as u64;
                self.limit_engaged = false;
                Verdict::Forward(packet)
            } else {
                self.dropped_bytes += packet.len() as u64;
                if !self.limit_engaged {
                    self.limit_engaged = true;
                    self.events.push(NfEvent::warning(
                        "rate-limit",
                        format!("client exceeded {} B/s", self.config.rate_bytes_per_sec),
                    ));
                }
                Verdict::Drop("rate limit exceeded".into())
            };
            self.stats.record_verdict(&verdict);
            out.push(verdict);
        }
        if let Some((key, level)) = cached.take() {
            self.buckets.insert(key, level);
        }
        out
    }

    fn stats(&self) -> NfStats {
        self.stats
    }

    fn fields_consulted(&self) -> crate::nf::FieldsConsulted {
        // Deliberately opaque, always: every packet consumes tokens, so even
        // a forwarded packet's processing changes the state later verdicts
        // depend on — a wildcard bypass would let traffic through without
        // debiting the bucket.
        crate::nf::FieldsConsulted::Opaque
    }

    fn export_state(&self) -> NfStateSnapshot {
        let mut buckets: Vec<(FiveTuple, f64)> =
            self.buckets.iter().map(|(k, v)| (*k, *v)).collect();
        buckets.sort_by_key(|(tuple, _)| *tuple);
        NfStateSnapshot::RateLimiter {
            buckets,
            last_refill_nanos: self.last_refill.as_nanos(),
        }
    }

    fn import_state(&mut self, state: NfStateSnapshot) {
        if let NfStateSnapshot::RateLimiter {
            buckets,
            last_refill_nanos,
        } = state
        {
            for (key, level) in buckets {
                self.buckets.insert(key, level);
            }
            self.last_refill = SimTime::from_nanos(last_refill_nanos);
        }
    }

    fn replace_state(&mut self, state: NfStateSnapshot) {
        if matches!(state, NfStateSnapshot::RateLimiter { .. }) {
            self.buckets.clear();
        }
        self.import_state(state);
    }

    fn drain_events(&mut self) -> Vec<NfEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_packet::builder;
    use gnf_types::MacAddr;
    use std::net::Ipv4Addr;

    fn packet_of_size(payload: usize) -> Packet {
        builder::udp_packet(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(192, 0, 2, 9),
            4000,
            5000,
            &vec![0u8; payload],
        )
    }

    #[test]
    fn traffic_within_burst_is_forwarded() {
        let mut rl = RateLimiter::new("rl", RateLimiterConfig::per_client(10_000.0, 5_000.0));
        let ctx = NfContext::at(SimTime::from_secs(1));
        for _ in 0..4 {
            let v = rl.process(packet_of_size(1000), Direction::Ingress, &ctx);
            assert!(v.is_forward());
        }
        assert_eq!(rl.dropped_bytes(), 0);
    }

    #[test]
    fn traffic_beyond_burst_is_dropped_until_tokens_refill() {
        let mut rl = RateLimiter::new("rl", RateLimiterConfig::per_client(1_000.0, 2_000.0));
        let t1 = NfContext::at(SimTime::from_secs(1));
        // Exhaust the burst.
        let mut forwarded = 0;
        let mut dropped = 0;
        for _ in 0..5 {
            match rl.process(packet_of_size(1000), Direction::Ingress, &t1) {
                Verdict::Forward(_) => forwarded += 1,
                Verdict::Drop(_) => dropped += 1,
                Verdict::Reply(_) => unreachable!(),
            }
        }
        assert!(forwarded <= 2, "burst is 2000 B, ~1042 B packets");
        assert!(dropped >= 3);

        // After 10 seconds at 1000 B/s the bucket has refilled to its burst.
        let t2 = NfContext::at(SimTime::from_secs(11));
        assert!(rl
            .process(packet_of_size(1000), Direction::Ingress, &t2)
            .is_forward());

        // The warning event is emitted once per engagement.
        let events = rl.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].category, "rate-limit");
    }

    #[test]
    fn per_flow_scope_gives_each_flow_its_own_bucket() {
        let config = RateLimiterConfig {
            rate_bytes_per_sec: 1_000.0,
            burst_bytes: 1_500.0,
            scope: LimiterScope::PerFlow,
            police_ingress: true,
            police_egress: true,
        };
        let mut rl = RateLimiter::new("rl", config);
        let ctx = NfContext::at(SimTime::from_secs(1));
        let flow_a = builder::udp_packet(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(192, 0, 2, 9),
            4000,
            5000,
            &vec![0u8; 1000],
        );
        let flow_b = builder::udp_packet(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(192, 0, 2, 9),
            4001,
            5000,
            &vec![0u8; 1000],
        );
        assert!(rl
            .process(flow_a.clone(), Direction::Ingress, &ctx)
            .is_forward());
        // Flow A's bucket is now nearly empty, but flow B gets its own bucket.
        assert!(rl.process(flow_a, Direction::Ingress, &ctx).is_drop());
        assert!(rl.process(flow_b, Direction::Ingress, &ctx).is_forward());
    }

    #[test]
    fn unpoliced_direction_passes_freely() {
        let config = RateLimiterConfig {
            police_egress: false,
            burst_bytes: 100.0,
            ..RateLimiterConfig::default()
        };
        let mut rl = RateLimiter::new("rl", config);
        let ctx = NfContext::at(SimTime::from_secs(1));
        for _ in 0..10 {
            assert!(rl
                .process(packet_of_size(1400), Direction::Egress, &ctx)
                .is_forward());
        }
    }

    #[test]
    fn bucket_state_migrates_with_the_client() {
        let mut rl1 = RateLimiter::new("rl", RateLimiterConfig::per_client(1_000.0, 2_000.0));
        let ctx = NfContext::at(SimTime::from_secs(1));
        // Drain the bucket on station 1.
        while rl1
            .process(packet_of_size(1000), Direction::Ingress, &ctx)
            .is_forward()
        {}
        let snapshot = rl1.export_state();

        // On station 2, without imported state the client would get a fresh
        // burst; with the snapshot the limit carries over.
        let mut rl2 = RateLimiter::new("rl", RateLimiterConfig::per_client(1_000.0, 2_000.0));
        rl2.import_state(snapshot);
        assert!(rl2
            .process(packet_of_size(1000), Direction::Ingress, &ctx)
            .is_drop());
    }

    #[test]
    fn long_idle_periods_cap_the_bucket_at_burst() {
        let mut rl = RateLimiter::new("rl", RateLimiterConfig::per_client(1_000_000.0, 3_000.0));
        let t0 = NfContext::at(SimTime::from_secs(1));
        rl.process(packet_of_size(100), Direction::Ingress, &t0);
        // A very long idle period must not accumulate unbounded tokens.
        let t1 = NfContext::at(SimTime::from_secs(3_600));
        let mut forwarded = 0;
        while rl
            .process(packet_of_size(1000), Direction::Ingress, &t1)
            .is_forward()
        {
            forwarded += 1;
            assert!(forwarded < 10, "bucket should cap at burst");
        }
        assert!(forwarded <= 3);
    }
}
