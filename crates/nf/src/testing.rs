//! Shared fixtures for tests, benchmarks and examples: representative specs
//! for every NF kind and ready-made packet sets.

use crate::dns_lb::LbStrategy;
use crate::firewall::{FirewallConfig, FirewallRule};
use crate::http_filter::HttpFilterConfig;
use crate::ids::IdsConfig;
use crate::rate_limiter::RateLimiterConfig;
use crate::spec::{NfConfig, NfSpec};
use gnf_packet::{builder, Packet};
use gnf_types::MacAddr;
use std::net::Ipv4Addr;

/// A representative spec for every NF kind, in [`crate::spec::NfKind::all`]
/// order.
pub fn sample_specs() -> Vec<NfSpec> {
    vec![
        NfSpec::new(
            "firewall-0",
            NfConfig::Firewall(FirewallConfig::with_rules(vec![
                FirewallRule::block_tcp_dst_port("no-ssh", 22),
                FirewallRule::block_tcp_dst_port("no-telnet", 23),
            ])),
        ),
        NfSpec::new(
            "http-filter-0",
            NfConfig::HttpFilter(HttpFilterConfig::block_hosts(&[
                "ads.example",
                "tracker.example",
            ])),
        ),
        NfSpec::new(
            "dns-lb-0",
            NfConfig::DnsLoadBalancer {
                service: "svc.edge.example".into(),
                backends: vec![
                    Ipv4Addr::new(10, 10, 0, 1),
                    Ipv4Addr::new(10, 10, 0, 2),
                    Ipv4Addr::new(10, 10, 0, 3),
                ],
                strategy: LbStrategy::RoundRobin,
                ttl: 30,
            },
        ),
        NfSpec::new(
            "rate-limiter-0",
            NfConfig::RateLimiter(RateLimiterConfig::default()),
        ),
        NfSpec::new(
            "nat-0",
            NfConfig::Nat {
                public_ip: Ipv4Addr::new(198, 51, 100, 1),
            },
        ),
        NfSpec::new("cache-0", NfConfig::HttpCache { capacity: 64 }),
        NfSpec::new("ids-0", NfConfig::Ids(IdsConfig::default())),
    ]
}

/// The client and gateway MAC addresses used by the sample traffic.
pub fn sample_macs() -> (MacAddr, MacAddr) {
    (MacAddr::derived(1, 1), MacAddr::derived(2, 1))
}

/// A small mixed workload resembling the demo's client traffic: web browsing,
/// DNS lookups and a ping.
pub fn sample_traffic(client_ip: Ipv4Addr) -> Vec<Packet> {
    let (client_mac, gw_mac) = sample_macs();
    let web_server = Ipv4Addr::new(198, 51, 100, 7);
    let resolver = Ipv4Addr::new(8, 8, 8, 8);
    vec![
        builder::dns_query(
            client_mac,
            gw_mac,
            client_ip,
            resolver,
            5353,
            1,
            "www.gla.ac.uk",
        ),
        builder::tcp_syn(client_mac, gw_mac, client_ip, web_server, 40_000, 80),
        builder::http_get(
            client_mac,
            gw_mac,
            client_ip,
            web_server,
            40_000,
            "www.gla.ac.uk",
            "/",
        ),
        builder::dns_query(
            client_mac,
            gw_mac,
            client_ip,
            resolver,
            5354,
            2,
            "svc.edge.example",
        ),
        builder::tcp_data(
            client_mac, gw_mac, client_ip, web_server, 40_000, 443, b"tls-ish",
        ),
        builder::icmp_echo_request(
            client_mac,
            gw_mac,
            client_ip,
            Ipv4Addr::new(1, 1, 1, 1),
            7,
            1,
        ),
        builder::udp_packet(
            client_mac,
            gw_mac,
            client_ip,
            web_server,
            41_000,
            5004,
            &[0u8; 160],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::{Direction, NfContext};
    use crate::spec::instantiate_chain;
    use gnf_types::SimTime;

    #[test]
    fn sample_traffic_is_parseable_and_varied() {
        let traffic = sample_traffic(Ipv4Addr::new(10, 0, 0, 2));
        assert!(traffic.len() >= 5);
        let with_tuples = traffic.iter().filter(|p| p.five_tuple().is_some()).count();
        assert!(with_tuples >= 5);
    }

    #[test]
    fn full_chain_processes_sample_traffic_without_panicking() {
        let mut chain = instantiate_chain("all-nfs", &sample_specs());
        let ctx = NfContext::at(SimTime::from_secs(1));
        for pkt in sample_traffic(Ipv4Addr::new(10, 0, 0, 2)) {
            let _ = chain.process(pkt, Direction::Ingress, &ctx);
        }
        assert_eq!(chain.stats().packets_in, 7);
    }
}
