//! The HTTP filter NF from the paper's demo: a transparent URL/host filter
//! that inspects HTTP requests in the client's upstream traffic and blocks
//! requests matching a provider-configured block list.
//!
//! Blocked requests are answered on behalf of the server with an HTTP `403
//! Forbidden` page (so the user sees an explanation rather than a hang), and
//! an alert is queued for the Manager.

use crate::nf::{Direction, NetworkFunction, NfContext, NfEvent, NfStats, Verdict};
use crate::spec::NfKind;
use gnf_packet::{builder, HttpResponse, Packet};
use serde::{Deserialize, Serialize};

/// How a block-list entry is matched against the request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UrlPattern {
    /// The Host header equals this value (case-insensitive).
    HostExact(String),
    /// The Host header ends with this suffix (matches a domain and all of its
    /// subdomains).
    HostSuffix(String),
    /// `host + path` contains this substring.
    UrlContains(String),
    /// The path starts with this prefix (any host).
    PathPrefix(String),
}

impl UrlPattern {
    /// True when the pattern matches the request's host and path.
    pub fn matches(&self, host: &str, path: &str) -> bool {
        let host = host.to_ascii_lowercase();
        match self {
            UrlPattern::HostExact(h) => host == h.to_ascii_lowercase(),
            UrlPattern::HostSuffix(suffix) => {
                let suffix = suffix.to_ascii_lowercase();
                host == suffix || host.ends_with(&format!(".{suffix}"))
            }
            UrlPattern::UrlContains(needle) => {
                format!("{host}{path}").contains(&needle.to_ascii_lowercase())
            }
            UrlPattern::PathPrefix(prefix) => path.starts_with(prefix.as_str()),
        }
    }
}

/// HTTP filter configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HttpFilterConfig {
    /// Requests matching any of these patterns are blocked.
    pub blocked: Vec<UrlPattern>,
    /// When true, blocked requests receive a 403 response; when false they are
    /// silently dropped.
    pub respond_with_403: bool,
}

impl HttpFilterConfig {
    /// A configuration blocking the given host suffixes, responding with 403.
    pub fn block_hosts(hosts: &[&str]) -> Self {
        HttpFilterConfig {
            blocked: hosts
                .iter()
                .map(|h| UrlPattern::HostSuffix((*h).to_string()))
                .collect(),
            respond_with_403: true,
        }
    }
}

/// The HTTP filter NF.
pub struct HttpFilter {
    name: String,
    config: HttpFilterConfig,
    stats: NfStats,
    blocked_requests: u64,
    inspected_requests: u64,
    events: Vec<NfEvent>,
}

impl HttpFilter {
    /// Creates an HTTP filter from its configuration.
    pub fn new(name: &str, config: HttpFilterConfig) -> Self {
        HttpFilter {
            name: name.to_string(),
            config,
            stats: NfStats::default(),
            blocked_requests: 0,
            inspected_requests: 0,
            events: Vec::new(),
        }
    }

    /// Number of HTTP requests inspected so far.
    pub fn inspected_requests(&self) -> u64 {
        self.inspected_requests
    }

    /// Number of requests blocked so far.
    pub fn blocked_requests(&self) -> u64 {
        self.blocked_requests
    }

    fn is_blocked(&self, host: &str, path: &str) -> bool {
        self.config.blocked.iter().any(|p| p.matches(host, path))
    }
}

impl NetworkFunction for HttpFilter {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> NfKind {
        NfKind::HttpFilter
    }

    fn process(&mut self, packet: Packet, direction: Direction, _ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());

        // Only client→network traffic carries requests worth inspecting.
        let request = if direction == Direction::Ingress {
            packet.http_request()
        } else {
            None
        };

        let verdict = match request {
            Some(req) => {
                self.inspected_requests += 1;
                let host = req.host().unwrap_or("").to_string();
                if self.is_blocked(&host, &req.path) {
                    self.blocked_requests += 1;
                    self.events.push(NfEvent::warning(
                        "blocked-url",
                        format!("blocked HTTP request to {}{}", host, req.path),
                    ));
                    if self.config.respond_with_403 {
                        let tuple = packet
                            .five_tuple()
                            .expect("an HTTP request is always TCP/IPv4");
                        let tcp = packet.tcp().expect("an HTTP request always has TCP");
                        let reply = builder::http_response(
                            packet.dst_mac(),
                            packet.src_mac(),
                            tuple.dst_ip,
                            tuple.src_ip,
                            tcp.src_port,
                            &HttpResponse::forbidden(),
                        );
                        Verdict::Reply(vec![reply])
                    } else {
                        Verdict::Drop(format!("blocked URL {}{}", host, req.path).into())
                    }
                } else {
                    Verdict::Forward(packet)
                }
            }
            None => Verdict::Forward(packet),
        };
        self.stats.record_verdict(&verdict);
        verdict
    }

    fn stats(&self) -> NfStats {
        self.stats
    }

    fn drain_events(&mut self) -> Vec<NfEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_types::{MacAddr, SimTime};
    use std::net::Ipv4Addr;

    fn ctx() -> NfContext {
        NfContext::at(SimTime::from_secs(1))
    }

    fn http_to(host: &str, path: &str) -> Packet {
        builder::http_get(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(198, 51, 100, 7),
            40_100,
            host,
            path,
        )
    }

    #[test]
    fn pattern_matching_variants() {
        assert!(UrlPattern::HostExact("ads.example".into()).matches("ADS.example", "/"));
        assert!(!UrlPattern::HostExact("ads.example".into()).matches("cdn.ads.example", "/"));
        assert!(UrlPattern::HostSuffix("example.org".into()).matches("a.b.example.org", "/"));
        assert!(UrlPattern::HostSuffix("example.org".into()).matches("example.org", "/"));
        assert!(!UrlPattern::HostSuffix("example.org".into()).matches("badexample.org", "/"));
        assert!(UrlPattern::UrlContains("tracker".into()).matches("x.com", "/tracker.js"));
        assert!(UrlPattern::PathPrefix("/admin".into()).matches("any.host", "/admin/panel"));
        assert!(!UrlPattern::PathPrefix("/admin".into()).matches("any.host", "/public"));
    }

    #[test]
    fn allowed_requests_are_forwarded() {
        let mut filter = HttpFilter::new("hf", HttpFilterConfig::block_hosts(&["blocked.example"]));
        let verdict = filter.process(http_to("ok.example", "/"), Direction::Ingress, &ctx());
        assert!(verdict.is_forward());
        assert_eq!(filter.inspected_requests(), 1);
        assert_eq!(filter.blocked_requests(), 0);
        assert!(filter.drain_events().is_empty());
    }

    #[test]
    fn blocked_requests_get_a_403_reply() {
        let mut filter = HttpFilter::new("hf", HttpFilterConfig::block_hosts(&["blocked.example"]));
        let verdict = filter.process(
            http_to("www.blocked.example", "/page"),
            Direction::Ingress,
            &ctx(),
        );
        let Verdict::Reply(replies) = verdict else {
            panic!("expected a 403 reply");
        };
        let resp = HttpResponse::parse(replies[0].tcp_payload().unwrap()).unwrap();
        assert_eq!(resp.status, 403);
        // The reply heads back to the client.
        assert_eq!(replies[0].ipv4().unwrap().dst, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(filter.blocked_requests(), 1);

        let events = filter.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].category, "blocked-url");
        assert!(
            filter.drain_events().is_empty(),
            "events drain exactly once"
        );
    }

    #[test]
    fn silent_drop_mode() {
        let config = HttpFilterConfig {
            blocked: vec![UrlPattern::HostSuffix("blocked.example".into())],
            respond_with_403: false,
        };
        let mut filter = HttpFilter::new("hf", config);
        let verdict = filter.process(http_to("blocked.example", "/"), Direction::Ingress, &ctx());
        assert!(verdict.is_drop());
    }

    #[test]
    fn non_http_and_downstream_traffic_is_not_inspected() {
        let mut filter = HttpFilter::new("hf", HttpFilterConfig::block_hosts(&["blocked.example"]));
        // Downstream direction: even a blocked host's packet is forwarded.
        let verdict = filter.process(http_to("blocked.example", "/"), Direction::Egress, &ctx());
        assert!(verdict.is_forward());
        // Non-HTTP traffic.
        let dns = builder::dns_query(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            5353,
            1,
            "blocked.example",
        );
        assert!(filter.process(dns, Direction::Ingress, &ctx()).is_forward());
        assert_eq!(filter.inspected_requests(), 0);
    }

    #[test]
    fn stats_track_blocked_and_forwarded() {
        let mut filter = HttpFilter::new("hf", HttpFilterConfig::block_hosts(&["bad.example"]));
        filter.process(http_to("good.example", "/"), Direction::Ingress, &ctx());
        filter.process(http_to("bad.example", "/"), Direction::Ingress, &ctx());
        let stats = filter.stats();
        assert_eq!(stats.packets_in, 2);
        assert_eq!(stats.packets_forwarded, 1);
        assert_eq!(stats.packets_replied, 1);
    }
}
