//! The DNS load-balancer NF from the paper's demo.
//!
//! The function intercepts the client's DNS queries for a configured service
//! name and answers them directly at the edge with the address of one of the
//! service's backends, chosen by a configurable strategy. Queries for other
//! names are forwarded untouched to the client's normal resolver.

use crate::nf::{Direction, NetworkFunction, NfContext, NfStats, Verdict};
use crate::spec::NfKind;
use crate::state::NfStateSnapshot;
use gnf_packet::{builder, Packet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Backend selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbStrategy {
    /// Cycle through the backends in order.
    RoundRobin,
    /// Pick the backend with the fewest assignments handed out so far.
    LeastAssigned,
    /// Hash the client's source address so a client consistently gets the
    /// same backend (session affinity).
    SourceHash,
}

/// The DNS load-balancer NF.
pub struct DnsLoadBalancer {
    name: String,
    service: String,
    backends: Vec<Ipv4Addr>,
    strategy: LbStrategy,
    ttl: u32,
    next_backend: usize,
    assignments: HashMap<Ipv4Addr, u64>,
    answered_queries: u64,
    forwarded_queries: u64,
    stats: NfStats,
}

impl DnsLoadBalancer {
    /// Creates a load balancer answering `service` with `backends`.
    pub fn new(
        name: &str,
        service: &str,
        backends: Vec<Ipv4Addr>,
        strategy: LbStrategy,
        ttl: u32,
    ) -> Self {
        let assignments = backends.iter().map(|b| (*b, 0u64)).collect();
        DnsLoadBalancer {
            name: name.to_string(),
            service: service.trim_end_matches('.').to_ascii_lowercase(),
            backends,
            strategy,
            ttl,
            next_backend: 0,
            assignments,
            answered_queries: 0,
            forwarded_queries: 0,
            stats: NfStats::default(),
        }
    }

    /// The service name answered authoritatively.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// Queries answered locally so far.
    pub fn answered_queries(&self) -> u64 {
        self.answered_queries
    }

    /// Queries passed through to the upstream resolver.
    pub fn forwarded_queries(&self) -> u64 {
        self.forwarded_queries
    }

    /// Assignment counts per backend.
    pub fn assignments(&self) -> Vec<(Ipv4Addr, u64)> {
        let mut v: Vec<(Ipv4Addr, u64)> = self
            .backends
            .iter()
            .map(|b| (*b, self.assignments.get(b).copied().unwrap_or(0)))
            .collect();
        v.sort();
        v
    }

    fn name_matches_service(&self, name: &str) -> bool {
        let name = name.trim_end_matches('.').to_ascii_lowercase();
        name == self.service || name.ends_with(&format!(".{}", self.service))
    }

    fn pick_backend(&mut self, client_ip: Ipv4Addr) -> Option<Ipv4Addr> {
        if self.backends.is_empty() {
            return None;
        }
        let backend = match self.strategy {
            LbStrategy::RoundRobin => {
                let b = self.backends[self.next_backend % self.backends.len()];
                self.next_backend = (self.next_backend + 1) % self.backends.len();
                b
            }
            LbStrategy::LeastAssigned => *self
                .backends
                .iter()
                .min_by_key(|b| {
                    (
                        self.assignments.get(*b).copied().unwrap_or(0),
                        u32::from(**b),
                    )
                })
                .expect("backends is non-empty"),
            LbStrategy::SourceHash => {
                // FNV-1a over the client address for a stable assignment.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for byte in client_ip.octets() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                self.backends[(h % self.backends.len() as u64) as usize]
            }
        };
        *self.assignments.entry(backend).or_insert(0) += 1;
        Some(backend)
    }
}

impl NetworkFunction for DnsLoadBalancer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> NfKind {
        NfKind::DnsLoadBalancer
    }

    fn process(&mut self, packet: Packet, direction: Direction, _ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());

        // Only upstream queries are intercepted.
        let query = if direction == Direction::Ingress {
            packet.dns().filter(|m| !m.is_response)
        } else {
            None
        };

        let verdict = match query {
            Some(dns) => {
                let name_matches = dns
                    .first_question_name()
                    .map(|n| self.name_matches_service(n))
                    .unwrap_or(false);
                let tuple = packet.five_tuple();
                if name_matches {
                    if let (Some(tuple), Some(udp)) = (tuple, packet.udp()) {
                        if let Some(backend) = self.pick_backend(tuple.src_ip) {
                            self.answered_queries += 1;
                            // Answer on behalf of the resolver: swap MAC/IP
                            // endpoints and reuse the query id.
                            let reply = builder::dns_response(
                                packet.dst_mac(),
                                packet.src_mac(),
                                tuple.dst_ip,
                                tuple.src_ip,
                                udp.src_port,
                                &dns,
                                &[backend],
                                self.ttl,
                            );
                            let verdict = Verdict::Reply(vec![reply]);
                            self.stats.record_verdict(&verdict);
                            return verdict;
                        }
                    }
                    // No backends configured: forward to the real resolver.
                    self.forwarded_queries += 1;
                    Verdict::Forward(packet)
                } else {
                    self.forwarded_queries += 1;
                    Verdict::Forward(packet)
                }
            }
            None => Verdict::Forward(packet),
        };
        self.stats.record_verdict(&verdict);
        verdict
    }

    fn stats(&self) -> NfStats {
        self.stats
    }

    fn export_state(&self) -> NfStateSnapshot {
        NfStateSnapshot::DnsLoadBalancer {
            next_backend: self.next_backend,
            assignments: self.assignments(),
        }
    }

    fn import_state(&mut self, state: NfStateSnapshot) {
        if let NfStateSnapshot::DnsLoadBalancer {
            next_backend,
            assignments,
        } = state
        {
            self.next_backend = next_backend;
            for (backend, count) in assignments {
                self.assignments.insert(backend, count);
            }
        }
    }

    fn replace_state(&mut self, state: NfStateSnapshot) {
        if matches!(state, NfStateSnapshot::DnsLoadBalancer { .. }) {
            self.assignments.clear();
        }
        self.import_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_types::{MacAddr, SimTime};

    fn ctx() -> NfContext {
        NfContext::at(SimTime::from_secs(1))
    }

    fn backends() -> Vec<Ipv4Addr> {
        vec![
            Ipv4Addr::new(10, 10, 0, 1),
            Ipv4Addr::new(10, 10, 0, 2),
            Ipv4Addr::new(10, 10, 0, 3),
        ]
    }

    fn query_from(client: Ipv4Addr, name: &str, id: u16) -> Packet {
        builder::dns_query(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client,
            Ipv4Addr::new(8, 8, 8, 8),
            40_053,
            id,
            name,
        )
    }

    fn lb(strategy: LbStrategy) -> DnsLoadBalancer {
        DnsLoadBalancer::new("lb", "svc.edge.example", backends(), strategy, 30)
    }

    #[test]
    fn matching_queries_are_answered_locally() {
        let mut lb = lb(LbStrategy::RoundRobin);
        let verdict = lb.process(
            query_from(Ipv4Addr::new(10, 0, 0, 2), "svc.edge.example", 77),
            Direction::Ingress,
            &ctx(),
        );
        let Verdict::Reply(replies) = verdict else {
            panic!("expected a local DNS answer");
        };
        let answer = replies[0].dns().unwrap();
        assert!(answer.is_response);
        assert_eq!(answer.id, 77);
        assert_eq!(answer.a_records().len(), 1);
        assert!(backends().contains(&answer.a_records()[0]));
        // The reply is addressed back to the client's source port.
        assert_eq!(replies[0].udp().unwrap().dst_port, 40_053);
        assert_eq!(lb.answered_queries(), 1);
    }

    #[test]
    fn subdomains_of_the_service_match() {
        let mut lb = lb(LbStrategy::RoundRobin);
        let verdict = lb.process(
            query_from(Ipv4Addr::new(10, 0, 0, 2), "api.svc.edge.example", 1),
            Direction::Ingress,
            &ctx(),
        );
        assert!(verdict.is_reply());
    }

    #[test]
    fn other_names_are_forwarded_to_the_resolver() {
        let mut lb = lb(LbStrategy::RoundRobin);
        let verdict = lb.process(
            query_from(Ipv4Addr::new(10, 0, 0, 2), "unrelated.example", 2),
            Direction::Ingress,
            &ctx(),
        );
        assert!(verdict.is_forward());
        assert_eq!(lb.forwarded_queries(), 1);
        assert_eq!(lb.answered_queries(), 0);
    }

    #[test]
    fn round_robin_spreads_answers_evenly() {
        let mut lb = lb(LbStrategy::RoundRobin);
        for i in 0..9 {
            let verdict = lb.process(
                query_from(Ipv4Addr::new(10, 0, 0, 2), "svc.edge.example", i),
                Direction::Ingress,
                &ctx(),
            );
            assert!(verdict.is_reply());
        }
        let counts: Vec<u64> = lb.assignments().into_iter().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![3, 3, 3]);
    }

    #[test]
    fn least_assigned_balances_after_state_import() {
        let mut lb = lb(LbStrategy::LeastAssigned);
        // Pretend backend 1 already has many assignments (e.g. state imported
        // after a migration).
        lb.import_state(NfStateSnapshot::DnsLoadBalancer {
            next_backend: 0,
            assignments: vec![(Ipv4Addr::new(10, 10, 0, 1), 100)],
        });
        let verdict = lb.process(
            query_from(Ipv4Addr::new(10, 0, 0, 2), "svc.edge.example", 5),
            Direction::Ingress,
            &ctx(),
        );
        let Verdict::Reply(replies) = verdict else {
            panic!("expected reply")
        };
        let addr = replies[0].dns().unwrap().a_records()[0];
        assert_ne!(addr, Ipv4Addr::new(10, 10, 0, 1));
    }

    #[test]
    fn source_hash_is_sticky_per_client() {
        let mut lb = lb(LbStrategy::SourceHash);
        let client = Ipv4Addr::new(10, 0, 0, 77);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            let verdict = lb.process(
                query_from(client, "svc.edge.example", i),
                Direction::Ingress,
                &ctx(),
            );
            let Verdict::Reply(replies) = verdict else {
                panic!("expected reply")
            };
            seen.insert(replies[0].dns().unwrap().a_records()[0]);
        }
        assert_eq!(
            seen.len(),
            1,
            "the same client must always get the same backend"
        );
    }

    #[test]
    fn responses_and_non_dns_traffic_pass_through() {
        let mut lb = lb(LbStrategy::RoundRobin);
        // Downstream DNS response.
        let query = gnf_packet::DnsMessage::query(9, "svc.edge.example");
        let response = builder::dns_response(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            Ipv4Addr::new(10, 0, 0, 2),
            40_053,
            &query,
            &[Ipv4Addr::new(192, 0, 2, 1)],
            60,
        );
        assert!(lb.process(response, Direction::Egress, &ctx()).is_forward());
        // Plain TCP traffic.
        let tcp = builder::tcp_syn(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(192, 0, 2, 1),
            40_000,
            443,
        );
        assert!(lb.process(tcp, Direction::Ingress, &ctx()).is_forward());
        assert_eq!(lb.answered_queries(), 0);
    }

    #[test]
    fn empty_backend_list_forwards_queries() {
        let mut lb = DnsLoadBalancer::new("lb", "svc.example", vec![], LbStrategy::RoundRobin, 30);
        let verdict = lb.process(
            query_from(Ipv4Addr::new(10, 0, 0, 2), "svc.example", 3),
            Direction::Ingress,
            &ctx(),
        );
        assert!(verdict.is_forward());
    }

    #[test]
    fn scheduling_state_roundtrips() {
        let mut lb = lb(LbStrategy::RoundRobin);
        for i in 0..4 {
            lb.process(
                query_from(Ipv4Addr::new(10, 0, 0, 2), "svc.edge.example", i),
                Direction::Ingress,
                &ctx(),
            );
        }
        let snapshot = lb.export_state();
        let mut lb2 = DnsLoadBalancer::new(
            "lb",
            "svc.edge.example",
            backends(),
            LbStrategy::RoundRobin,
            30,
        );
        lb2.import_state(snapshot);
        // The next answer continues the rotation rather than restarting it.
        let verdict = lb2.process(
            query_from(Ipv4Addr::new(10, 0, 0, 2), "svc.edge.example", 10),
            Direction::Ingress,
            &ctx(),
        );
        let Verdict::Reply(replies) = verdict else {
            panic!("expected reply")
        };
        // After 4 answers over 3 backends the next backend is index 1 → .2
        assert_eq!(
            replies[0].dns().unwrap().a_records()[0],
            Ipv4Addr::new(10, 10, 0, 2)
        );
    }
}
