//! NF descriptors: the *kind* of a network function, the [`NfSpec`] a provider
//! submits to the Manager when attaching a function to a client, and the
//! factory that instantiates the corresponding implementation.
//!
//! A spec corresponds to what the paper stores in the central NF repository
//! (`github.com/glanf/*` images): the image to run, the resources it needs and
//! its configuration.

use crate::cache::HttpCache;
use crate::chain::NfChain;
use crate::dns_lb::{DnsLoadBalancer, LbStrategy};
use crate::firewall::{Firewall, FirewallConfig};
use crate::http_filter::{HttpFilter, HttpFilterConfig};
use crate::ids::{Ids, IdsConfig};
use crate::nat::Nat;
use crate::nf::NetworkFunction;
use crate::rate_limiter::{RateLimiter, RateLimiterConfig};
use gnf_types::ResourceSpec;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The kinds of network function shipped with the GNF reproduction.
///
/// The first three are the NFs demonstrated in the paper (Section 4); the
/// rest are the edge services its introduction motivates (caches, rate
/// limiters) plus NAT and a small IDS used for the notification use case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NfKind {
    /// iptables-style packet firewall.
    Firewall,
    /// HTTP URL/host filter.
    HttpFilter,
    /// DNS load balancer answering service names with backend addresses.
    DnsLoadBalancer,
    /// Token-bucket rate limiter.
    RateLimiter,
    /// Source NAT.
    Nat,
    /// Transparent HTTP cache.
    HttpCache,
    /// Signature/threshold intrusion detection.
    Ids,
}

impl NfKind {
    /// The image name under which this NF is published in the repository
    /// (mirroring the paper's `glanf/<nf>` naming).
    pub fn image_name(&self) -> &'static str {
        match self {
            NfKind::Firewall => "glanf/firewall",
            NfKind::HttpFilter => "glanf/http-filter",
            NfKind::DnsLoadBalancer => "glanf/dns-lb",
            NfKind::RateLimiter => "glanf/rate-limiter",
            NfKind::Nat => "glanf/nat",
            NfKind::HttpCache => "glanf/cache",
            NfKind::Ids => "glanf/ids",
        }
    }

    /// Typical per-instance resource requirement of the containerised NF.
    ///
    /// Calibrated to the paper's claim that commodity devices can host up to
    /// hundreds of container NFs: a few MB of memory and a few millicores
    /// each.
    pub fn container_footprint(&self) -> ResourceSpec {
        match self {
            NfKind::Firewall => ResourceSpec::new(10, 4, 8),
            NfKind::HttpFilter => ResourceSpec::new(15, 6, 10),
            NfKind::DnsLoadBalancer => ResourceSpec::new(10, 5, 8),
            NfKind::RateLimiter => ResourceSpec::new(8, 3, 6),
            NfKind::Nat => ResourceSpec::new(12, 6, 8),
            NfKind::HttpCache => ResourceSpec::new(25, 48, 128),
            NfKind::Ids => ResourceSpec::new(30, 16, 24),
        }
    }

    /// Typical per-instance resource requirement when the same NF is deployed
    /// as a full virtual machine (the baseline GNF is compared against).
    pub fn vm_footprint(&self) -> ResourceSpec {
        // A minimal Linux VM image per NF: hundreds of MB of RAM and a couple
        // of GB of disk regardless of how small the NF process is.
        let base = ResourceSpec::new(500, 512, 2_048);
        base + self.container_footprint()
    }

    /// All NF kinds.
    pub fn all() -> [NfKind; 7] {
        [
            NfKind::Firewall,
            NfKind::HttpFilter,
            NfKind::DnsLoadBalancer,
            NfKind::RateLimiter,
            NfKind::Nat,
            NfKind::HttpCache,
            NfKind::Ids,
        ]
    }

    /// Short label used in reports and the UI.
    pub fn label(&self) -> &'static str {
        match self {
            NfKind::Firewall => "firewall",
            NfKind::HttpFilter => "http-filter",
            NfKind::DnsLoadBalancer => "dns-lb",
            NfKind::RateLimiter => "rate-limiter",
            NfKind::Nat => "nat",
            NfKind::HttpCache => "cache",
            NfKind::Ids => "ids",
        }
    }
}

impl fmt::Display for NfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Kind-specific configuration embedded in an [`NfSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NfConfig {
    /// Firewall rules and default policy.
    Firewall(FirewallConfig),
    /// HTTP filter block lists.
    HttpFilter(HttpFilterConfig),
    /// DNS load balancer: service name, backends and strategy.
    DnsLoadBalancer {
        /// Service names (domains) this LB answers authoritatively.
        service: String,
        /// Backend addresses answers are balanced over.
        backends: Vec<Ipv4Addr>,
        /// Balancing strategy.
        strategy: LbStrategy,
        /// TTL to attach to the synthesised answers, in seconds.
        ttl: u32,
    },
    /// Rate limiter parameters.
    RateLimiter(RateLimiterConfig),
    /// Source NAT: the public address to masquerade behind.
    Nat {
        /// Public IPv4 address used for translated flows.
        public_ip: Ipv4Addr,
    },
    /// HTTP cache capacity in entries.
    HttpCache {
        /// Maximum number of cached responses.
        capacity: usize,
    },
    /// IDS thresholds and signatures.
    Ids(IdsConfig),
}

impl NfConfig {
    /// The NF kind this configuration belongs to.
    pub fn kind(&self) -> NfKind {
        match self {
            NfConfig::Firewall(_) => NfKind::Firewall,
            NfConfig::HttpFilter(_) => NfKind::HttpFilter,
            NfConfig::DnsLoadBalancer { .. } => NfKind::DnsLoadBalancer,
            NfConfig::RateLimiter(_) => NfKind::RateLimiter,
            NfConfig::Nat { .. } => NfKind::Nat,
            NfConfig::HttpCache { .. } => NfKind::HttpCache,
            NfConfig::Ids(_) => NfKind::Ids,
        }
    }
}

/// A deployable NF description: what the Manager stores in its catalog and
/// ships to Agents when attaching a function to a client's traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfSpec {
    /// Instance name (unique per attachment, e.g. `firewall-client-3`).
    pub name: String,
    /// Kind-specific configuration.
    pub config: NfConfig,
}

impl NfSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, config: NfConfig) -> Self {
        NfSpec {
            name: name.into(),
            config,
        }
    }

    /// The NF kind.
    pub fn kind(&self) -> NfKind {
        self.config.kind()
    }

    /// The repository image this spec instantiates.
    pub fn image_name(&self) -> &'static str {
        self.kind().image_name()
    }

    /// Container resource requirement.
    pub fn container_footprint(&self) -> ResourceSpec {
        self.kind().container_footprint()
    }

    /// Instantiates the network function this spec describes.
    pub fn instantiate(&self) -> Box<dyn NetworkFunction> {
        match &self.config {
            NfConfig::Firewall(cfg) => Box::new(Firewall::new(&self.name, cfg.clone())),
            NfConfig::HttpFilter(cfg) => Box::new(HttpFilter::new(&self.name, cfg.clone())),
            NfConfig::DnsLoadBalancer {
                service,
                backends,
                strategy,
                ttl,
            } => Box::new(DnsLoadBalancer::new(
                &self.name,
                service,
                backends.clone(),
                *strategy,
                *ttl,
            )),
            NfConfig::RateLimiter(cfg) => Box::new(RateLimiter::new(&self.name, *cfg)),
            NfConfig::Nat { public_ip } => Box::new(Nat::new(&self.name, *public_ip)),
            NfConfig::HttpCache { capacity } => Box::new(HttpCache::new(&self.name, *capacity)),
            NfConfig::Ids(cfg) => Box::new(Ids::new(&self.name, cfg.clone())),
        }
    }
}

/// Instantiates a whole service chain from an ordered list of specs.
pub fn instantiate_chain(name: &str, specs: &[NfSpec]) -> NfChain {
    let mut chain = NfChain::new(name);
    for spec in specs {
        chain.push(spec.instantiate());
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firewall::FirewallConfig;

    #[test]
    fn every_kind_has_image_and_footprints() {
        for kind in NfKind::all() {
            assert!(kind.image_name().starts_with("glanf/"));
            let c = kind.container_footprint();
            let v = kind.vm_footprint();
            assert!(!c.is_zero());
            // The container footprint must be dramatically smaller than the VM
            // footprint — this is the paper's core density argument.
            assert!(v.memory_mb >= c.memory_mb * 10);
            assert!(v.disk_mb > c.disk_mb);
            assert!(!kind.label().is_empty());
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn spec_kind_follows_config() {
        let spec = NfSpec::new("fw", NfConfig::Firewall(FirewallConfig::default()));
        assert_eq!(spec.kind(), NfKind::Firewall);
        assert_eq!(spec.image_name(), "glanf/firewall");
        assert_eq!(
            spec.container_footprint(),
            NfKind::Firewall.container_footprint()
        );

        let spec = NfSpec::new(
            "lb",
            NfConfig::DnsLoadBalancer {
                service: "svc.example".into(),
                backends: vec![Ipv4Addr::new(10, 0, 0, 1)],
                strategy: LbStrategy::RoundRobin,
                ttl: 30,
            },
        );
        assert_eq!(spec.kind(), NfKind::DnsLoadBalancer);
    }

    #[test]
    fn every_config_instantiates_its_kind() {
        let specs = crate::testing::sample_specs();
        assert_eq!(specs.len(), NfKind::all().len());
        for spec in specs {
            let nf = spec.instantiate();
            assert_eq!(nf.kind(), spec.kind());
            assert_eq!(nf.name(), spec.name);
            assert_eq!(nf.stats(), Default::default());
        }
    }

    #[test]
    fn chains_instantiate_in_order() {
        let specs = crate::testing::sample_specs();
        let chain = instantiate_chain("chain-0", &specs);
        assert_eq!(chain.len(), specs.len());
        let kinds: Vec<NfKind> = chain.kinds();
        let expected: Vec<NfKind> = specs.iter().map(|s| s.kind()).collect();
        assert_eq!(kinds, expected);
    }

    #[test]
    fn specs_serialize_roundtrip() {
        for spec in crate::testing::sample_specs() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: NfSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }
}
