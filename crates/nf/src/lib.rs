//! # gnf-nf
//!
//! The network functions shipped with the Glasgow Network Functions
//! reproduction, together with the [`NetworkFunction`] trait they implement
//! and the chaining / state-migration machinery the roaming use case needs.
//!
//! The paper demonstrates three NFs — an iptables-based packet [`firewall`],
//! an [`http_filter`] and a [`dns_lb`] (DNS load balancer) — and motivates
//! caches and rate limiters at the edge. This crate implements all of those
//! plus a source [`nat`] and a small [`ids`] (which produces the
//! "intrusion attempt" notifications the Manager relays):
//!
//! | Module | NF | Migratable state |
//! |---|---|---|
//! | [`firewall`] | ordered rule list + connection tracking | conntrack table |
//! | [`http_filter`] | host/URL block list, 403 responses | none |
//! | [`dns_lb`] | authoritative answers for a service, RR/least-assigned/hash | scheduling counters |
//! | [`rate_limiter`] | token bucket per client or flow | bucket levels |
//! | [`nat`] | source NAT behind a public address | translation table |
//! | [`cache`] | transparent HTTP cache with LRU eviction | cached responses |
//! | [`ids`] | SYN-flood + signature detection, alert events | per-source counters |
//!
//! NFs process *real* packets ([`gnf_packet::Packet`]); nothing about their
//! behaviour is mocked. Chains ([`chain::NfChain`]) compose them in order, and
//! [`spec::NfSpec`] is the serializable descriptor the Manager ships to Agents.
//!
//! ## The NF contract in the fast/batch/wildcard paths
//!
//! Beyond per-packet [`NetworkFunction::process`], the trait has two optional
//! fast-path surfaces, both of which must stay *observably equivalent* to
//! per-packet processing (the batch- and megaflow-equivalence property tests
//! enforce it for the shipped NFs):
//!
//! * **Batching** — [`NetworkFunction::process_batch`] takes a
//!   [`gnf_packet::PacketBatch`] and may amortize per-packet work (the
//!   firewall replays one rule resolution per same-flow run, the rate
//!   limiter refills tokens once per batch, the IDS rolls its window once).
//! * **Wildcarding** — [`NetworkFunction::fields_consulted`] reports, after
//!   each packet, [`FieldsConsulted::Pure`] (the forward verdict was a pure
//!   function of a mask of five-tuple fields; the switch's megaflow cache
//!   may then bypass the NF for matching flows, replaying its statistics via
//!   [`NetworkFunction::credit_bypass`]), [`FieldsConsulted::PureDrop`] (a
//!   silent drop was such a pure function; matching flows may be retired
//!   without running the NF, statistics replayed via
//!   [`NetworkFunction::credit_bypass_drop`] and the drop reason verbatim)
//!   or [`FieldsConsulted::Opaque`] (stateful/payload-reading processing —
//!   never bypassed; the safe default). Of the shipped NFs only the
//!   conntrack-off firewall reports `Pure`/`PureDrop`;
//!   [`NfChain::wildcard_report`] aggregates the reports chain-wide into a
//!   [`ChainBypass`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chain;
pub mod dns_lb;
pub mod firewall;
pub mod http_filter;
pub mod ids;
pub mod nat;
pub mod nf;
pub mod rate_limiter;
pub mod spec;
pub mod state;
pub mod testing;

pub use chain::{ChainBypass, NfChain};
pub use nf::{
    Direction, FieldsConsulted, NetworkFunction, NfContext, NfEvent, NfEventSeverity, NfStats,
    Verdict,
};
pub use spec::{instantiate_chain, NfConfig, NfKind, NfSpec};
pub use state::{NfStateDelta, NfStateSnapshot};
