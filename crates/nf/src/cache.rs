//! A transparent HTTP cache NF — one of the edge services the paper's
//! introduction lists as a candidate for placement at the network edge.
//!
//! The cache watches the client's HTTP GET requests. On a hit it answers
//! directly from the edge (a [`Verdict::Reply`]); on a miss it remembers the
//! outstanding request and, when the origin's `200 OK` response flows back
//! downstream, stores the body for future requests. Entries are evicted in
//! least-recently-used order when the configured capacity is exceeded.

use crate::nf::{Direction, NetworkFunction, NfContext, NfStats, Verdict};
use crate::spec::NfKind;
use crate::state::NfStateSnapshot;
use gnf_packet::{builder, FiveTuple, HttpMethod, HttpResponse, Packet};
use std::collections::{HashMap, VecDeque};

/// The transparent HTTP cache NF.
pub struct HttpCache {
    name: String,
    capacity: usize,
    /// Cached URL → serialized HTTP response bytes.
    entries: HashMap<String, Vec<u8>>,
    /// LRU order: front = least recently used.
    lru: VecDeque<String>,
    /// Outstanding requests keyed by canonical flow: URL awaiting a response.
    pending: HashMap<FiveTuple, String>,
    hits: u64,
    misses: u64,
    stored: u64,
    stats: NfStats,
}

impl HttpCache {
    /// Creates a cache holding at most `capacity` responses.
    pub fn new(name: &str, capacity: usize) -> Self {
        HttpCache {
            name: name.to_string(),
            capacity: capacity.max(1),
            entries: HashMap::new(),
            lru: VecDeque::new(),
            pending: HashMap::new(),
            hits: 0,
            misses: 0,
            stored: 0,
            stats: NfStats::default(),
        }
    }

    /// Cache hits served from the edge.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that had to go to the origin.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Responses stored so far.
    pub fn stored(&self) -> u64 {
        self.stored
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit ratio over all inspected GET requests.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn touch(&mut self, url: &str) {
        if let Some(pos) = self.lru.iter().position(|u| u == url) {
            self.lru.remove(pos);
        }
        self.lru.push_back(url.to_string());
    }

    fn insert(&mut self, url: String, response: Vec<u8>) {
        if !self.entries.contains_key(&url) && self.entries.len() >= self.capacity {
            if let Some(evicted) = self.lru.pop_front() {
                self.entries.remove(&evicted);
            }
        }
        self.entries.insert(url.clone(), response);
        self.touch(&url);
        self.stored += 1;
    }
}

impl NetworkFunction for HttpCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> NfKind {
        NfKind::HttpCache
    }

    fn process(&mut self, packet: Packet, direction: Direction, _ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());

        let verdict = match direction {
            Direction::Ingress => {
                if let Some(req) = packet.http_request() {
                    if req.method == HttpMethod::Get {
                        let url = req.url();
                        if let Some(cached) = self.entries.get(&url).cloned() {
                            self.hits += 1;
                            self.touch(&url);
                            let tuple = packet.five_tuple().expect("HTTP request is TCP/IPv4");
                            let tcp = packet.tcp().expect("HTTP request has TCP");
                            let response = HttpResponse::parse(&cached)
                                .unwrap_or_else(|_| HttpResponse::ok(&cached));
                            let reply = builder::http_response(
                                packet.dst_mac(),
                                packet.src_mac(),
                                tuple.dst_ip,
                                tuple.src_ip,
                                tcp.src_port,
                                &response,
                            );
                            Verdict::Reply(vec![reply])
                        } else {
                            self.misses += 1;
                            if let Some(tuple) = packet.five_tuple() {
                                self.pending.insert(tuple.canonical(), url);
                            }
                            Verdict::Forward(packet)
                        }
                    } else {
                        Verdict::Forward(packet)
                    }
                } else {
                    Verdict::Forward(packet)
                }
            }
            Direction::Egress => {
                // Downstream: look for responses answering a pending request.
                if let (Some(tuple), Some(payload)) = (packet.five_tuple(), packet.tcp_payload()) {
                    let key = tuple.canonical();
                    if let Some(url) = self.pending.get(&key).cloned() {
                        if let Ok(response) = HttpResponse::parse(payload) {
                            if response.status == 200 {
                                self.insert(url, payload.to_vec());
                            }
                            self.pending.remove(&key);
                        }
                    }
                }
                Verdict::Forward(packet)
            }
        };
        self.stats.record_verdict(&verdict);
        verdict
    }

    fn stats(&self) -> NfStats {
        self.stats
    }

    fn export_state(&self) -> NfStateSnapshot {
        let entries = self
            .lru
            .iter()
            .filter_map(|url| {
                self.entries
                    .get(url)
                    .map(|body| (url.clone(), body.clone()))
            })
            .collect();
        NfStateSnapshot::HttpCache { entries }
    }

    fn import_state(&mut self, state: NfStateSnapshot) {
        if let NfStateSnapshot::HttpCache { entries } = state {
            for (url, body) in entries {
                self.insert(url, body);
                // insert() counts stores; imported entries are not new stores.
                self.stored -= 1;
            }
        }
    }

    fn replace_state(&mut self, state: NfStateSnapshot) {
        if matches!(state, NfStateSnapshot::HttpCache { .. }) {
            self.entries.clear();
            self.lru.clear();
        }
        self.import_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_types::{MacAddr, SimTime};
    use std::net::Ipv4Addr;

    fn ctx() -> NfContext {
        NfContext::at(SimTime::from_secs(1))
    }
    fn client_ip() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }
    fn server_ip() -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, 7)
    }

    fn get(host: &str, path: &str, src_port: u16) -> Packet {
        builder::http_get(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            server_ip(),
            src_port,
            host,
            path,
        )
    }

    fn response(body: &[u8], dst_port: u16) -> Packet {
        builder::http_response(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            client_ip(),
            dst_port,
            &HttpResponse::ok(body),
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut cache = HttpCache::new("cache", 16);
        // First request misses and is forwarded to the origin.
        let v = cache.process(
            get("cdn.example", "/logo.png", 41_000),
            Direction::Ingress,
            &ctx(),
        );
        assert!(v.is_forward());
        assert_eq!(cache.misses(), 1);

        // The origin's 200 response fills the cache.
        let v = cache.process(response(b"PNG-BYTES", 41_000), Direction::Egress, &ctx());
        assert!(v.is_forward());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stored(), 1);

        // A later request (different flow) is served from the edge.
        let v = cache.process(
            get("cdn.example", "/logo.png", 41_001),
            Direction::Ingress,
            &ctx(),
        );
        let Verdict::Reply(replies) = v else {
            panic!("expected a cache hit reply")
        };
        let served = HttpResponse::parse(replies[0].tcp_payload().unwrap()).unwrap();
        assert_eq!(served.status, 200);
        assert_eq!(served.body, b"PNG-BYTES");
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_200_responses_are_not_cached() {
        let mut cache = HttpCache::new("cache", 16);
        cache.process(
            get("cdn.example", "/missing", 41_000),
            Direction::Ingress,
            &ctx(),
        );
        let not_found = builder::http_response(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            client_ip(),
            41_000,
            &HttpResponse::new(404, "Not Found", b"nope"),
        );
        cache.process(not_found, Direction::Egress, &ctx());
        assert!(cache.is_empty());
    }

    #[test]
    fn only_get_requests_are_considered() {
        let mut cache = HttpCache::new("cache", 16);
        let mut req = gnf_packet::HttpRequest::get("api.example", "/submit");
        req.method = HttpMethod::Post;
        let post = builder::tcp_data(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            server_ip(),
            41_500,
            80,
            &req.to_bytes(),
        );
        assert!(cache.process(post, Direction::Ingress, &ctx()).is_forward());
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut cache = HttpCache::new("cache", 2);
        for (i, path) in ["/a", "/b", "/c"].iter().enumerate() {
            let port = 42_000 + i as u16;
            cache.process(get("cdn.example", path, port), Direction::Ingress, &ctx());
            cache.process(response(path.as_bytes(), port), Direction::Egress, &ctx());
        }
        assert_eq!(cache.len(), 2, "capacity is 2");
        // "/a" was least recently used and must have been evicted.
        let v = cache.process(get("cdn.example", "/a", 43_000), Direction::Ingress, &ctx());
        assert!(v.is_forward(), "evicted entry must miss");
        // "/c" is still cached.
        let v = cache.process(get("cdn.example", "/c", 43_001), Direction::Ingress, &ctx());
        assert!(v.is_reply());
    }

    #[test]
    fn cache_contents_migrate() {
        let mut cache1 = HttpCache::new("cache", 8);
        cache1.process(
            get("cdn.example", "/app.js", 41_000),
            Direction::Ingress,
            &ctx(),
        );
        cache1.process(
            response(b"console.log(1)", 41_000),
            Direction::Egress,
            &ctx(),
        );
        let snapshot = cache1.export_state();
        assert!(snapshot.approximate_size_bytes() > 10);

        let mut cache2 = HttpCache::new("cache", 8);
        cache2.import_state(snapshot);
        assert_eq!(cache2.len(), 1);
        let v = cache2.process(
            get("cdn.example", "/app.js", 45_000),
            Direction::Ingress,
            &ctx(),
        );
        assert!(v.is_reply(), "migrated cache must keep serving hits");
    }

    #[test]
    fn non_http_traffic_flows_through() {
        let mut cache = HttpCache::new("cache", 4);
        let dns = builder::dns_query(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            Ipv4Addr::new(8, 8, 8, 8),
            5353,
            1,
            "cdn.example",
        );
        assert!(cache.process(dns, Direction::Ingress, &ctx()).is_forward());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }
}
