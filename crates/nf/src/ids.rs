//! A lightweight intrusion-detection NF.
//!
//! The paper's Manager "relays notifications ... such as an intrusion attempt
//! or detected malware" from NFs. This IDS provides that signal: it watches
//! the client's traffic for (a) SYN-flood behaviour (too many TCP SYNs from
//! one source within a window) and (b) payload signatures, and raises alert
//! events that the Agent forwards to the Manager. Detection is monitor-only by
//! default; it can optionally drop offending packets.

use crate::nf::{Direction, NetworkFunction, NfContext, NfEvent, NfStats, Verdict};
use crate::spec::NfKind;
use crate::state::NfStateSnapshot;
use gnf_packet::{Packet, PacketBatch};
use gnf_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// IDS configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdsConfig {
    /// Number of TCP SYNs from a single source within the window that
    /// triggers a SYN-flood alert.
    pub syn_flood_threshold: u64,
    /// Length of the SYN-counting window in seconds.
    pub window_secs: u64,
    /// Byte sequences treated as malicious payload signatures.
    pub signatures: Vec<Vec<u8>>,
    /// Whether packets matching a signature are dropped (true) or only
    /// reported (false).
    pub block_on_signature: bool,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            syn_flood_threshold: 100,
            window_secs: 10,
            signatures: vec![b"MALWARE-TEST-SIGNATURE".to_vec()],
            block_on_signature: false,
        }
    }
}

/// The IDS NF.
pub struct Ids {
    name: String,
    config: IdsConfig,
    syn_counts: BTreeMap<Ipv4Addr, u64>,
    window_start: SimTime,
    alerted_sources: Vec<Ipv4Addr>,
    signature_matches: u64,
    stats: NfStats,
    events: Vec<NfEvent>,
}

impl Ids {
    /// Creates an IDS from its configuration.
    pub fn new(name: &str, config: IdsConfig) -> Self {
        Ids {
            name: name.to_string(),
            config,
            syn_counts: BTreeMap::new(),
            window_start: SimTime::ZERO,
            alerted_sources: Vec::new(),
            signature_matches: 0,
            stats: NfStats::default(),
            events: Vec::new(),
        }
    }

    /// Number of payload-signature matches seen so far.
    pub fn signature_matches(&self) -> u64 {
        self.signature_matches
    }

    /// Sources that have triggered a SYN-flood alert in the current window.
    pub fn alerted_sources(&self) -> &[Ipv4Addr] {
        &self.alerted_sources
    }

    fn roll_window(&mut self, now: SimTime) {
        let window = SimDuration::from_secs(self.config.window_secs);
        if now.duration_since(self.window_start) >= window {
            self.syn_counts.clear();
            self.alerted_sources.clear();
            self.window_start = now;
        }
    }

    fn payload_of(packet: &Packet) -> Option<&[u8]> {
        packet.tcp_payload().or_else(|| packet.udp_payload())
    }

    fn matches_signature(&self, payload: &[u8]) -> bool {
        self.config
            .signatures
            .iter()
            .any(|sig| !sig.is_empty() && payload.windows(sig.len()).any(|w| w == sig.as_slice()))
    }

    /// Inspects one packet (window already rolled): SYN counting plus
    /// signature matching. Works entirely off the fast header scan
    /// (`tcp_flags`/`five_tuple`/raw payload), so the pass-through path
    /// never materializes the packet's typed layer view.
    fn inspect(&mut self, packet: Packet) -> Verdict {
        // SYN-flood detection.
        if let Some(flags) = packet.tcp_flags() {
            if flags.syn && !flags.ack {
                let src = packet
                    .five_tuple()
                    .expect("TCP flags imply a transport flow")
                    .src_ip;
                let count = self.syn_counts.entry(src).or_insert(0);
                *count += 1;
                if *count == self.config.syn_flood_threshold && !self.alerted_sources.contains(&src)
                {
                    self.alerted_sources.push(src);
                    self.events.push(NfEvent::alert(
                        "syn-flood",
                        format!(
                            "{} sent {} SYNs within {}s",
                            src, count, self.config.window_secs
                        ),
                    ));
                }
            }
        }

        // Signature matching.
        let signature_hit = !self.config.signatures.is_empty()
            && Self::payload_of(&packet)
                .map(|p| self.matches_signature(p))
                .unwrap_or(false);
        if signature_hit {
            self.signature_matches += 1;
            self.events.push(NfEvent::alert(
                "malware-signature",
                format!("payload signature matched in {}", packet.summary()),
            ));
            if self.config.block_on_signature {
                return Verdict::Drop("malicious payload signature".into());
            }
        }
        Verdict::Forward(packet)
    }
}

impl NetworkFunction for Ids {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> NfKind {
        NfKind::Ids
    }

    fn process(&mut self, packet: Packet, _direction: Direction, ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());
        self.roll_window(ctx.now);
        let verdict = self.inspect(packet);
        self.stats.record_verdict(&verdict);
        verdict
    }

    fn process_batch(
        &mut self,
        batch: PacketBatch,
        _direction: Direction,
        ctx: &NfContext,
    ) -> Vec<Verdict> {
        // One window roll and one stats add per batch; the per-packet scan
        // state (SYN counters, signature list) is shared across the batch.
        self.stats
            .record_in_batch(batch.len() as u64, batch.total_bytes());
        self.roll_window(ctx.now);
        let mut out = Vec::with_capacity(batch.len());
        for packet in batch {
            let verdict = self.inspect(packet);
            self.stats.record_verdict(&verdict);
            out.push(verdict);
        }
        out
    }

    fn stats(&self) -> NfStats {
        self.stats
    }

    fn fields_consulted(&self) -> crate::nf::FieldsConsulted {
        // Deliberately opaque, always: detection reads the payload (signature
        // scan) and TCP flags and updates the per-source SYN window — a
        // wildcard bypass would blind the detector to exactly the repetitive
        // traffic (floods) it exists to count.
        crate::nf::FieldsConsulted::Opaque
    }

    fn export_state(&self) -> NfStateSnapshot {
        NfStateSnapshot::Ids {
            syn_counts: self.syn_counts.clone(),
            window_start_nanos: self.window_start.as_nanos(),
        }
    }

    fn import_state(&mut self, state: NfStateSnapshot) {
        if let NfStateSnapshot::Ids {
            syn_counts,
            window_start_nanos,
        } = state
        {
            self.syn_counts = syn_counts;
            self.window_start = SimTime::from_nanos(window_start_nanos);
        }
    }

    // IDS import already replaces its window wholesale, so replace == import.
    fn replace_state(&mut self, state: NfStateSnapshot) {
        self.import_state(state);
    }

    fn drain_events(&mut self) -> Vec<NfEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::NfEventSeverity;
    use gnf_packet::builder;
    use gnf_types::MacAddr;

    fn syn_from(src: Ipv4Addr, port: u16) -> Packet {
        builder::tcp_syn(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            src,
            Ipv4Addr::new(203, 0, 113, 9),
            port,
            80,
        )
    }

    #[test]
    fn syn_flood_raises_a_single_alert_per_window() {
        let config = IdsConfig {
            syn_flood_threshold: 10,
            window_secs: 10,
            ..Default::default()
        };
        let mut ids = Ids::new("ids", config);
        let attacker = Ipv4Addr::new(10, 0, 0, 66);
        let ctx = NfContext::at(SimTime::from_secs(1));
        for i in 0..25 {
            let v = ids.process(syn_from(attacker, 10_000 + i), Direction::Ingress, &ctx);
            assert!(v.is_forward(), "IDS is monitor-only by default");
        }
        let events = ids.drain_events();
        assert_eq!(events.len(), 1, "one alert per source per window");
        assert_eq!(events[0].severity, NfEventSeverity::Alert);
        assert_eq!(events[0].category, "syn-flood");
        assert_eq!(ids.alerted_sources(), &[attacker]);
    }

    #[test]
    fn window_roll_resets_counts() {
        let config = IdsConfig {
            syn_flood_threshold: 5,
            window_secs: 10,
            ..Default::default()
        };
        let mut ids = Ids::new("ids", config);
        let src = Ipv4Addr::new(10, 0, 0, 5);
        let early = NfContext::at(SimTime::from_secs(1));
        for i in 0..4 {
            ids.process(syn_from(src, 20_000 + i), Direction::Ingress, &early);
        }
        // A new window starts; the earlier 4 SYNs no longer count.
        let late = NfContext::at(SimTime::from_secs(30));
        for i in 0..4 {
            ids.process(syn_from(src, 21_000 + i), Direction::Ingress, &late);
        }
        assert!(ids.drain_events().is_empty());
    }

    #[test]
    fn below_threshold_traffic_raises_nothing() {
        let mut ids = Ids::new("ids", IdsConfig::default());
        let ctx = NfContext::at(SimTime::from_secs(1));
        for i in 0..20 {
            ids.process(
                syn_from(Ipv4Addr::new(10, 0, 0, 2), 30_000 + i),
                Direction::Ingress,
                &ctx,
            );
        }
        assert!(ids.drain_events().is_empty());
    }

    #[test]
    fn signature_matching_detects_and_optionally_blocks() {
        let mut monitor = Ids::new("ids", IdsConfig::default());
        let ctx = NfContext::at(SimTime::from_secs(1));
        let malicious = builder::tcp_data(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(203, 0, 113, 9),
            40_000,
            80,
            b"xxxxMALWARE-TEST-SIGNATUREyyyy",
        );
        assert!(monitor
            .process(malicious.clone(), Direction::Ingress, &ctx)
            .is_forward());
        assert_eq!(monitor.signature_matches(), 1);
        let events = monitor.drain_events();
        assert_eq!(events[0].category, "malware-signature");

        let mut blocker = Ids::new(
            "ids",
            IdsConfig {
                block_on_signature: true,
                ..IdsConfig::default()
            },
        );
        assert!(blocker
            .process(malicious, Direction::Ingress, &ctx)
            .is_drop());
    }

    #[test]
    fn benign_payloads_pass() {
        let mut ids = Ids::new("ids", IdsConfig::default());
        let ctx = NfContext::at(SimTime::from_secs(1));
        let benign = builder::http_get(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(203, 0, 113, 9),
            40_100,
            "www.example",
            "/",
        );
        assert!(ids.process(benign, Direction::Ingress, &ctx).is_forward());
        assert_eq!(ids.signature_matches(), 0);
    }

    #[test]
    fn syn_window_state_migrates() {
        let config = IdsConfig {
            syn_flood_threshold: 10,
            window_secs: 60,
            ..Default::default()
        };
        let mut ids1 = Ids::new("ids", config.clone());
        let attacker = Ipv4Addr::new(10, 0, 0, 66);
        let ctx = NfContext::at(SimTime::from_secs(5));
        for i in 0..6 {
            ids1.process(syn_from(attacker, 11_000 + i), Direction::Ingress, &ctx);
        }
        let snapshot = ids1.export_state();

        // The remaining SYNs arrive after the migration; the alert still fires
        // because the count carried over.
        let mut ids2 = Ids::new("ids", config);
        ids2.import_state(snapshot);
        let ctx2 = NfContext::at(SimTime::from_secs(8));
        for i in 0..4 {
            ids2.process(syn_from(attacker, 12_000 + i), Direction::Ingress, &ctx2);
        }
        let events = ids2.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].category, "syn-flood");
    }
}
