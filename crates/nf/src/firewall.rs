//! The iptables-style packet firewall NF — the first of the three functions
//! demonstrated in the paper's mobility use case.
//!
//! The firewall evaluates an ordered rule list (first match wins) over the
//! packet's addresses, protocol, ports and direction, with an optional
//! stateful connection-tracking fast path: once a flow has been accepted its
//! return traffic is accepted without re-evaluating the rules, exactly like
//! `iptables -m state --state ESTABLISHED`.
//!
//! The connection-tracking table is the firewall's migratable state: when the
//! client roams, the table travels with it so established connections are not
//! reset by the move.

use crate::nf::{Direction, FieldsConsulted, NetworkFunction, NfContext, NfStats, Verdict};
use crate::spec::NfKind;
use crate::state::NfStateSnapshot;
use gnf_packet::{
    builder, FieldMask, FiveTuple, IpProtocol, MaskedTuple, Packet, PacketBatch, TcpFlags,
};
use gnf_types::SimTime;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// The fixed reason attached to every policy drop. One shared `&'static str`
/// keeps the flood-of-drops path allocation-free and lets wildcarded drop
/// entries replay the exact reason byte-for-byte.
const POLICY_DROP_REASON: &str = "firewall: policy drop";

/// An IPv4 prefix used in rule matching (e.g. `10.0.0.0/8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CidrV4 {
    /// Network address.
    pub addr: Ipv4Addr,
    /// Prefix length in bits (0–32).
    pub prefix: u8,
}

impl CidrV4 {
    /// Creates a prefix, clamping the length to 32.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Self {
        CidrV4 {
            addr,
            prefix: prefix.min(32),
        }
    }

    /// A /32 prefix matching exactly one address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Self::new(addr, 32)
    }

    /// The prefix matching every address.
    pub fn any() -> Self {
        Self::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.prefix == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(self.prefix));
        (u32::from(self.addr) & mask) == (u32::from(addr) & mask)
    }
}

impl fmt::Display for CidrV4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix)
    }
}

/// Port matching in a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortMatch {
    /// Matches any port.
    Any,
    /// Matches one port.
    Exact(u16),
    /// Matches an inclusive range.
    Range(u16, u16),
}

impl PortMatch {
    /// True when `port` matches.
    pub fn matches(&self, port: u16) -> bool {
        match self {
            PortMatch::Any => true,
            PortMatch::Exact(p) => *p == port,
            PortMatch::Range(lo, hi) => (*lo..=*hi).contains(&port),
        }
    }
}

/// Protocol matching in a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolMatch {
    /// Matches any protocol.
    Any,
    /// Matches TCP only.
    Tcp,
    /// Matches UDP only.
    Udp,
    /// Matches ICMP only.
    Icmp,
}

impl ProtocolMatch {
    /// True when the protocol matches.
    pub fn matches(&self, protocol: IpProtocol) -> bool {
        match self {
            ProtocolMatch::Any => true,
            ProtocolMatch::Tcp => protocol == IpProtocol::Tcp,
            ProtocolMatch::Udp => protocol == IpProtocol::Udp,
            ProtocolMatch::Icmp => protocol == IpProtocol::Icmp,
        }
    }
}

/// What a matching rule does with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleAction {
    /// Accept and forward the packet.
    Accept,
    /// Silently drop the packet.
    Drop,
    /// Drop the packet and actively signal the sender (TCP RST for TCP flows;
    /// other protocols are dropped silently).
    Reject,
}

/// One firewall rule. Fields set to their "any" value do not constrain the
/// match.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallRule {
    /// Rule name shown in statistics and notifications.
    pub name: String,
    /// Direction the rule applies to (`None` = both).
    pub direction: Option<Direction>,
    /// Source prefix.
    pub src: CidrV4,
    /// Destination prefix.
    pub dst: CidrV4,
    /// Protocol constraint.
    pub protocol: ProtocolMatch,
    /// Source port constraint.
    pub src_port: PortMatch,
    /// Destination port constraint.
    pub dst_port: PortMatch,
    /// Action on match.
    pub action: RuleAction,
}

impl FirewallRule {
    /// A rule matching everything, with the given name and action.
    pub fn any(name: impl Into<String>, action: RuleAction) -> Self {
        FirewallRule {
            name: name.into(),
            direction: None,
            src: CidrV4::any(),
            dst: CidrV4::any(),
            protocol: ProtocolMatch::Any,
            src_port: PortMatch::Any,
            dst_port: PortMatch::Any,
            action,
        }
    }

    /// Convenience: block a destination TCP port in the ingress direction.
    pub fn block_tcp_dst_port(name: impl Into<String>, port: u16) -> Self {
        FirewallRule {
            protocol: ProtocolMatch::Tcp,
            dst_port: PortMatch::Exact(port),
            direction: Some(Direction::Ingress),
            action: RuleAction::Drop,
            ..FirewallRule::any(name, RuleAction::Drop)
        }
    }

    /// Convenience: block every packet towards a destination prefix.
    pub fn block_dst(name: impl Into<String>, dst: CidrV4) -> Self {
        FirewallRule {
            dst,
            action: RuleAction::Drop,
            ..FirewallRule::any(name, RuleAction::Drop)
        }
    }

    /// True when the rule matches the given packet attributes.
    pub fn matches(&self, tuple: &FiveTuple, direction: Direction) -> bool {
        let mut scratch = FieldMask::EMPTY;
        self.matches_masked(tuple, direction, &mut scratch)
    }

    /// [`matches`], additionally recording into `mask` every five-tuple
    /// field the evaluation consulted. Constraints set to their "any" value
    /// (a /0 prefix, `PortMatch::Any`, `ProtocolMatch::Any`) read nothing,
    /// and evaluation short-circuits at the first failing test, so the mask
    /// is exactly the field set the outcome depended on — the property the
    /// megaflow cache's wildcard entries are built on.
    ///
    /// [`matches`]: FirewallRule::matches
    pub fn matches_masked(
        &self,
        tuple: &FiveTuple,
        direction: Direction,
        mask: &mut FieldMask,
    ) -> bool {
        if let Some(d) = self.direction {
            if d != direction {
                return false;
            }
        }
        let mut lens = MaskedTuple::new(tuple, mask);
        (self.src.prefix == 0 || self.src.contains(lens.src_ip()))
            && (self.dst.prefix == 0 || self.dst.contains(lens.dst_ip()))
            && (self.protocol == ProtocolMatch::Any || self.protocol.matches(lens.protocol()))
            && (self.src_port == PortMatch::Any || self.src_port.matches(lens.src_port()))
            && (self.dst_port == PortMatch::Any || self.dst_port.matches(lens.dst_port()))
    }
}

/// Firewall configuration: ordered rules plus the default policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirewallConfig {
    /// Rules evaluated in order; the first match decides.
    pub rules: Vec<FirewallRule>,
    /// Policy applied when no rule matches.
    pub default_action: RuleAction,
    /// Whether return traffic of accepted flows bypasses rule evaluation.
    pub track_connections: bool,
    /// Idle timeout after which tracked connections are forgotten.
    pub conntrack_idle_timeout_secs: u64,
}

impl Default for FirewallConfig {
    fn default() -> Self {
        FirewallConfig {
            rules: Vec::new(),
            default_action: RuleAction::Accept,
            track_connections: true,
            conntrack_idle_timeout_secs: 120,
        }
    }
}

impl FirewallConfig {
    /// An accept-by-default configuration with the given rules.
    pub fn with_rules(rules: Vec<FirewallRule>) -> Self {
        FirewallConfig {
            rules,
            ..Default::default()
        }
    }

    /// A drop-by-default (allowlist) configuration with the given rules.
    pub fn allowlist(rules: Vec<FirewallRule>) -> Self {
        FirewallConfig {
            rules,
            default_action: RuleAction::Drop,
            ..Default::default()
        }
    }
}

/// The firewall NF.
///
/// The rule list is pre-indexed at construction: rules pinned to one
/// protocol *and* one exact destination port are bucketed in a hash map, so
/// the common case (a packet matching no exact rule, or exactly its port's
/// bucket) evaluates O(bucket + wildcards) instead of O(rules). Rules that
/// cannot be keyed that way (any-protocol, port ranges/wildcards) stay in a
/// residual list. First-match-wins ordering is preserved exactly: candidates
/// from the bucket and the residual list are merged in original rule order.
pub struct Firewall {
    name: String,
    config: FirewallConfig,
    conntrack: HashMap<FiveTuple, SimTime>,
    /// Rule indices keyed by `(protocol number, exact destination port)`.
    exact_index: HashMap<(u8, u16), Vec<usize>>,
    /// Rule indices that cannot be pre-bucketed, in rule order.
    residual_rules: Vec<usize>,
    rule_hits: Vec<u64>,
    default_hits: u64,
    stats: NfStats,
    /// What the megaflow cache may assume about the last processed packet
    /// (see [`NetworkFunction::fields_consulted`]).
    last_consulted: FieldsConsulted,
}

impl Firewall {
    /// Creates a firewall from its configuration.
    pub fn new(name: &str, config: FirewallConfig) -> Self {
        let rule_count = config.rules.len();
        let mut exact_index: HashMap<(u8, u16), Vec<usize>> = HashMap::new();
        let mut residual_rules = Vec::new();
        for (ix, rule) in config.rules.iter().enumerate() {
            let protocol = match rule.protocol {
                ProtocolMatch::Tcp => Some(IpProtocol::Tcp.value()),
                ProtocolMatch::Udp => Some(IpProtocol::Udp.value()),
                ProtocolMatch::Icmp => Some(IpProtocol::Icmp.value()),
                ProtocolMatch::Any => None,
            };
            match (protocol, rule.dst_port) {
                (Some(proto), PortMatch::Exact(port)) => {
                    exact_index.entry((proto, port)).or_default().push(ix);
                }
                _ => residual_rules.push(ix),
            }
        }
        Firewall {
            name: name.to_string(),
            config,
            conntrack: HashMap::new(),
            exact_index,
            residual_rules,
            rule_hits: vec![0; rule_count],
            default_hits: 0,
            stats: NfStats::default(),
            last_consulted: FieldsConsulted::Opaque,
        }
    }

    /// Number of currently tracked connections.
    pub fn tracked_connections(&self) -> usize {
        self.conntrack.len()
    }

    /// Hit count per rule, in rule order.
    pub fn rule_hits(&self) -> &[u64] {
        &self.rule_hits
    }

    /// Hit count of the default policy.
    pub fn default_hits(&self) -> u64 {
        self.default_hits
    }

    /// The configured rules.
    pub fn rules(&self) -> &[FirewallRule] {
        &self.config.rules
    }

    /// Removes tracked connections idle for longer than the configured
    /// timeout. Returns how many entries were evicted.
    pub fn expire_idle_connections(&mut self, now: SimTime) -> usize {
        let timeout = self.config.conntrack_idle_timeout_secs;
        let before = self.conntrack.len();
        self.conntrack.retain(|_, last_seen| {
            now.duration_since(*last_seen).as_nanos() < timeout * 1_000_000_000
        });
        before - self.conntrack.len()
    }

    /// Finds the first matching rule index for a packet, or `None` when the
    /// default policy applies. Only the packet's `(protocol, dst port)`
    /// bucket and the residual (wildcard) rules are visited; the two
    /// candidate streams are merged in original rule order so the result is
    /// identical to a linear first-match walk over the full list.
    ///
    /// Additionally accumulates into `mask` every five-tuple field the walk
    /// consulted — each rule evaluated up to and including the first match
    /// contributes the fields its constraints read, and probing the exact
    /// `(protocol, dst port)` index itself consults those two fields
    /// whenever any rule is indexed.
    fn find_match_masked(
        &self,
        tuple: &FiveTuple,
        direction: Direction,
        mask: &mut FieldMask,
    ) -> Option<usize> {
        if !self.exact_index.is_empty() {
            // A different protocol or destination port could select a
            // different bucket (and thus different candidates), so both
            // fields constrain the outcome even when no bucket matches.
            mask.insert(FieldMask::PROTOCOL);
            mask.insert(FieldMask::DST_PORT);
        }
        let bucket: &[usize] = self
            .exact_index
            .get(&(tuple.protocol.value(), tuple.dst_port))
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let mut bucket_ix = 0;
        let mut residual_ix = 0;
        loop {
            let candidate = match (
                bucket.get(bucket_ix).copied(),
                self.residual_rules.get(residual_ix).copied(),
            ) {
                (Some(b), Some(r)) if b < r => {
                    bucket_ix += 1;
                    b
                }
                (_, Some(r)) => {
                    residual_ix += 1;
                    r
                }
                (Some(b), None) => {
                    bucket_ix += 1;
                    b
                }
                (None, None) => return None,
            };
            if self.config.rules[candidate].matches_masked(tuple, direction, mask) {
                return Some(candidate);
            }
        }
    }

    /// Encodes the evaluation path that decided a packet, for exact stats
    /// replay when a wildcard entry bypasses this firewall: 0 = the default
    /// policy applied, `n + 1` = rule `n` matched.
    fn path_token(matched: Option<usize>) -> u64 {
        matched.map(|ix| ix as u64 + 1).unwrap_or(0)
    }

    /// Replays the rule/default hit counters for `packets` packets decided
    /// by the evaluation path `token` names — shared by the forward- and
    /// drop-bypass credit paths so the counters stay identical to having
    /// walked the rules per packet.
    fn replay_path_hits(&mut self, token: u64, packets: u64) {
        if token == 0 {
            self.default_hits += packets;
        } else if let Some(hits) = self.rule_hits.get_mut(token as usize - 1) {
            *hits += packets;
        }
    }

    /// The wildcard report for a deny decided by the evaluation path
    /// `token` under `mask`: a pure drop for silent `Drop` actions when
    /// conntrack is off (the deny is then a function of the consulted
    /// fields and the immutable rule list alone), opaque otherwise — a
    /// `Reject` builds a reply from the packet's own headers, and a
    /// conntrack-on deny depends on the conntrack probe having missed.
    fn deny_consulted(&self, action: RuleAction, mask: FieldMask, token: u64) -> FieldsConsulted {
        if action == RuleAction::Drop && !self.config.track_connections {
            FieldsConsulted::PureDrop {
                mask,
                token,
                reason: Cow::Borrowed(POLICY_DROP_REASON),
            }
        } else {
            FieldsConsulted::Opaque
        }
    }

    /// Evaluates the rule list for a packet, counting the hit (white-box
    /// test helper; the processing paths inline this to also keep the mask).
    #[cfg(test)]
    fn evaluate(&mut self, tuple: &FiveTuple, direction: Direction) -> RuleAction {
        let mut scratch = FieldMask::EMPTY;
        match self.find_match_masked(tuple, direction, &mut scratch) {
            Some(ix) => {
                self.rule_hits[ix] += 1;
                self.config.rules[ix].action
            }
            None => {
                self.default_hits += 1;
                self.config.default_action
            }
        }
    }

    /// Turns a non-accept action into its verdict for `packet`.
    fn deny_verdict(action: RuleAction, packet: &Packet) -> Verdict {
        match action {
            // A fixed reason keeps the flood-of-drops path allocation-free;
            // the per-rule hit counters carry the detail.
            RuleAction::Drop => Verdict::Drop(POLICY_DROP_REASON.into()),
            RuleAction::Reject => match Self::reject_reply(packet) {
                Some(rst) => Verdict::Reply(vec![rst]),
                None => Verdict::Drop("firewall: policy reject".into()),
            },
            RuleAction::Accept => unreachable!("accept is not a deny action"),
        }
    }

    fn reject_reply(packet: &Packet) -> Option<Packet> {
        let tuple = packet.five_tuple()?;
        if tuple.protocol != IpProtocol::Tcp {
            return None;
        }
        let tcp = packet.tcp()?;
        let mut rst_flags = TcpFlags::RST;
        rst_flags.ack = true;
        // Send the RST back towards the packet's source, swapping the
        // Ethernet and IP endpoints.
        Some(builder::tcp_packet(
            packet.dst_mac(),
            packet.src_mac(),
            tuple.dst_ip,
            tuple.src_ip,
            tcp.dst_port,
            tcp.src_port,
            rst_flags,
            b"",
        ))
    }
}

impl NetworkFunction for Firewall {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> NfKind {
        NfKind::Firewall
    }

    fn process(&mut self, packet: Packet, direction: Direction, ctx: &NfContext) -> Verdict {
        self.stats.record_in(packet.len());
        let Some(tuple) = packet.five_tuple() else {
            // Non-IP traffic (e.g. ARP) is not firewalled. It also carries
            // no five-tuple to wildcard on.
            self.last_consulted = FieldsConsulted::Opaque;
            let verdict = Verdict::Forward(packet);
            self.stats.record_verdict(&verdict);
            return verdict;
        };

        // Stateful fast path: established flows pass without rule evaluation.
        // Consulting (and refreshing) conntrack makes the outcome depend on
        // mutable state, so no wildcard entry may bypass it.
        if self.config.track_connections {
            let key = tuple.canonical();
            if let Some(last_seen) = self.conntrack.get_mut(&key) {
                *last_seen = ctx.now;
                self.last_consulted = FieldsConsulted::Opaque;
                let verdict = Verdict::Forward(packet);
                self.stats.record_verdict(&verdict);
                return verdict;
            }
        }

        let mut mask = FieldMask::EMPTY;
        let matched = self.find_match_masked(&tuple, direction, &mut mask);
        let action = match matched {
            Some(ix) => {
                self.rule_hits[ix] += 1;
                self.config.rules[ix].action
            }
            None => {
                self.default_hits += 1;
                self.config.default_action
            }
        };
        let verdict = match action {
            RuleAction::Accept => {
                if self.config.track_connections {
                    // Accepting inserts a conntrack entry — a side effect
                    // future verdicts depend on (established flows bypass
                    // later rules), so the evaluation is not wildcardable.
                    self.conntrack.insert(tuple.canonical(), ctx.now);
                    self.last_consulted = FieldsConsulted::Opaque;
                } else {
                    // Untracked accept: a pure function of the consulted
                    // fields and the immutable rule list. The token names
                    // the evaluation path for exact stats replay.
                    self.last_consulted = FieldsConsulted::Pure {
                        mask,
                        token: Self::path_token(matched),
                    };
                }
                Verdict::Forward(packet)
            }
            deny => {
                // Silent drops without conntrack are pure functions of the
                // consulted fields, so the megaflow cache may retire
                // matching packets before the chain runs and replay the
                // deny counters through the token. Rejects and
                // conntrack-on denies stay opaque.
                self.last_consulted = self.deny_consulted(deny, mask, Self::path_token(matched));
                Self::deny_verdict(deny, &packet)
            }
        };
        self.stats.record_verdict(&verdict);
        verdict
    }

    fn process_batch(
        &mut self,
        batch: PacketBatch,
        direction: Direction,
        ctx: &NfContext,
    ) -> Vec<Verdict> {
        /// What the previous packet's flow resolved to — replayed for runs of
        /// consecutive same-flow packets without re-probing conntrack or
        /// re-walking the rules.
        enum Memo {
            /// Conntrack pass (hit, or just accepted and inserted): later
            /// packets of the run would hit conntrack too.
            Established,
            /// A rule matched and denies (or accepts untracked): the
            /// per-packet path re-evaluates and re-hits the same rule, so
            /// replaying bumps its counter directly.
            Rule(usize),
            /// No rule matched: the default policy re-applies per packet.
            Default,
        }
        let mut out = Vec::with_capacity(batch.len());
        let mut memo: Option<(FiveTuple, Memo)> = None;
        for packet in batch {
            self.stats.record_in(packet.len());
            let Some(tuple) = packet.five_tuple() else {
                // Non-IP traffic (e.g. ARP) is not firewalled.
                memo = None;
                self.last_consulted = FieldsConsulted::Opaque;
                let verdict = Verdict::Forward(packet);
                self.stats.record_verdict(&verdict);
                out.push(verdict);
                continue;
            };
            // The memo is keyed on the *exact* tuple: rule matching depends
            // on the packet's own endpoints/ports, so a reverse-direction
            // packet of the same flow (same canonical tuple) must NOT replay
            // the forward packet's rule resolution — it falls through to the
            // full path below (where conntrack, which is direction-agnostic,
            // is probed under the canonical key as usual).
            if let Some((memo_key, replay)) = &memo {
                if *memo_key == tuple {
                    // `last_consulted` stays as the run's first packet set
                    // it: same exact tuple, same evaluation path, same mask.
                    let verdict = match replay {
                        Memo::Established => Verdict::Forward(packet),
                        Memo::Rule(ix) => {
                            self.rule_hits[*ix] += 1;
                            match self.config.rules[*ix].action {
                                RuleAction::Accept => Verdict::Forward(packet),
                                deny => Self::deny_verdict(deny, &packet),
                            }
                        }
                        Memo::Default => {
                            self.default_hits += 1;
                            match self.config.default_action {
                                RuleAction::Accept => Verdict::Forward(packet),
                                deny => Self::deny_verdict(deny, &packet),
                            }
                        }
                    };
                    self.stats.record_verdict(&verdict);
                    out.push(verdict);
                    continue;
                }
            }

            // First packet of a run: full conntrack probe + rule walk,
            // exactly as the per-packet path.
            if self.config.track_connections {
                if let Some(last_seen) = self.conntrack.get_mut(&tuple.canonical()) {
                    *last_seen = ctx.now;
                    memo = Some((tuple, Memo::Established));
                    self.last_consulted = FieldsConsulted::Opaque;
                    let verdict = Verdict::Forward(packet);
                    self.stats.record_verdict(&verdict);
                    out.push(verdict);
                    continue;
                }
            }
            let mut mask = FieldMask::EMPTY;
            let matched = self.find_match_masked(&tuple, direction, &mut mask);
            let action = match matched {
                Some(ix) => {
                    self.rule_hits[ix] += 1;
                    self.config.rules[ix].action
                }
                None => {
                    self.default_hits += 1;
                    self.config.default_action
                }
            };
            let verdict = match action {
                RuleAction::Accept => {
                    if self.config.track_connections {
                        self.conntrack.insert(tuple.canonical(), ctx.now);
                        // The rest of the run rides the fresh conntrack entry.
                        memo = Some((tuple, Memo::Established));
                        self.last_consulted = FieldsConsulted::Opaque;
                    } else {
                        memo = Some((tuple, matched.map(Memo::Rule).unwrap_or(Memo::Default)));
                        self.last_consulted = FieldsConsulted::Pure {
                            mask,
                            token: Self::path_token(matched),
                        };
                    }
                    Verdict::Forward(packet)
                }
                deny => {
                    memo = Some((tuple, matched.map(Memo::Rule).unwrap_or(Memo::Default)));
                    self.last_consulted =
                        self.deny_consulted(deny, mask, Self::path_token(matched));
                    Self::deny_verdict(deny, &packet)
                }
            };
            self.stats.record_verdict(&verdict);
            out.push(verdict);
        }
        out
    }

    fn stats(&self) -> NfStats {
        self.stats
    }

    fn fields_consulted(&self) -> FieldsConsulted {
        self.last_consulted.clone()
    }

    fn credit_bypass(&mut self, token: u64, packets: u64, bytes: u64) {
        self.stats.record_in_batch(packets, bytes);
        self.stats.record_bypassed_forward(packets, bytes);
        // Replay the evaluation path the token names, so rule/default hit
        // counters stay identical to having processed every packet.
        self.replay_path_hits(token, packets);
    }

    fn credit_bypass_drop(&mut self, token: u64, packets: u64, bytes: u64) {
        self.stats.record_in_batch(packets, bytes);
        self.stats.record_bypassed_drop(packets);
        self.replay_path_hits(token, packets);
    }

    fn export_state(&self) -> NfStateSnapshot {
        let mut established: Vec<(FiveTuple, u64)> = self
            .conntrack
            .iter()
            .map(|(tuple, time)| (*tuple, time.as_nanos()))
            .collect();
        // Sort by (time, tuple) so the export is fully deterministic even
        // when many flows share a timestamp (e.g. one batch establishing
        // several connections).
        established.sort_by_key(|(tuple, t)| (*t, *tuple));
        NfStateSnapshot::Firewall { established }
    }

    fn import_state(&mut self, state: NfStateSnapshot) {
        if let NfStateSnapshot::Firewall { established } = state {
            for (tuple, nanos) in established {
                self.conntrack.insert(tuple, SimTime::from_nanos(nanos));
            }
        }
    }

    fn replace_state(&mut self, state: NfStateSnapshot) {
        if matches!(state, NfStateSnapshot::Firewall { .. }) {
            self.conntrack.clear();
        }
        self.import_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_types::MacAddr;

    fn client_ip() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }
    fn server_ip() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 10)
    }

    fn tcp_to_port(port: u16) -> Packet {
        builder::tcp_syn(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            server_ip(),
            40_000,
            port,
        )
    }

    fn ctx() -> NfContext {
        NfContext::at(SimTime::from_secs(1))
    }

    #[test]
    fn cidr_matching() {
        let net = CidrV4::new(Ipv4Addr::new(10, 0, 0, 0), 8);
        assert!(net.contains(Ipv4Addr::new(10, 200, 3, 4)));
        assert!(!net.contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(CidrV4::any().contains(Ipv4Addr::new(255, 255, 255, 255)));
        let host = CidrV4::host(client_ip());
        assert!(host.contains(client_ip()));
        assert!(!host.contains(server_ip()));
        assert_eq!(host.to_string(), "10.0.0.2/32");
        // Prefix lengths above 32 are clamped.
        assert_eq!(CidrV4::new(client_ip(), 40).prefix, 32);
    }

    #[test]
    fn port_and_protocol_matching() {
        assert!(PortMatch::Any.matches(1234));
        assert!(PortMatch::Exact(80).matches(80));
        assert!(!PortMatch::Exact(80).matches(81));
        assert!(PortMatch::Range(1000, 2000).matches(1500));
        assert!(!PortMatch::Range(1000, 2000).matches(2001));
        assert!(ProtocolMatch::Any.matches(IpProtocol::Udp));
        assert!(ProtocolMatch::Tcp.matches(IpProtocol::Tcp));
        assert!(!ProtocolMatch::Tcp.matches(IpProtocol::Udp));
        assert!(ProtocolMatch::Icmp.matches(IpProtocol::Icmp));
    }

    #[test]
    fn default_accept_forwards_everything() {
        let mut fw = Firewall::new("fw", FirewallConfig::default());
        let verdict = fw.process(tcp_to_port(80), Direction::Ingress, &ctx());
        assert!(verdict.is_forward());
        assert_eq!(fw.stats().packets_forwarded, 1);
        assert_eq!(fw.default_hits(), 1);
    }

    #[test]
    fn first_matching_rule_wins() {
        let config = FirewallConfig::with_rules(vec![
            FirewallRule::block_tcp_dst_port("block-http", 80),
            FirewallRule::any("accept-all", RuleAction::Accept),
        ]);
        let mut fw = Firewall::new("fw", config);
        assert!(fw
            .process(tcp_to_port(80), Direction::Ingress, &ctx())
            .is_drop());
        assert!(fw
            .process(tcp_to_port(443), Direction::Ingress, &ctx())
            .is_forward());
        assert_eq!(fw.rule_hits(), &[1, 1]);
    }

    #[test]
    fn direction_specific_rules_only_match_their_direction() {
        let config =
            FirewallConfig::with_rules(vec![FirewallRule::block_tcp_dst_port("block-http-up", 80)]);
        let mut fw = Firewall::new("fw", config);
        // Ingress (client → network) is blocked…
        assert!(fw
            .process(tcp_to_port(80), Direction::Ingress, &ctx())
            .is_drop());
        // …but the same packet seen on egress is not.
        assert!(fw
            .process(tcp_to_port(80), Direction::Egress, &ctx())
            .is_forward());
    }

    #[test]
    fn allowlist_drops_unmatched_traffic() {
        let allow_dns = FirewallRule {
            protocol: ProtocolMatch::Udp,
            dst_port: PortMatch::Exact(53),
            action: RuleAction::Accept,
            ..FirewallRule::any("allow-dns", RuleAction::Accept)
        };
        let mut fw = Firewall::new("fw", FirewallConfig::allowlist(vec![allow_dns]));
        let dns = builder::dns_query(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            Ipv4Addr::new(8, 8, 8, 8),
            5353,
            1,
            "example.com",
        );
        assert!(fw.process(dns, Direction::Ingress, &ctx()).is_forward());
        assert!(fw
            .process(tcp_to_port(22), Direction::Ingress, &ctx())
            .is_drop());
    }

    #[test]
    fn reject_sends_tcp_rst_back_to_the_sender() {
        let reject_ssh = FirewallRule {
            protocol: ProtocolMatch::Tcp,
            dst_port: PortMatch::Exact(22),
            action: RuleAction::Reject,
            ..FirewallRule::any("reject-ssh", RuleAction::Reject)
        };
        let mut fw = Firewall::new("fw", FirewallConfig::with_rules(vec![reject_ssh]));
        let verdict = fw.process(tcp_to_port(22), Direction::Ingress, &ctx());
        let Verdict::Reply(replies) = verdict else {
            panic!("expected a reply verdict");
        };
        assert_eq!(replies.len(), 1);
        let rst = &replies[0];
        let tcp = rst.tcp().unwrap();
        assert!(tcp.flags.rst);
        // The RST flows back towards the client.
        assert_eq!(rst.ipv4().unwrap().dst, client_ip());
        assert_eq!(tcp.dst_port, 40_000);
    }

    #[test]
    fn established_connections_bypass_later_blocking_rules() {
        // Accept by default, then track the flow; even if we subsequently see
        // the reverse direction with a rule that would block it, conntrack
        // accepts it first.
        let mut fw = Firewall::new(
            "fw",
            FirewallConfig::with_rules(vec![FirewallRule {
                direction: Some(Direction::Egress),
                action: RuleAction::Drop,
                ..FirewallRule::any("block-all-down", RuleAction::Drop)
            }]),
        );
        let up = tcp_to_port(443);
        assert!(fw.process(up, Direction::Ingress, &ctx()).is_forward());
        assert_eq!(fw.tracked_connections(), 1);
        // The response packet (reversed tuple) is allowed because the flow is
        // established.
        let down = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            client_ip(),
            443,
            40_000,
            b"response",
        );
        assert!(fw.process(down, Direction::Egress, &ctx()).is_forward());
    }

    #[test]
    fn conntrack_state_migrates() {
        let mut fw1 = Firewall::new("fw", FirewallConfig::default());
        fw1.process(tcp_to_port(443), Direction::Ingress, &ctx());
        assert_eq!(fw1.tracked_connections(), 1);
        let snapshot = fw1.export_state();
        assert!(!snapshot.is_empty());

        // Build the same firewall on the "target station" with a
        // drop-everything policy: only the imported established flow passes.
        let mut fw2 = Firewall::new(
            "fw",
            FirewallConfig {
                rules: vec![],
                default_action: RuleAction::Drop,
                track_connections: true,
                conntrack_idle_timeout_secs: 120,
            },
        );
        fw2.import_state(snapshot);
        assert_eq!(fw2.tracked_connections(), 1);
        let down = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            client_ip(),
            443,
            40_000,
            b"resumed",
        );
        assert!(fw2.process(down, Direction::Egress, &ctx()).is_forward());
        // A new, untracked flow is still dropped.
        assert!(fw2
            .process(tcp_to_port(80), Direction::Ingress, &ctx())
            .is_drop());
    }

    #[test]
    fn idle_connections_expire() {
        let mut fw = Firewall::new("fw", FirewallConfig::default());
        fw.process(tcp_to_port(443), Direction::Ingress, &ctx());
        assert_eq!(fw.tracked_connections(), 1);
        let evicted = fw.expire_idle_connections(SimTime::from_secs(300));
        assert_eq!(evicted, 1);
        assert_eq!(fw.tracked_connections(), 0);
        // Fresh traffic is unaffected by expiry.
        assert_eq!(fw.expire_idle_connections(SimTime::from_secs(301)), 0);
    }

    #[test]
    fn non_ip_traffic_is_forwarded_untouched() {
        let mut fw = Firewall::new(
            "fw",
            FirewallConfig::allowlist(vec![]), // drop everything IP
        );
        let arp = builder::arp_request(
            MacAddr::derived(1, 1),
            client_ip(),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        assert!(fw.process(arp, Direction::Ingress, &ctx()).is_forward());
    }

    #[test]
    fn indexed_evaluation_matches_a_linear_first_match_walk() {
        // A deliberately adversarial mix: exact-port rules (indexed), range
        // and wildcard rules (residual), interleaved so the merge order
        // matters, with conflicting actions.
        let mut rules = Vec::new();
        for i in 0..40u16 {
            let rule = match i % 4 {
                0 => FirewallRule {
                    protocol: ProtocolMatch::Tcp,
                    dst_port: PortMatch::Exact(1000 + i % 8),
                    action: RuleAction::Drop,
                    ..FirewallRule::any(format!("tcp-exact-{i}"), RuleAction::Drop)
                },
                1 => FirewallRule {
                    protocol: ProtocolMatch::Udp,
                    dst_port: PortMatch::Exact(1000 + i % 8),
                    action: RuleAction::Accept,
                    ..FirewallRule::any(format!("udp-exact-{i}"), RuleAction::Accept)
                },
                2 => FirewallRule {
                    protocol: ProtocolMatch::Any,
                    dst_port: PortMatch::Range(1000 + i % 4, 1004),
                    action: RuleAction::Reject,
                    ..FirewallRule::any(format!("range-{i}"), RuleAction::Reject)
                },
                _ => FirewallRule {
                    direction: Some(if i % 8 == 3 {
                        Direction::Ingress
                    } else {
                        Direction::Egress
                    }),
                    src: CidrV4::new(Ipv4Addr::new(10, 0, (i % 3) as u8, 0), 24),
                    action: RuleAction::Drop,
                    ..FirewallRule::any(format!("cidr-{i}"), RuleAction::Drop)
                },
            };
            rules.push(rule);
        }

        // Linear reference: the historical first-match walk.
        let reference = |tuple: &FiveTuple, direction: Direction| -> Option<usize> {
            rules.iter().position(|rule| rule.matches(tuple, direction))
        };

        let mut fw = Firewall::new(
            "fw",
            FirewallConfig {
                rules: rules.clone(),
                default_action: RuleAction::Accept,
                track_connections: false,
                conntrack_idle_timeout_secs: 60,
            },
        );
        // Sweep protocols × ports × source subnets × directions.
        for proto in [
            IpProtocol::Tcp,
            IpProtocol::Udp,
            IpProtocol::Icmp,
            IpProtocol::Other(89),
        ] {
            for port in 995..1012u16 {
                for src_octet in 0..4u8 {
                    for direction in [Direction::Ingress, Direction::Egress] {
                        let tuple = FiveTuple::new(
                            Ipv4Addr::new(10, 0, src_octet, 9),
                            server_ip(),
                            proto,
                            40_000,
                            port,
                        );
                        let hits_before = fw.rule_hits().to_vec();
                        let action = fw.evaluate(&tuple, direction);
                        let expected_rule = reference(&tuple, direction);
                        let expected_action = expected_rule
                            .map(|ix| rules[ix].action)
                            .unwrap_or(RuleAction::Accept);
                        assert_eq!(action, expected_action, "action for {tuple} {direction:?}");
                        // The hit must land on exactly the first matching rule.
                        if let Some(ix) = expected_rule {
                            assert_eq!(fw.rule_hits()[ix], hits_before[ix] + 1);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batched_reverse_direction_packet_is_reevaluated_not_replayed() {
        // An untracked allowlist firewall: forward-direction traffic to port
        // 80 is accepted, everything else (including the reverse direction,
        // whose dst port is the ephemeral one) hits the Drop default. The
        // reverse packet shares the forward packet's *canonical* tuple, so a
        // memo keyed canonically would wrongly replay the accept — a policy
        // bypass.
        let allow_http = FirewallRule {
            protocol: ProtocolMatch::Tcp,
            dst_port: PortMatch::Exact(80),
            action: RuleAction::Accept,
            ..FirewallRule::any("allow-http", RuleAction::Accept)
        };
        let config = FirewallConfig {
            rules: vec![allow_http],
            default_action: RuleAction::Drop,
            track_connections: false,
            conntrack_idle_timeout_secs: 60,
        };
        let forward = builder::tcp_syn(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            client_ip(),
            server_ip(),
            40_000,
            80,
        );
        let reverse = builder::tcp_data(
            MacAddr::derived(2, 1),
            MacAddr::derived(1, 1),
            server_ip(),
            client_ip(),
            80,
            40_000,
            b"resp",
        );
        let batch: PacketBatch = vec![forward.clone(), reverse.clone()].into();

        let mut per_packet = Firewall::new("fw", config.clone());
        let expected: Vec<Verdict> = [forward, reverse]
            .into_iter()
            .map(|p| per_packet.process(p, Direction::Ingress, &ctx()))
            .collect();
        assert!(expected[0].is_forward());
        assert!(expected[1].is_drop(), "reverse direction hits the default");

        let mut batched = Firewall::new("fw", config);
        let verdicts = batched.process_batch(batch, Direction::Ingress, &ctx());
        assert_eq!(verdicts, expected);
        assert_eq!(batched.rule_hits(), per_packet.rule_hits());
        assert_eq!(batched.default_hits(), per_packet.default_hits());
    }

    // ------------------------------------------------- wildcard reporting

    /// A conntrack-off config whose rules never match port-443 traffic: a
    /// TCP range rule (consults protocol + dst port) and a CIDR rule
    /// (consults dst ip).
    fn untracked_config() -> FirewallConfig {
        FirewallConfig {
            rules: vec![
                FirewallRule {
                    protocol: ProtocolMatch::Tcp,
                    dst_port: PortMatch::Range(10_000, 10_100),
                    action: RuleAction::Drop,
                    ..FirewallRule::any("range", RuleAction::Drop)
                },
                FirewallRule::block_dst("cidr", CidrV4::new(Ipv4Addr::new(192, 168, 0, 0), 16)),
            ],
            default_action: RuleAction::Accept,
            track_connections: false,
            conntrack_idle_timeout_secs: 60,
        }
    }

    #[test]
    fn untracked_accept_reports_a_pure_mask_of_the_consulted_fields() {
        let mut fw = Firewall::new("fw", untracked_config());
        assert_eq!(
            fw.fields_consulted(),
            FieldsConsulted::Opaque,
            "before any packet"
        );
        assert!(fw
            .process(tcp_to_port(443), Direction::Ingress, &ctx())
            .is_forward());
        let FieldsConsulted::Pure { mask, token } = fw.fields_consulted() else {
            panic!("untracked accept must be pure");
        };
        assert_eq!(token, 0, "default policy accepted");
        // The walk consulted protocol + dst port (range rule) and dst ip
        // (CIDR rule); the source side was never read.
        assert!(mask.contains(FieldMask::PROTOCOL));
        assert!(mask.contains(FieldMask::DST_PORT));
        assert!(mask.contains(FieldMask::DST_IP));
        assert!(!mask.contains(FieldMask::SRC_IP));
        assert!(!mask.contains(FieldMask::SRC_PORT));
    }

    #[test]
    fn accept_via_a_rule_reports_its_token() {
        let allow = FirewallRule {
            protocol: ProtocolMatch::Tcp,
            dst_port: PortMatch::Range(400, 500),
            action: RuleAction::Accept,
            ..FirewallRule::any("allow-https-ish", RuleAction::Accept)
        };
        let mut fw = Firewall::new(
            "fw",
            FirewallConfig {
                rules: vec![allow],
                default_action: RuleAction::Drop,
                track_connections: false,
                conntrack_idle_timeout_secs: 60,
            },
        );
        assert!(fw
            .process(tcp_to_port(443), Direction::Ingress, &ctx())
            .is_forward());
        let FieldsConsulted::Pure { token, .. } = fw.fields_consulted() else {
            panic!("rule accept must be pure");
        };
        assert_eq!(token, 1, "rule 0 matched");
    }

    #[test]
    fn conntrack_rejects_and_non_ip_are_opaque() {
        // Conntrack on: both the inserting accept and the established hit
        // are opaque.
        let mut fw = Firewall::new("fw", FirewallConfig::default());
        fw.process(tcp_to_port(443), Direction::Ingress, &ctx());
        assert_eq!(fw.fields_consulted(), FieldsConsulted::Opaque);
        fw.process(tcp_to_port(443), Direction::Ingress, &ctx());
        assert_eq!(fw.fields_consulted(), FieldsConsulted::Opaque);

        // Denies are opaque when conntrack is on (the deny depends on the
        // conntrack probe having missed).
        let mut fw = Firewall::new("fw", FirewallConfig::allowlist(vec![]));
        assert!(fw
            .process(tcp_to_port(443), Direction::Ingress, &ctx())
            .is_drop());
        assert_eq!(fw.fields_consulted(), FieldsConsulted::Opaque);

        // Rejects are opaque even without conntrack: the reply is built
        // from the packet's own headers.
        let reject_all = FirewallRule::any("reject-all", RuleAction::Reject);
        let mut fw = Firewall::new(
            "fw",
            FirewallConfig {
                rules: vec![reject_all],
                default_action: RuleAction::Accept,
                track_connections: false,
                conntrack_idle_timeout_secs: 60,
            },
        );
        assert!(fw
            .process(tcp_to_port(443), Direction::Ingress, &ctx())
            .is_reply());
        assert_eq!(fw.fields_consulted(), FieldsConsulted::Opaque);

        // Non-IP traffic is opaque (nothing to wildcard on).
        let mut fw = Firewall::new("fw", untracked_config());
        let arp = builder::arp_request(
            MacAddr::derived(1, 1),
            client_ip(),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        fw.process(arp, Direction::Ingress, &ctx());
        assert_eq!(fw.fields_consulted(), FieldsConsulted::Opaque);
    }

    #[test]
    fn untracked_silent_drop_reports_a_pure_drop_mask() {
        // The range rule of `untracked_config` (TCP dst 10_000–10_100)
        // denies this packet; without conntrack the deny is a pure function
        // of the consulted fields.
        let mut fw = Firewall::new("fw", untracked_config());
        let verdict = fw.process(tcp_to_port(10_050), Direction::Ingress, &ctx());
        let Verdict::Drop(reason) = &verdict else {
            panic!("expected a drop");
        };
        let FieldsConsulted::PureDrop {
            mask,
            token,
            reason: reported,
        } = fw.fields_consulted()
        else {
            panic!("untracked silent drop must be a pure drop");
        };
        assert_eq!(token, 1, "rule 0 denied");
        assert_eq!(&reported, reason, "the entry replays the exact reason");
        // The range rule consulted protocol + dst port; the CIDR rule was
        // never reached (first match wins).
        assert!(mask.contains(FieldMask::PROTOCOL));
        assert!(mask.contains(FieldMask::DST_PORT));
        assert!(!mask.contains(FieldMask::DST_IP));

        // A default-policy drop is pure too, with token 0.
        let mut fw = Firewall::new(
            "fw",
            FirewallConfig {
                track_connections: false,
                ..FirewallConfig::allowlist(vec![])
            },
        );
        assert!(fw
            .process(tcp_to_port(443), Direction::Ingress, &ctx())
            .is_drop());
        let FieldsConsulted::PureDrop { token, .. } = fw.fields_consulted() else {
            panic!("untracked default drop must be a pure drop");
        };
        assert_eq!(token, 0, "default policy denied");
    }

    #[test]
    fn credit_bypass_drop_replays_statistics_exactly() {
        let pkt = tcp_to_port(10_050); // denied by the range rule
        let mut processed = Firewall::new("fw", untracked_config());
        for _ in 0..5 {
            assert!(processed
                .process(pkt.clone(), Direction::Ingress, &ctx())
                .is_drop());
        }
        let mut credited = Firewall::new("fw", untracked_config());
        credited.process(pkt.clone(), Direction::Ingress, &ctx());
        let FieldsConsulted::PureDrop { token, .. } = credited.fields_consulted() else {
            panic!("expected a pure drop report");
        };
        credited.credit_bypass_drop(token, 4, 4 * pkt.len() as u64);
        assert_eq!(credited.stats(), processed.stats());
        assert_eq!(credited.rule_hits(), processed.rule_hits());
        assert_eq!(credited.default_hits(), processed.default_hits());
    }

    #[test]
    fn credit_bypass_replays_statistics_exactly() {
        let pkt = tcp_to_port(443);
        // Reference: process the packet 5 times through the full path.
        let mut processed = Firewall::new("fw", untracked_config());
        for _ in 0..5 {
            assert!(processed
                .process(pkt.clone(), Direction::Ingress, &ctx())
                .is_forward());
        }
        // Bypassed: process once (producing the token), then credit 4 more.
        let mut credited = Firewall::new("fw", untracked_config());
        credited.process(pkt.clone(), Direction::Ingress, &ctx());
        let FieldsConsulted::Pure { token, .. } = credited.fields_consulted() else {
            panic!("expected a pure report");
        };
        credited.credit_bypass(token, 4, 4 * pkt.len() as u64);
        assert_eq!(credited.stats(), processed.stats());
        assert_eq!(credited.rule_hits(), processed.rule_hits());
        assert_eq!(credited.default_hits(), processed.default_hits());
    }

    #[test]
    fn batched_evaluation_reports_the_same_purity_as_per_packet() {
        let pkt = tcp_to_port(443);
        let mut per_packet = Firewall::new("fw", untracked_config());
        per_packet.process(pkt.clone(), Direction::Ingress, &ctx());
        let expected = per_packet.fields_consulted();
        assert!(matches!(expected, FieldsConsulted::Pure { .. }));

        let mut batched = Firewall::new("fw", untracked_config());
        let batch: PacketBatch = vec![pkt.clone(), pkt.clone(), pkt].into();
        batched.process_batch(batch, Direction::Ingress, &ctx());
        assert_eq!(batched.fields_consulted(), expected);
    }

    #[test]
    fn mismatched_state_import_is_ignored() {
        let mut fw = Firewall::new("fw", FirewallConfig::default());
        fw.import_state(NfStateSnapshot::Stateless);
        fw.import_state(NfStateSnapshot::HttpCache { entries: vec![] });
        assert_eq!(fw.tracked_connections(), 0);
    }
}
