//! The [`NetworkFunction`] trait: the contract every GNF network function
//! implements, together with the verdict, direction, context, statistics and
//! event types shared by all NFs.
//!
//! The paper encapsulates each NF in its own container and connects it to the
//! local software switch with an ingress and an egress veth pair. In this
//! reproduction the "container" boundary is the trait object boundary: the
//! Agent instantiates a `Box<dyn NetworkFunction>` per container, and the
//! switch hands packets to it tagged with the direction they entered from.

use crate::spec::NfKind;
use crate::state::NfStateSnapshot;
use gnf_packet::{FieldMask, Packet, PacketBatch};
use gnf_types::{ClientId, SimTime};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Which side of the client's traffic a packet was captured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Traffic sent *by* the client towards the network (upstream).
    Ingress,
    /// Traffic destined *to* the client (downstream).
    Egress,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(&self) -> Direction {
        match self {
            Direction::Ingress => Direction::Egress,
            Direction::Egress => Direction::Ingress,
        }
    }
}

/// What an NF decided to do with a packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Forward the (possibly rewritten) packet along the chain.
    Forward(Packet),
    /// Drop the packet. The reason is human-readable text recorded in the
    /// NF's statistics and, for notable drops, surfaced as a notification.
    /// It is a `Cow` so the common case — a fixed policy reason emitted on
    /// every dropped packet of a flood — borrows a `&'static str` instead of
    /// heap-allocating per drop; only genuinely dynamic reasons pay for a
    /// `String`.
    Drop(Cow<'static, str>),
    /// Consume the packet and instead send these packets back towards its
    /// source (e.g. an HTTP 403 page or a locally answered DNS response).
    Reply(Vec<Packet>),
}

impl Verdict {
    /// True if the verdict forwards a packet.
    pub fn is_forward(&self) -> bool {
        matches!(self, Verdict::Forward(_))
    }

    /// True if the verdict drops the packet.
    pub fn is_drop(&self) -> bool {
        matches!(self, Verdict::Drop(_))
    }

    /// True if the verdict replies on behalf of the destination.
    pub fn is_reply(&self) -> bool {
        matches!(self, Verdict::Reply(_))
    }

    /// The forwarded packet, if any.
    pub fn into_forwarded(self) -> Option<Packet> {
        match self {
            Verdict::Forward(p) => Some(p),
            _ => None,
        }
    }
}

/// Per-packet context handed to the NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NfContext {
    /// Current virtual time.
    pub now: SimTime,
    /// The client this NF instance is attached to, when known.
    pub client: Option<ClientId>,
}

impl NfContext {
    /// Context with just a timestamp.
    pub fn at(now: SimTime) -> Self {
        NfContext { now, client: None }
    }

    /// Context with a timestamp and client.
    pub fn for_client(now: SimTime, client: ClientId) -> Self {
        NfContext {
            now,
            client: Some(client),
        }
    }
}

/// Counters every NF maintains; displayed by the UI and used by experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NfStats {
    /// Packets handed to the NF.
    pub packets_in: u64,
    /// Packets forwarded onwards.
    pub packets_forwarded: u64,
    /// Packets dropped.
    pub packets_dropped: u64,
    /// Packets answered locally (replies generated).
    pub packets_replied: u64,
    /// Bytes handed to the NF.
    pub bytes_in: u64,
    /// Bytes forwarded onwards.
    pub bytes_out: u64,
}

impl NfStats {
    /// Records an observed input packet of `len` bytes.
    pub fn record_in(&mut self, len: usize) {
        self.packets_in += 1;
        self.bytes_in += len as u64;
    }

    /// Records a whole batch of observed input packets in one add.
    pub fn record_in_batch(&mut self, packets: u64, bytes: u64) {
        self.packets_in += packets;
        self.bytes_in += bytes;
    }

    /// Records the verdict applied to a packet.
    pub fn record_verdict(&mut self, verdict: &Verdict) {
        match verdict {
            Verdict::Forward(p) => {
                self.packets_forwarded += 1;
                self.bytes_out += p.len() as u64;
            }
            Verdict::Drop(_) => self.packets_dropped += 1,
            Verdict::Reply(_) => self.packets_replied += 1,
        }
    }

    /// Records `packets` forwarded packets totalling `bytes` in one add —
    /// the megaflow bypass path's equivalent of `record_verdict(Forward)`
    /// per packet (bypassed packets are forwarded unchanged, so bytes out
    /// equal bytes in).
    pub fn record_bypassed_forward(&mut self, packets: u64, bytes: u64) {
        self.packets_forwarded += packets;
        self.bytes_out += bytes;
    }

    /// Records `packets` dropped packets in one add — the megaflow drop-entry
    /// path's equivalent of `record_verdict(Drop)` per packet (dropped
    /// packets produce no output bytes).
    pub fn record_bypassed_drop(&mut self, packets: u64) {
        self.packets_dropped += packets;
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &NfStats) {
        self.packets_in += other.packets_in;
        self.packets_forwarded += other.packets_forwarded;
        self.packets_dropped += other.packets_dropped;
        self.packets_replied += other.packets_replied;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
    }
}

/// What the megaflow (wildcard) cache may assume about an NF's handling of
/// the most recently processed packet — the NF's contribution to a wildcard
/// cache entry (see [`NetworkFunction::fields_consulted`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldsConsulted {
    /// The verdict was `Forward` of the **unchanged** packet, it is a pure
    /// function of the masked five-tuple fields plus the NF's immutable
    /// configuration, and processing had no side effects beyond statistics.
    /// Any packet agreeing on the masked fields may therefore bypass the NF,
    /// with its statistics replayed through
    /// [`NetworkFunction::credit_bypass`] using `token`.
    Pure {
        /// The five-tuple fields the evaluation consulted.
        mask: FieldMask,
        /// NF-defined replay token identifying the evaluation path taken
        /// (e.g. which rule matched), passed back to `credit_bypass`.
        token: u64,
    },
    /// The verdict was a **silent `Drop`**, it is a pure function of the
    /// masked five-tuple fields plus the NF's immutable configuration, and
    /// processing had no side effects beyond statistics. Any packet agreeing
    /// on the masked fields may therefore be dropped without consulting the
    /// NF: its statistics are replayed through
    /// [`NetworkFunction::credit_bypass_drop`] using `token`, and `reason` is
    /// replayed verbatim as the drop reason. Verdicts that build a reply
    /// from the packet (e.g. a firewall `Reject`) must **not** use this
    /// variant — only silent drops whose reason is fixed per evaluation
    /// path.
    PureDrop {
        /// The five-tuple fields the evaluation consulted.
        mask: FieldMask,
        /// NF-defined replay token identifying the evaluation path taken
        /// (e.g. which rule denied), passed back to `credit_bypass_drop`.
        token: u64,
        /// The drop reason every matching packet would receive.
        reason: Cow<'static, str>,
    },
    /// The NF consulted mutable state (conntrack, token buckets, detection
    /// windows), read the payload, modified the packet, or produced side
    /// effects — no wildcard entry may bypass it.
    Opaque,
}

/// Severity of an NF-originated event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NfEventSeverity {
    /// Routine informational event.
    Info,
    /// Anomalous but expected event (e.g. rate limit engaged).
    Warning,
    /// Security-relevant event (e.g. intrusion attempt detected).
    Alert,
}

/// An event an NF wants relayed (via its Agent) to the Manager — the paper's
/// "intrusion attempt or detected malware" notifications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NfEvent {
    /// Severity class.
    pub severity: NfEventSeverity,
    /// Short machine-readable category (e.g. `syn-flood`, `blocked-url`).
    pub category: String,
    /// Human-readable description.
    pub message: String,
}

impl NfEvent {
    /// Creates an alert-severity event.
    pub fn alert(category: &str, message: impl Into<String>) -> Self {
        NfEvent {
            severity: NfEventSeverity::Alert,
            category: category.to_string(),
            message: message.into(),
        }
    }

    /// Creates a warning-severity event.
    pub fn warning(category: &str, message: impl Into<String>) -> Self {
        NfEvent {
            severity: NfEventSeverity::Warning,
            category: category.to_string(),
            message: message.into(),
        }
    }

    /// Creates an info-severity event.
    pub fn info(category: &str, message: impl Into<String>) -> Self {
        NfEvent {
            severity: NfEventSeverity::Info,
            category: category.to_string(),
            message: message.into(),
        }
    }
}

/// The contract implemented by every GNF network function.
///
/// Implementations must be deterministic functions of their configuration,
/// their accumulated state and the packets they have seen — all sources of
/// randomness (e.g. the DNS load balancer's backend choice) are seeded
/// explicitly so that experiment runs are reproducible.
pub trait NetworkFunction: Send {
    /// The NF's human-readable instance name (e.g. `firewall-client-3`).
    fn name(&self) -> &str;

    /// Which kind of NF this is.
    fn kind(&self) -> NfKind;

    /// Processes one packet travelling in `direction`, returning a verdict.
    fn process(&mut self, packet: Packet, direction: Direction, ctx: &NfContext) -> Verdict;

    /// Processes a batch of packets travelling in `direction`, returning one
    /// verdict per packet, aligned with the batch order.
    ///
    /// The default implementation falls back to per-packet [`process`] calls
    /// and is always correct. Implementations may override it to amortize
    /// per-packet work (one state probe per run of same-flow packets, one
    /// token refill per batch, ...) — but an override MUST be observably
    /// equivalent to the fallback: same verdicts in the same order, same
    /// final NF state, same statistics and events. The batch-equivalence
    /// property tests enforce this for the shipped NFs.
    ///
    /// [`process`]: NetworkFunction::process
    fn process_batch(
        &mut self,
        batch: PacketBatch,
        direction: Direction,
        ctx: &NfContext,
    ) -> Vec<Verdict> {
        batch
            .into_iter()
            .map(|packet| self.process(packet, direction, ctx))
            .collect()
    }

    /// Cumulative statistics.
    fn stats(&self) -> NfStats;

    /// Reports what the megaflow (wildcard) cache may assume about the most
    /// recently processed packet: a [`FieldsConsulted::Pure`] field mask
    /// under which the NF can be bypassed, a [`FieldsConsulted::PureDrop`]
    /// mask under which matching packets can be dropped without running the
    /// NF, or [`FieldsConsulted::Opaque`].
    ///
    /// The default is `Opaque` — always correct, never wildcarded. An NF
    /// reporting `Pure` (or `PureDrop`) enters a contract: for **any**
    /// packet agreeing with the last one on the masked fields, `process`
    /// would have returned `Forward` of the unchanged packet (respectively
    /// `Drop` with the reported reason), left no state behind, raised no
    /// events, and changed only statistics — which [`credit_bypass`]
    /// (respectively [`credit_bypass_drop`]) must replay exactly.
    ///
    /// [`credit_bypass`]: NetworkFunction::credit_bypass
    /// [`credit_bypass_drop`]: NetworkFunction::credit_bypass_drop
    fn fields_consulted(&self) -> FieldsConsulted {
        FieldsConsulted::Opaque
    }

    /// Replays the statistics of `packets` bypassed packets totalling
    /// `bytes`, exactly as if each had been processed and forwarded. Called
    /// only with a `token` this NF previously reported in a
    /// [`FieldsConsulted::Pure`]; NFs that never report `Pure` keep the
    /// default no-op.
    fn credit_bypass(&mut self, _token: u64, _packets: u64, _bytes: u64) {}

    /// Replays the statistics of `packets` bypassed **dropped** packets
    /// totalling `bytes`, exactly as if each had been processed and dropped
    /// by this NF. Called only with a `token` this NF previously reported in
    /// a [`FieldsConsulted::PureDrop`]; NFs that never report `PureDrop`
    /// keep the default no-op.
    fn credit_bypass_drop(&mut self, _token: u64, _packets: u64, _bytes: u64) {}

    /// Exports the NF's dynamic state for migration to another station.
    ///
    /// The default implementation reports an empty state (stateless NF).
    fn export_state(&self) -> NfStateSnapshot {
        NfStateSnapshot::Stateless
    }

    /// Imports dynamic state previously produced by [`export_state`]
    /// (on the migration target). State of a mismatched kind is ignored.
    ///
    /// [`export_state`]: NetworkFunction::export_state
    fn import_state(&mut self, _state: NfStateSnapshot) {}

    /// Replaces the NF's dynamic state wholesale with `state`, discarding
    /// anything accumulated locally.
    ///
    /// [`import_state`] merges (it only ever inserts), which is right for
    /// layering a checkpoint onto a freshly created NF but wrong for applying
    /// a pre-copy delta: entries *removed* between baseline and cutover must
    /// disappear on the target too. Stateful NFs override this to clear their
    /// tables before importing; the default (import into a fresh NF) is
    /// correct for stateless NFs.
    ///
    /// [`import_state`]: NetworkFunction::import_state
    fn replace_state(&mut self, state: NfStateSnapshot) {
        self.import_state(state);
    }

    /// Drains any pending events to be relayed to the Manager.
    ///
    /// The default implementation returns no events.
    fn drain_events(&mut self) -> Vec<NfEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_packet::builder;
    use gnf_types::MacAddr;
    use std::net::Ipv4Addr;

    fn sample_packet() -> Packet {
        builder::udp_packet(
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 3),
            1000,
            2000,
            b"abc",
        )
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Ingress.reverse(), Direction::Egress);
        assert_eq!(Direction::Egress.reverse(), Direction::Ingress);
    }

    #[test]
    fn verdict_predicates() {
        let fwd = Verdict::Forward(sample_packet());
        let drop = Verdict::Drop("policy".into());
        let reply = Verdict::Reply(vec![sample_packet()]);
        assert!(fwd.is_forward() && !fwd.is_drop() && !fwd.is_reply());
        assert!(drop.is_drop());
        assert!(reply.is_reply());
        assert!(fwd.into_forwarded().is_some());
        assert!(drop.into_forwarded().is_none());
    }

    #[test]
    fn stats_accumulate_per_verdict() {
        let mut stats = NfStats::default();
        let pkt = sample_packet();
        stats.record_in(pkt.len());
        stats.record_verdict(&Verdict::Forward(pkt.clone()));
        stats.record_in(pkt.len());
        stats.record_verdict(&Verdict::Drop("x".into()));
        stats.record_in(pkt.len());
        stats.record_verdict(&Verdict::Reply(vec![pkt.clone()]));
        assert_eq!(stats.packets_in, 3);
        assert_eq!(stats.packets_forwarded, 1);
        assert_eq!(stats.packets_dropped, 1);
        assert_eq!(stats.packets_replied, 1);
        assert_eq!(stats.bytes_in, 3 * pkt.len() as u64);
        assert_eq!(stats.bytes_out, pkt.len() as u64);

        let mut merged = NfStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.packets_in, 6);

        // Drop-bypass replay mirrors per-packet drop accounting: packets in,
        // packets dropped, no output bytes.
        let mut bypassed = NfStats::default();
        bypassed.record_in_batch(2, 100);
        bypassed.record_bypassed_drop(2);
        assert_eq!(bypassed.packets_in, 2);
        assert_eq!(bypassed.packets_dropped, 2);
        assert_eq!(bypassed.bytes_out, 0);
    }

    #[test]
    fn events_carry_severity() {
        let e = NfEvent::alert("intrusion", "SYN flood from 10.0.0.9");
        assert_eq!(e.severity, NfEventSeverity::Alert);
        assert!(NfEventSeverity::Alert > NfEventSeverity::Warning);
        assert!(NfEventSeverity::Warning > NfEventSeverity::Info);
        assert_eq!(NfEvent::info("x", "y").severity, NfEventSeverity::Info);
        assert_eq!(
            NfEvent::warning("x", "y").severity,
            NfEventSeverity::Warning
        );
    }

    #[test]
    fn context_constructors() {
        let ctx = NfContext::at(SimTime::from_secs(1));
        assert_eq!(ctx.client, None);
        let ctx = NfContext::for_client(SimTime::from_secs(2), ClientId::new(9));
        assert_eq!(ctx.client, Some(ClientId::new(9)));
    }
}
