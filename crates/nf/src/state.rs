//! Serializable snapshots of NF dynamic state, used when a function roams
//! with its client: the old instance exports its state, the state travels to
//! the target station inside the migration protocol, and the new instance
//! imports it before steering is switched over.

use gnf_packet::FiveTuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Snapshot of one NF instance's dynamic state.
///
/// Configuration is *not* part of the snapshot — the target Agent recreates
/// the NF from its [`crate::spec::NfSpec`] and then layers this state on top.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NfStateSnapshot {
    /// The NF carries no dynamic state worth migrating.
    Stateless,
    /// Firewall connection-tracking table: established flows and the virtual
    /// time (nanoseconds) they were last seen.
    Firewall {
        /// Established (allowed) flows.
        established: Vec<(FiveTuple, u64)>,
    },
    /// Rate limiter bucket levels per flow key.
    RateLimiter {
        /// Remaining tokens per canonical flow.
        buckets: Vec<(FiveTuple, f64)>,
        /// Nanosecond timestamp of the last refill.
        last_refill_nanos: u64,
    },
    /// NAT translation table.
    Nat {
        /// Forward mappings: original five-tuple → translated source port.
        mappings: Vec<(FiveTuple, u16)>,
        /// Next ephemeral port to allocate.
        next_port: u16,
    },
    /// DNS load-balancer scheduling state.
    DnsLoadBalancer {
        /// Index of the next backend for round-robin.
        next_backend: usize,
        /// Outstanding per-backend assignment counts.
        assignments: Vec<(Ipv4Addr, u64)>,
    },
    /// Cached HTTP responses (URL → serialized response bytes).
    HttpCache {
        /// Cached entries in LRU order (least recent first).
        entries: Vec<(String, Vec<u8>)>,
    },
    /// IDS per-source counters.
    Ids {
        /// SYN counts per source address in the current window.
        syn_counts: BTreeMap<Ipv4Addr, u64>,
        /// Window start, nanoseconds of virtual time.
        window_start_nanos: u64,
    },
}

impl NfStateSnapshot {
    /// Approximate serialized size in bytes, used by the migration cost model
    /// (transferring more NF state takes longer).
    pub fn approximate_size_bytes(&self) -> usize {
        match self {
            NfStateSnapshot::Stateless => 0,
            NfStateSnapshot::Firewall { established } => established.len() * 24,
            NfStateSnapshot::RateLimiter { buckets, .. } => buckets.len() * 28 + 8,
            NfStateSnapshot::Nat { mappings, .. } => mappings.len() * 22 + 2,
            NfStateSnapshot::DnsLoadBalancer { assignments, .. } => assignments.len() * 12 + 8,
            NfStateSnapshot::HttpCache { entries } => entries
                .iter()
                .map(|(url, body)| url.len() + body.len())
                .sum(),
            NfStateSnapshot::Ids { syn_counts, .. } => syn_counts.len() * 12 + 8,
        }
    }

    /// True when there is nothing to transfer.
    pub fn is_empty(&self) -> bool {
        self.approximate_size_bytes() == 0
    }
}

/// Incremental difference between two [`NfStateSnapshot`]s of the same NF,
/// used by pre-copy migration: the source ships a full baseline ahead of
/// switchover, keeps serving, and at cutover ships only this delta — so the
/// data that crosses the wire during the service-affecting window scales with
/// churn, not with table size.
///
/// The contract is `delta.apply(&base) == current` whenever
/// `delta == NfStateDelta::diff(&base, &current)`; `apply` reproduces each
/// NF's canonical export ordering so the result compares byte-for-byte with a
/// fresh monolithic checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NfStateDelta {
    /// The state did not change since the baseline.
    Unchanged,
    /// Conntrack churn: new/refreshed flows and flows pruned by the idle
    /// timeout.
    Firewall {
        /// Flows added or whose last-seen timestamp advanced.
        upserts: Vec<(FiveTuple, u64)>,
        /// Flows present in the baseline but since pruned.
        removals: Vec<FiveTuple>,
    },
    /// Token-bucket churn plus the refill clock.
    RateLimiter {
        /// Buckets added or whose level changed.
        upserts: Vec<(FiveTuple, f64)>,
        /// Buckets dropped since the baseline.
        removals: Vec<FiveTuple>,
        /// Current refill timestamp (always shipped: it advances with time).
        last_refill_nanos: u64,
    },
    /// Translation-table churn plus the port allocator cursor.
    Nat {
        /// Mappings added since the baseline.
        upserts: Vec<(FiveTuple, u16)>,
        /// Mappings removed since the baseline.
        removals: Vec<FiveTuple>,
        /// Current ephemeral-port cursor.
        next_port: u16,
    },
    /// Scheduling-state churn. The assignment key sequence is the backend
    /// list, which is configuration and therefore identical on both sides;
    /// only changed counts travel.
    DnsLoadBalancer {
        /// Index of the next round-robin backend.
        next_backend: usize,
        /// Backends whose assignment count changed.
        upserts: Vec<(Ipv4Addr, u64)>,
    },
    /// Per-source counter churn plus the window clock.
    Ids {
        /// Sources added or whose SYN count changed.
        upserts: Vec<(Ipv4Addr, u64)>,
        /// Sources cleared since the baseline (window reset).
        removals: Vec<Ipv4Addr>,
        /// Current window start.
        window_start_nanos: u64,
    },
    /// Fallback for order-sensitive state (the LRU-ordered HTTP cache) and
    /// for variant mismatches: ship the full current snapshot.
    Full(NfStateSnapshot),
}

impl NfStateDelta {
    /// Computes the delta that turns `base` into `current`.
    pub fn diff(base: &NfStateSnapshot, current: &NfStateSnapshot) -> Self {
        if base == current {
            return NfStateDelta::Unchanged;
        }
        match (base, current) {
            (
                NfStateSnapshot::Firewall { established: b },
                NfStateSnapshot::Firewall { established: c },
            ) => {
                let before: BTreeMap<FiveTuple, u64> = b.iter().copied().collect();
                let after: BTreeMap<FiveTuple, u64> = c.iter().copied().collect();
                let upserts = after
                    .iter()
                    .filter(|(k, v)| before.get(*k) != Some(v))
                    .map(|(k, v)| (*k, *v))
                    .collect();
                let removals = before
                    .keys()
                    .filter(|k| !after.contains_key(*k))
                    .copied()
                    .collect();
                NfStateDelta::Firewall { upserts, removals }
            }
            (
                NfStateSnapshot::RateLimiter { buckets: b, .. },
                NfStateSnapshot::RateLimiter {
                    buckets: c,
                    last_refill_nanos,
                },
            ) => {
                let before: BTreeMap<FiveTuple, f64> = b.iter().copied().collect();
                let after: BTreeMap<FiveTuple, f64> = c.iter().copied().collect();
                let upserts = after
                    .iter()
                    .filter(|(k, v)| before.get(*k) != Some(v))
                    .map(|(k, v)| (*k, *v))
                    .collect();
                let removals = before
                    .keys()
                    .filter(|k| !after.contains_key(*k))
                    .copied()
                    .collect();
                NfStateDelta::RateLimiter {
                    upserts,
                    removals,
                    last_refill_nanos: *last_refill_nanos,
                }
            }
            (
                NfStateSnapshot::Nat { mappings: b, .. },
                NfStateSnapshot::Nat {
                    mappings: c,
                    next_port,
                },
            ) => {
                let before: BTreeMap<FiveTuple, u16> = b.iter().copied().collect();
                let after: BTreeMap<FiveTuple, u16> = c.iter().copied().collect();
                let upserts = after
                    .iter()
                    .filter(|(k, v)| before.get(*k) != Some(v))
                    .map(|(k, v)| (*k, *v))
                    .collect();
                let removals = before
                    .keys()
                    .filter(|k| !after.contains_key(*k))
                    .copied()
                    .collect();
                NfStateDelta::Nat {
                    upserts,
                    removals,
                    next_port: *next_port,
                }
            }
            (
                NfStateSnapshot::DnsLoadBalancer { assignments: b, .. },
                NfStateSnapshot::DnsLoadBalancer {
                    next_backend,
                    assignments: c,
                },
            ) => {
                // The key sequence is the configured backend list on both
                // sides; a differing sequence means the baseline is not
                // comparable, so fall back to a full snapshot.
                if b.len() != c.len() || b.iter().zip(c).any(|((kb, _), (kc, _))| kb != kc) {
                    return NfStateDelta::Full(current.clone());
                }
                let upserts = b
                    .iter()
                    .zip(c)
                    .filter(|((_, vb), (_, vc))| vb != vc)
                    .map(|(_, (k, v))| (*k, *v))
                    .collect();
                NfStateDelta::DnsLoadBalancer {
                    next_backend: *next_backend,
                    upserts,
                }
            }
            (
                NfStateSnapshot::Ids { syn_counts: b, .. },
                NfStateSnapshot::Ids {
                    syn_counts: c,
                    window_start_nanos,
                },
            ) => {
                let upserts = c
                    .iter()
                    .filter(|(k, v)| b.get(*k) != Some(v))
                    .map(|(k, v)| (*k, *v))
                    .collect();
                let removals = b.keys().filter(|k| !c.contains_key(*k)).copied().collect();
                NfStateDelta::Ids {
                    upserts,
                    removals,
                    window_start_nanos: *window_start_nanos,
                }
            }
            _ => NfStateDelta::Full(current.clone()),
        }
    }

    /// Applies this delta to `base`, reproducing the snapshot it was diffed
    /// against — including each NF's canonical export ordering.
    pub fn apply(&self, base: &NfStateSnapshot) -> NfStateSnapshot {
        match (self, base) {
            (NfStateDelta::Unchanged, _) => base.clone(),
            (NfStateDelta::Full(full), _) => full.clone(),
            (
                NfStateDelta::Firewall { upserts, removals },
                NfStateSnapshot::Firewall { established },
            ) => {
                let mut table: BTreeMap<FiveTuple, u64> = established.iter().copied().collect();
                for key in removals {
                    table.remove(key);
                }
                for (key, seen) in upserts {
                    table.insert(*key, *seen);
                }
                let mut established: Vec<(FiveTuple, u64)> = table.into_iter().collect();
                established.sort_by_key(|(tuple, t)| (*t, *tuple));
                NfStateSnapshot::Firewall { established }
            }
            (
                NfStateDelta::RateLimiter {
                    upserts,
                    removals,
                    last_refill_nanos,
                },
                NfStateSnapshot::RateLimiter { buckets, .. },
            ) => {
                let mut table: BTreeMap<FiveTuple, f64> = buckets.iter().copied().collect();
                for key in removals {
                    table.remove(key);
                }
                for (key, level) in upserts {
                    table.insert(*key, *level);
                }
                NfStateSnapshot::RateLimiter {
                    buckets: table.into_iter().collect(),
                    last_refill_nanos: *last_refill_nanos,
                }
            }
            (
                NfStateDelta::Nat {
                    upserts,
                    removals,
                    next_port,
                },
                NfStateSnapshot::Nat { mappings, .. },
            ) => {
                let mut table: BTreeMap<FiveTuple, u16> = mappings.iter().copied().collect();
                for key in removals {
                    table.remove(key);
                }
                for (key, port) in upserts {
                    table.insert(*key, *port);
                }
                let mut mappings: Vec<(FiveTuple, u16)> = table.into_iter().collect();
                mappings.sort_by_key(|(_, port)| *port);
                NfStateSnapshot::Nat {
                    mappings,
                    next_port: *next_port,
                }
            }
            (
                NfStateDelta::DnsLoadBalancer {
                    next_backend,
                    upserts,
                },
                NfStateSnapshot::DnsLoadBalancer { assignments, .. },
            ) => {
                let mut assignments = assignments.clone();
                for (backend, count) in upserts {
                    if let Some(slot) = assignments.iter_mut().find(|(k, _)| k == backend) {
                        slot.1 = *count;
                    }
                }
                NfStateSnapshot::DnsLoadBalancer {
                    next_backend: *next_backend,
                    assignments,
                }
            }
            (
                NfStateDelta::Ids {
                    upserts,
                    removals,
                    window_start_nanos,
                },
                NfStateSnapshot::Ids { syn_counts, .. },
            ) => {
                let mut syn_counts = syn_counts.clone();
                for key in removals {
                    syn_counts.remove(key);
                }
                for (key, count) in upserts {
                    syn_counts.insert(*key, *count);
                }
                NfStateSnapshot::Ids {
                    syn_counts,
                    window_start_nanos: *window_start_nanos,
                }
            }
            // Variant mismatch: the delta cannot be interpreted against this
            // baseline; keep the baseline rather than invent state.
            _ => base.clone(),
        }
    }

    /// Approximate serialized size in bytes — the quantity that crosses the
    /// wire during the switchover window, priced by the migration cost model.
    pub fn approximate_size_bytes(&self) -> usize {
        match self {
            NfStateDelta::Unchanged => 0,
            NfStateDelta::Firewall { upserts, removals } => {
                upserts.len() * 24 + removals.len() * 16
            }
            NfStateDelta::RateLimiter {
                upserts, removals, ..
            } => upserts.len() * 28 + removals.len() * 16 + 8,
            NfStateDelta::Nat {
                upserts, removals, ..
            } => upserts.len() * 22 + removals.len() * 16 + 2,
            NfStateDelta::DnsLoadBalancer { upserts, .. } => upserts.len() * 12 + 8,
            NfStateDelta::Ids {
                upserts, removals, ..
            } => upserts.len() * 12 + removals.len() * 4 + 8,
            NfStateDelta::Full(full) => full.approximate_size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_packet::IpProtocol;

    fn tuple(i: u8) -> FiveTuple {
        FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, i),
            Ipv4Addr::new(192, 0, 2, 1),
            IpProtocol::Tcp,
            1000 + u16::from(i),
            80,
        )
    }

    #[test]
    fn stateless_is_empty() {
        assert!(NfStateSnapshot::Stateless.is_empty());
        assert_eq!(NfStateSnapshot::Stateless.approximate_size_bytes(), 0);
    }

    #[test]
    fn sizes_scale_with_content() {
        let small = NfStateSnapshot::Firewall {
            established: vec![(tuple(1), 0)],
        };
        let large = NfStateSnapshot::Firewall {
            established: (0..100).map(|i| (tuple(i), 0)).collect(),
        };
        assert!(large.approximate_size_bytes() > small.approximate_size_bytes() * 50);
        assert!(!small.is_empty());

        let cache = NfStateSnapshot::HttpCache {
            entries: vec![("example.com/".into(), vec![0u8; 4096])],
        };
        assert!(cache.approximate_size_bytes() > 4000);
    }

    #[test]
    fn snapshots_serialize_roundtrip() {
        let snapshots = vec![
            NfStateSnapshot::Stateless,
            NfStateSnapshot::Firewall {
                established: vec![(tuple(1), 42)],
            },
            NfStateSnapshot::RateLimiter {
                buckets: vec![(tuple(2), 3.5)],
                last_refill_nanos: 99,
            },
            NfStateSnapshot::Nat {
                mappings: vec![(tuple(3), 40_001)],
                next_port: 40_002,
            },
            NfStateSnapshot::DnsLoadBalancer {
                next_backend: 1,
                assignments: vec![(Ipv4Addr::new(10, 1, 0, 1), 17)],
            },
            NfStateSnapshot::HttpCache {
                entries: vec![("a/b".into(), b"body".to_vec())],
            },
            NfStateSnapshot::Ids {
                syn_counts: [(Ipv4Addr::new(10, 0, 0, 9), 120u64)].into_iter().collect(),
                window_start_nanos: 5,
            },
        ];
        for s in snapshots {
            let json = serde_json::to_string(&s).unwrap();
            let back: NfStateSnapshot = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn diff_of_identical_snapshots_is_unchanged() {
        let snap = NfStateSnapshot::Firewall {
            established: vec![(tuple(1), 42)],
        };
        let delta = NfStateDelta::diff(&snap, &snap);
        assert_eq!(delta, NfStateDelta::Unchanged);
        assert_eq!(delta.approximate_size_bytes(), 0);
        assert_eq!(delta.apply(&snap), snap);
    }

    #[test]
    fn delta_round_trips_map_style_churn() {
        // Firewall: one entry refreshed, one pruned, one added. The canonical
        // export order is by (last-seen, tuple).
        let base = NfStateSnapshot::Firewall {
            established: vec![(tuple(1), 10), (tuple(2), 20)],
        };
        let current = NfStateSnapshot::Firewall {
            established: vec![(tuple(3), 15), (tuple(1), 30)],
        };
        let delta = NfStateDelta::diff(&base, &current);
        assert_eq!(delta.apply(&base), current);
        match &delta {
            NfStateDelta::Firewall { upserts, removals } => {
                assert_eq!(upserts.len(), 2);
                assert_eq!(removals, &vec![tuple(2)]);
            }
            other => panic!("expected a firewall delta, got {other:?}"),
        }

        let base = NfStateSnapshot::Nat {
            mappings: vec![(tuple(1), 40_000), (tuple(2), 40_001)],
            next_port: 40_002,
        };
        let current = NfStateSnapshot::Nat {
            mappings: vec![(tuple(2), 40_001), (tuple(4), 40_002)],
            next_port: 40_003,
        };
        assert_eq!(NfStateDelta::diff(&base, &current).apply(&base), current);

        let base = NfStateSnapshot::RateLimiter {
            buckets: vec![(tuple(1), 100.0)],
            last_refill_nanos: 5,
        };
        let current = NfStateSnapshot::RateLimiter {
            buckets: vec![(tuple(1), 40.0), (tuple(2), 90.0)],
            last_refill_nanos: 9,
        };
        assert_eq!(NfStateDelta::diff(&base, &current).apply(&base), current);

        let base = NfStateSnapshot::Ids {
            syn_counts: [(Ipv4Addr::new(10, 0, 0, 1), 3u64)].into_iter().collect(),
            window_start_nanos: 0,
        };
        let current = NfStateSnapshot::Ids {
            syn_counts: [(Ipv4Addr::new(10, 0, 0, 2), 7u64)].into_iter().collect(),
            window_start_nanos: 100,
        };
        assert_eq!(NfStateDelta::diff(&base, &current).apply(&base), current);
    }

    #[test]
    fn dns_delta_ships_only_changed_counts() {
        let backend = |i: u8| Ipv4Addr::new(10, 1, 0, i);
        let base = NfStateSnapshot::DnsLoadBalancer {
            next_backend: 0,
            assignments: vec![(backend(1), 4), (backend(2), 4)],
        };
        let current = NfStateSnapshot::DnsLoadBalancer {
            next_backend: 1,
            assignments: vec![(backend(1), 9), (backend(2), 4)],
        };
        let delta = NfStateDelta::diff(&base, &current);
        match &delta {
            NfStateDelta::DnsLoadBalancer { upserts, .. } => {
                assert_eq!(upserts, &vec![(backend(1), 9)]);
            }
            other => panic!("expected a dns delta, got {other:?}"),
        }
        assert_eq!(delta.apply(&base), current);
    }

    #[test]
    fn order_sensitive_and_mismatched_states_fall_back_to_full() {
        let base = NfStateSnapshot::HttpCache {
            entries: vec![("a".into(), b"1".to_vec()), ("b".into(), b"2".to_vec())],
        };
        // Same entries, different LRU order: must ship in full to preserve
        // eviction behaviour on the target.
        let current = NfStateSnapshot::HttpCache {
            entries: vec![("b".into(), b"2".to_vec()), ("a".into(), b"1".to_vec())],
        };
        let delta = NfStateDelta::diff(&base, &current);
        assert!(matches!(delta, NfStateDelta::Full(_)));
        assert_eq!(delta.apply(&base), current);

        let mismatched = NfStateDelta::diff(
            &NfStateSnapshot::Stateless,
            &NfStateSnapshot::Firewall {
                established: vec![(tuple(1), 1)],
            },
        );
        assert!(matches!(mismatched, NfStateDelta::Full(_)));
    }

    #[test]
    fn deltas_serialize_roundtrip() {
        let base = NfStateSnapshot::Firewall {
            established: vec![(tuple(1), 10)],
        };
        let current = NfStateSnapshot::Firewall {
            established: vec![(tuple(2), 12)],
        };
        let delta = NfStateDelta::diff(&base, &current);
        let json = serde_json::to_string(&delta).unwrap();
        let back: NfStateDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
        assert!(delta.approximate_size_bytes() > 0);
    }
}
