//! Serializable snapshots of NF dynamic state, used when a function roams
//! with its client: the old instance exports its state, the state travels to
//! the target station inside the migration protocol, and the new instance
//! imports it before steering is switched over.

use gnf_packet::FiveTuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Snapshot of one NF instance's dynamic state.
///
/// Configuration is *not* part of the snapshot — the target Agent recreates
/// the NF from its [`crate::spec::NfSpec`] and then layers this state on top.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NfStateSnapshot {
    /// The NF carries no dynamic state worth migrating.
    Stateless,
    /// Firewall connection-tracking table: established flows and the virtual
    /// time (nanoseconds) they were last seen.
    Firewall {
        /// Established (allowed) flows.
        established: Vec<(FiveTuple, u64)>,
    },
    /// Rate limiter bucket levels per flow key.
    RateLimiter {
        /// Remaining tokens per canonical flow.
        buckets: Vec<(FiveTuple, f64)>,
        /// Nanosecond timestamp of the last refill.
        last_refill_nanos: u64,
    },
    /// NAT translation table.
    Nat {
        /// Forward mappings: original five-tuple → translated source port.
        mappings: Vec<(FiveTuple, u16)>,
        /// Next ephemeral port to allocate.
        next_port: u16,
    },
    /// DNS load-balancer scheduling state.
    DnsLoadBalancer {
        /// Index of the next backend for round-robin.
        next_backend: usize,
        /// Outstanding per-backend assignment counts.
        assignments: Vec<(Ipv4Addr, u64)>,
    },
    /// Cached HTTP responses (URL → serialized response bytes).
    HttpCache {
        /// Cached entries in LRU order (least recent first).
        entries: Vec<(String, Vec<u8>)>,
    },
    /// IDS per-source counters.
    Ids {
        /// SYN counts per source address in the current window.
        syn_counts: BTreeMap<Ipv4Addr, u64>,
        /// Window start, nanoseconds of virtual time.
        window_start_nanos: u64,
    },
}

impl NfStateSnapshot {
    /// Approximate serialized size in bytes, used by the migration cost model
    /// (transferring more NF state takes longer).
    pub fn approximate_size_bytes(&self) -> usize {
        match self {
            NfStateSnapshot::Stateless => 0,
            NfStateSnapshot::Firewall { established } => established.len() * 24,
            NfStateSnapshot::RateLimiter { buckets, .. } => buckets.len() * 28 + 8,
            NfStateSnapshot::Nat { mappings, .. } => mappings.len() * 22 + 2,
            NfStateSnapshot::DnsLoadBalancer { assignments, .. } => assignments.len() * 12 + 8,
            NfStateSnapshot::HttpCache { entries } => entries
                .iter()
                .map(|(url, body)| url.len() + body.len())
                .sum(),
            NfStateSnapshot::Ids { syn_counts, .. } => syn_counts.len() * 12 + 8,
        }
    }

    /// True when there is nothing to transfer.
    pub fn is_empty(&self) -> bool {
        self.approximate_size_bytes() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnf_packet::IpProtocol;

    fn tuple(i: u8) -> FiveTuple {
        FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, i),
            Ipv4Addr::new(192, 0, 2, 1),
            IpProtocol::Tcp,
            1000 + u16::from(i),
            80,
        )
    }

    #[test]
    fn stateless_is_empty() {
        assert!(NfStateSnapshot::Stateless.is_empty());
        assert_eq!(NfStateSnapshot::Stateless.approximate_size_bytes(), 0);
    }

    #[test]
    fn sizes_scale_with_content() {
        let small = NfStateSnapshot::Firewall {
            established: vec![(tuple(1), 0)],
        };
        let large = NfStateSnapshot::Firewall {
            established: (0..100).map(|i| (tuple(i), 0)).collect(),
        };
        assert!(large.approximate_size_bytes() > small.approximate_size_bytes() * 50);
        assert!(!small.is_empty());

        let cache = NfStateSnapshot::HttpCache {
            entries: vec![("example.com/".into(), vec![0u8; 4096])],
        };
        assert!(cache.approximate_size_bytes() > 4000);
    }

    #[test]
    fn snapshots_serialize_roundtrip() {
        let snapshots = vec![
            NfStateSnapshot::Stateless,
            NfStateSnapshot::Firewall {
                established: vec![(tuple(1), 42)],
            },
            NfStateSnapshot::RateLimiter {
                buckets: vec![(tuple(2), 3.5)],
                last_refill_nanos: 99,
            },
            NfStateSnapshot::Nat {
                mappings: vec![(tuple(3), 40_001)],
                next_port: 40_002,
            },
            NfStateSnapshot::DnsLoadBalancer {
                next_backend: 1,
                assignments: vec![(Ipv4Addr::new(10, 1, 0, 1), 17)],
            },
            NfStateSnapshot::HttpCache {
                entries: vec![("a/b".into(), b"body".to_vec())],
            },
            NfStateSnapshot::Ids {
                syn_counts: [(Ipv4Addr::new(10, 0, 0, 9), 120u64)].into_iter().collect(),
                window_start_nanos: 5,
            },
        ];
        for s in snapshots {
            let json = serde_json::to_string(&s).unwrap();
            let back: NfStateSnapshot = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }
}
