//! The megaflow (wildcard) flow cache: the second-level cache behind the
//! exact-match [`FlowCache`].
//!
//! The exact-match cache only helps packets of flows the switch has already
//! seen — every *new* flow pays the full slow path even when it is identical
//! in shape to a cached one (same client, same protocol, same destination
//! port, only the ephemeral source port differs). Production OVS solves this
//! with megaflows: while the slow path runs, every lookup stage records which
//! header fields it actually consulted, and the resulting decision is cached
//! under a *mask* covering exactly those fields. Any later packet agreeing on
//! the masked fields would have followed the same evaluation path, so it can
//! be served from the wildcard entry without running the slow path at all.
//!
//! This module is that cache for [`SoftwareSwitch`]. A GNF twist: the slow
//! path here is not just the switch lookup — steered packets also traverse an
//! NF chain. Each NF reports the fields it consulted (or that it is opaque)
//! through `gnf-nf`'s `NetworkFunction::fields_consulted` hook; when every NF
//! the packet visited is a pure function of the masked fields, the entry
//! stores a **chain bypass** ([`BypassOutcome`]): matching packets skip the
//! chain entirely — forwarded unchanged (`Forward`) or retired with a
//! certified drop (`Drop`, reason replayed verbatim) — and the NFs'
//! statistics are replayed from the entry's tokens. Drop entries are what
//! lets hostile churn (port scans, floods of denied flows) ride the cache:
//! the dropping NF is the last one the packet would have visited, so even a
//! chain with an opaque tail (e.g. an IDS behind the firewall) certifies the
//! drop.
//!
//! ## Correctness model
//!
//! * The ingress port and both MAC addresses are always matched exactly: MAC
//!   learning, the per-MAC steering table and the L2 forwarding decision all
//!   key on them.
//! * The five-tuple is matched under the entry's [`FieldMask`] — the union of
//!   the fields consulted by the steering lookup and (for bypass entries) by
//!   every NF in the chain. Fields skipped by short-circuit evaluation stay
//!   wildcarded.
//! * Validity mirrors the exact cache: entries record the topology and
//!   steering generations plus the destination MAC→port mapping they were
//!   derived from, and are lazily discarded when any of the three changed.
//! * Eviction is FIFO with a hard entry bound (entries describe *patterns*,
//!   not flows, so churn is low and recency tracking is not worth its cost).
//!
//! Unlike OVS, a wildcard hit does **not** promote an exact-match entry: a
//! bypass hit is already cheaper than an exact hit followed by chain
//! processing, and promotion would make new-flow churn thrash the exact
//! cache's LRU for flows that are never seen twice.
//!
//! [`FlowCache`]: crate::flow_cache::FlowCache
//! [`SoftwareSwitch`]: crate::switch::SoftwareSwitch
//! [`FieldMask`]: gnf_packet::FieldMask

use crate::switch::{PortId, SwitchDecision};
use gnf_packet::{FieldMask, FiveTuple};
pub use gnf_types::MegaflowStats;
use gnf_types::{MacAddr, ShardCacheStats};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default maximum number of wildcard entries per switch (when enabled).
pub const DEFAULT_MEGAFLOW_CAPACITY: usize = 1024;

/// The exact-matched part of a wildcard entry's key, plus the five-tuple
/// projected under the owning table's mask. `Ord` so defensive eviction can
/// pick a deterministic victim (sharded runs must never diverge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MegaflowKey {
    in_port: PortId,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    masked_tuple: FiveTuple,
}

/// The certified chain outcome a wildcard entry carries when every NF the
/// matching packets would visit vouched for its purity.
#[derive(Debug, Clone, PartialEq)]
pub enum BypassOutcome {
    /// Matching packets skip the chain and are forwarded unchanged; the
    /// tokens (one per NF, in traversal order) replay each NF's statistics
    /// via `NfChain::credit_bypass`.
    Forward(Arc<[u64]>),
    /// Matching packets are dropped before the chain runs: the tokens cover
    /// exactly the NFs the packet would have visited (the dropping NF last,
    /// replayed via `NfChain::credit_bypass_drop`) and `reason` is replayed
    /// verbatim as the drop reason.
    Drop {
        /// Replay tokens for the visited NFs, the dropping NF last.
        tokens: Arc<[u64]>,
        /// The replayed drop reason (borrowed for the fixed policy reasons,
        /// so a flood of bypassed drops stays allocation-free).
        reason: Cow<'static, str>,
    },
}

impl BypassOutcome {
    /// True when the outcome retires matching packets with a drop.
    pub fn is_drop(&self) -> bool {
        matches!(self, BypassOutcome::Drop { .. })
    }
}

#[derive(Debug, Clone)]
struct MegaflowEntry {
    decision: SwitchDecision,
    /// `Some(outcome)` when every NF the matching packets would visit
    /// certified its processing as a pure function of the masked fields:
    /// matching packets skip the chain entirely (forwarded unchanged or
    /// dropped per the outcome) with NF statistics replayed from the tokens.
    bypass: Option<BypassOutcome>,
    topology_generation: u64,
    steering_generation: u64,
    dst_mapping: Option<PortId>,
    /// Install stamp; FIFO records with a stale stamp are skipped.
    stamp: u64,
    /// RSS shard the entry's masked tuple hashes to (0 when unsharded).
    shard: usize,
}

/// One mask's hash table: all entries sharing a wildcard pattern.
#[derive(Debug, Clone)]
struct MaskTable {
    mask: FieldMask,
    entries: HashMap<MegaflowKey, MegaflowEntry>,
}

/// A successful wildcard lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaflowHit {
    /// The memoized switch decision.
    pub decision: SwitchDecision,
    /// The certified chain outcome, when the entry carries one.
    pub bypass: Option<BypassOutcome>,
}

/// The wildcard cache. Capacity 0 disables it entirely (every operation is a
/// no-op and no statistics are recorded).
#[derive(Debug, Clone)]
pub struct MegaflowCache {
    capacity: usize,
    tables: Vec<MaskTable>,
    len: usize,
    /// `(table index, key, stamp)` in install order; stale stamps are skipped.
    fifo: VecDeque<(usize, MegaflowKey, u64)>,
    stamp_seq: u64,
    stats: MegaflowStats,
    /// Number of RSS shards statistics are attributed to (1 = unsharded).
    shard_count: usize,
    /// Per-shard hit/miss/occupancy blocks, updated in lockstep with `stats`
    /// and `len` so their sums always equal the aggregates.
    shard_stats: Vec<ShardCacheStats>,
}

impl MegaflowCache {
    /// Creates a cache bounded to `capacity` wildcard entries (0 = disabled).
    pub fn with_capacity(capacity: usize) -> Self {
        MegaflowCache {
            capacity,
            tables: Vec::new(),
            len: 0,
            fifo: VecDeque::new(),
            stamp_seq: 0,
            stats: MegaflowStats::default(),
            shard_count: 1,
            shard_stats: vec![ShardCacheStats::default()],
        }
    }

    /// Re-partitions statistics attribution over `shards` RSS shards
    /// (clamped to at least 1). Existing entries are re-tagged by their
    /// masked tuple's shard hash and the per-shard counters restart from
    /// zero; the aggregate counters and the cache contents are untouched, so
    /// sharding never changes behavior — only how activity is attributed.
    pub fn set_shards(&mut self, shards: usize) {
        self.shard_count = shards.max(1);
        self.shard_stats = vec![ShardCacheStats::default(); self.shard_count];
        let count = self.shard_count;
        for table in &mut self.tables {
            for (key, entry) in table.entries.iter_mut() {
                entry.shard = if count > 1 {
                    (key.masked_tuple.shard_hash() % count as u64) as usize
                } else {
                    0
                };
            }
        }
        for table in &self.tables {
            for entry in table.entries.values() {
                self.shard_stats[entry.shard].entries += 1;
            }
        }
    }

    /// Number of RSS shards statistics are attributed to.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The per-shard counter blocks, indexed by shard.
    pub fn shard_stats(&self) -> &[ShardCacheStats] {
        &self.shard_stats
    }

    /// The RSS shard a lookup for `tuple` is attributed to.
    pub fn shard_of(&self, tuple: &FiveTuple) -> usize {
        if self.shard_count > 1 {
            (tuple.shard_hash() % self.shard_count as u64) as usize
        } else {
            0
        }
    }

    /// Re-bounds the cache to `capacity` entries (0 = disabled), dropping
    /// every entry but **keeping the cumulative counters** — like every
    /// other cache-clearing path, so telemetry never undercounts across an
    /// enable/disable or resize.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.clear();
    }

    /// True when the cache participates in lookups.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The capacity bound (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live wildcard entries (including any not yet lazily
    /// invalidated).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct wildcard masks currently holding entries.
    pub fn mask_count(&self) -> usize {
        self.tables.iter().filter(|t| !t.entries.is_empty()).count()
    }

    /// The counters.
    pub fn stats(&self) -> MegaflowStats {
        self.stats
    }

    /// Records `n` additional hits served without a lookup — used by the
    /// batched receive path when a run of consecutive same-flow packets
    /// reuses the first packet's wildcard hit. `drop_served` marks repeats
    /// of a certified-drop hit so the drop counters stay exact; `shard` is
    /// the repeating flow's RSS shard (from [`shard_of`](Self::shard_of)).
    pub fn note_repeat_hits(&mut self, n: u64, drop_served: bool, shard: usize) {
        if self.enabled() {
            self.stats.hits += n;
            self.shard_stats[shard].hits += n;
            if drop_served {
                self.stats.drop_hits += n;
            }
        }
    }

    /// Looks a packet up: probes every mask table with the tuple projected
    /// under that table's mask, returning the first entry that is still valid
    /// under the given generations and destination mapping. Invalid entries
    /// are discarded on the way.
    #[allow(clippy::too_many_arguments)]
    pub fn lookup(
        &mut self,
        in_port: PortId,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        tuple: &FiveTuple,
        topology_generation: u64,
        steering_generation: u64,
        dst_mapping: Option<PortId>,
    ) -> Option<MegaflowHit> {
        if !self.enabled() {
            return None;
        }
        let shard = self.shard_of(tuple);
        let mut hit = None;
        for table in &mut self.tables {
            // Tables are created per mask and never removed; skip ones whose
            // entries have all been invalidated/evicted rather than paying a
            // projection + probe for them on the hot path.
            if table.entries.is_empty() {
                continue;
            }
            let key = MegaflowKey {
                in_port,
                src_mac,
                dst_mac,
                masked_tuple: table.mask.project(tuple),
            };
            match table.entries.get(&key) {
                Some(entry)
                    if entry.topology_generation == topology_generation
                        && entry.steering_generation == steering_generation
                        && entry.dst_mapping == dst_mapping =>
                {
                    hit = Some(MegaflowHit {
                        decision: entry.decision.clone(),
                        bypass: entry.bypass.clone(),
                    });
                    break;
                }
                Some(_) => {
                    let stale = table.entries.remove(&key).expect("entry just probed");
                    self.len -= 1;
                    self.stats.invalidations += 1;
                    self.shard_stats[stale.shard].entries -= 1;
                }
                None => {}
            }
        }
        match hit {
            Some(hit) => {
                self.stats.hits += 1;
                self.shard_stats[shard].hits += 1;
                if hit.bypass.as_ref().is_some_and(BypassOutcome::is_drop) {
                    self.stats.drop_hits += 1;
                }
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                self.shard_stats[shard].misses += 1;
                None
            }
        }
    }

    /// Installs (or replaces) the wildcard entry for `tuple` projected under
    /// `mask`, evicting the oldest entry when the capacity bound is hit.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        in_port: PortId,
        src_mac: MacAddr,
        dst_mac: MacAddr,
        tuple: &FiveTuple,
        mask: FieldMask,
        decision: SwitchDecision,
        bypass: Option<BypassOutcome>,
        topology_generation: u64,
        steering_generation: u64,
        dst_mapping: Option<PortId>,
    ) {
        if !self.enabled() {
            return;
        }
        if bypass.as_ref().is_some_and(BypassOutcome::is_drop) {
            self.stats.drop_installs += 1;
        }
        let table_ix = match self.tables.iter().position(|t| t.mask == mask) {
            Some(ix) => ix,
            None => {
                self.tables.push(MaskTable {
                    mask,
                    entries: HashMap::new(),
                });
                self.tables.len() - 1
            }
        };
        let key = MegaflowKey {
            in_port,
            src_mac,
            dst_mac,
            masked_tuple: mask.project(tuple),
        };
        let shard = self.shard_of(&key.masked_tuple);
        self.stamp_seq += 1;
        let replaced = self.tables[table_ix].entries.insert(
            key,
            MegaflowEntry {
                decision,
                bypass,
                topology_generation,
                steering_generation,
                dst_mapping,
                stamp: self.stamp_seq,
                shard,
            },
        );
        match replaced {
            Some(old) => self.shard_stats[old.shard].entries -= 1,
            None => self.len += 1,
        }
        self.shard_stats[shard].entries += 1;
        self.stats.installs += 1;
        self.fifo.push_back((table_ix, key, self.stamp_seq));
        while self.len > self.capacity {
            self.evict_oldest();
        }
        // Keep the FIFO from growing without bound under replace-heavy
        // churn: once it is dominated by stale records, drop them.
        if self.fifo.len() > self.capacity.saturating_mul(4).max(64) {
            let tables = &self.tables;
            self.fifo.retain(|(ix, key, stamp)| {
                tables[*ix]
                    .entries
                    .get(key)
                    .is_some_and(|e| e.stamp == *stamp)
            });
        }
    }

    /// Drops every entry (used by explicit flushes and capacity changes).
    pub fn clear(&mut self) {
        self.tables.clear();
        self.fifo.clear();
        self.len = 0;
        for shard in &mut self.shard_stats {
            shard.entries = 0;
        }
    }

    fn evict_oldest(&mut self) {
        while let Some((table_ix, key, stamp)) = self.fifo.pop_front() {
            let is_current = self.tables[table_ix]
                .entries
                .get(&key)
                .is_some_and(|entry| entry.stamp == stamp);
            if is_current {
                let evicted = self.tables[table_ix]
                    .entries
                    .remove(&key)
                    .expect("entry just probed");
                self.len -= 1;
                self.stats.evictions += 1;
                self.shard_stats[evicted.shard].entries -= 1;
                return;
            }
            // Stale record: the entry was replaced (fresher record exists) or
            // already invalidated.
        }
        // FIFO exhausted but entries remain (cannot happen — every live
        // entry keeps a current record, both through replacement and the
        // compaction retain); fall back to dropping from the first
        // non-empty table so the capacity bound still holds. The victim is
        // the *smallest* key, not an arbitrary hash-iteration one, so the
        // path stays deterministic across sharded runs if it ever fires.
        for table in &mut self.tables {
            if let Some(key) = table.entries.keys().min().copied() {
                let evicted = table.entries.remove(&key).expect("key just found");
                self.len -= 1;
                self.stats.evictions += 1;
                self.shard_stats[evicted.shard].entries -= 1;
                return;
            }
        }
    }
}

// The cache is derived runtime state: a serialized switch carries only the
// capacity, and deserializing yields an empty cache that re-warms itself.
impl Serialize for MegaflowCache {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "capacity".to_string(),
            serde::Value::UInt(self.capacity as u64),
        )])
    }
}

impl Deserialize for MegaflowCache {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let capacity = value
            .get("capacity")
            .and_then(serde::Value::as_u64)
            .unwrap_or(0) as usize;
        Ok(MegaflowCache::with_capacity(capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::Forwarding;
    use gnf_packet::IpProtocol;
    use std::net::Ipv4Addr;

    fn tuple(src_port: u16, dst_port: u16) -> FiveTuple {
        FiveTuple::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(203, 0, 113, 9),
            IpProtocol::Tcp,
            src_port,
            dst_port,
        )
    }

    fn decision(port: u32) -> SwitchDecision {
        SwitchDecision {
            steering: None,
            forwarding: Forwarding::Unicast(PortId(port)),
        }
    }

    fn lookup(
        cache: &mut MegaflowCache,
        t: &FiveTuple,
        topo: u64,
        steer: u64,
    ) -> Option<MegaflowHit> {
        cache.lookup(
            PortId(0),
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            t,
            topo,
            steer,
            None,
        )
    }

    fn insert(cache: &mut MegaflowCache, t: &FiveTuple, mask: FieldMask, port: u32) {
        cache.insert(
            PortId(0),
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            t,
            mask,
            decision(port),
            None,
            0,
            0,
            None,
        );
    }

    #[test]
    fn wildcarded_fields_do_not_constrain_the_match() {
        let mut cache = MegaflowCache::with_capacity(8);
        let mask = FieldMask::PROTOCOL.union(FieldMask::DST_PORT);
        insert(&mut cache, &tuple(40_000, 443), mask, 1);
        // A brand-new flow (different source port) still hits.
        let hit = lookup(&mut cache, &tuple(51_123, 443), 0, 0).expect("wildcard hit");
        assert_eq!(hit.decision, decision(1));
        // A flow differing on a masked field misses.
        assert!(lookup(&mut cache, &tuple(40_000, 80), 0, 0).is_none());
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.mask_count(), 1);
    }

    #[test]
    fn exact_key_parts_always_constrain_the_match() {
        let mut cache = MegaflowCache::with_capacity(8);
        insert(&mut cache, &tuple(40_000, 443), FieldMask::EMPTY, 1);
        // Same tuple shape but a different source MAC: no match.
        assert!(cache
            .lookup(
                PortId(0),
                MacAddr::derived(9, 9),
                MacAddr::derived(2, 1),
                &tuple(40_000, 443),
                0,
                0,
                None,
            )
            .is_none());
        // Different ingress port: no match.
        assert!(cache
            .lookup(
                PortId(3),
                MacAddr::derived(1, 1),
                MacAddr::derived(2, 1),
                &tuple(40_000, 443),
                0,
                0,
                None,
            )
            .is_none());
    }

    #[test]
    fn generation_advance_invalidates() {
        let mut cache = MegaflowCache::with_capacity(8);
        insert(&mut cache, &tuple(40_000, 443), FieldMask::DST_PORT, 1);
        assert!(lookup(&mut cache, &tuple(1, 443), 0, 1).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.is_empty());
        insert(&mut cache, &tuple(40_000, 443), FieldMask::DST_PORT, 1);
        assert!(lookup(&mut cache, &tuple(1, 443), 1, 0).is_none());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn dst_mapping_change_invalidates() {
        let mut cache = MegaflowCache::with_capacity(8);
        cache.insert(
            PortId(0),
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            &tuple(40_000, 443),
            FieldMask::DST_PORT,
            decision(1),
            None,
            0,
            0,
            Some(PortId(1)),
        );
        // The destination MAC moved to port 2: the entry is discarded.
        assert!(cache
            .lookup(
                PortId(0),
                MacAddr::derived(1, 1),
                MacAddr::derived(2, 1),
                &tuple(9, 443),
                0,
                0,
                Some(PortId(2)),
            )
            .is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn fifo_eviction_honors_the_bound() {
        let mut cache = MegaflowCache::with_capacity(2);
        insert(&mut cache, &tuple(1, 100), FieldMask::DST_PORT, 1);
        insert(&mut cache, &tuple(1, 200), FieldMask::DST_PORT, 2);
        insert(&mut cache, &tuple(1, 300), FieldMask::DST_PORT, 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The oldest pattern (dst_port 100) was evicted.
        assert!(lookup(&mut cache, &tuple(7, 100), 0, 0).is_none());
        assert!(lookup(&mut cache, &tuple(7, 200), 0, 0).is_some());
        assert!(lookup(&mut cache, &tuple(7, 300), 0, 0).is_some());
    }

    #[test]
    fn replacing_an_entry_does_not_double_count_or_evict_early() {
        let mut cache = MegaflowCache::with_capacity(2);
        for _ in 0..10 {
            insert(&mut cache, &tuple(1, 100), FieldMask::DST_PORT, 1);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        insert(&mut cache, &tuple(1, 200), FieldMask::DST_PORT, 2);
        assert_eq!(cache.len(), 2);
        // Eviction skips the stale records of the replaced entry and drops
        // entries in install order: dst_port-100 (installed last at its
        // 10th replacement, before 200) goes first, not the fresh 300.
        insert(&mut cache, &tuple(1, 300), FieldMask::DST_PORT, 3);
        assert_eq!(cache.stats().evictions, 1);
        assert!(lookup(&mut cache, &tuple(7, 100), 0, 0).is_none());
        assert!(lookup(&mut cache, &tuple(7, 200), 0, 0).is_some());
        assert!(lookup(&mut cache, &tuple(7, 300), 0, 0).is_some());
    }

    #[test]
    fn resizing_drops_entries_but_keeps_the_counters() {
        let mut cache = MegaflowCache::with_capacity(8);
        insert(&mut cache, &tuple(1, 443), FieldMask::DST_PORT, 1);
        assert!(lookup(&mut cache, &tuple(2, 443), 0, 0).is_some());
        let before = cache.stats();
        assert_eq!(before.hits, 1);
        cache.set_capacity(0);
        assert!(!cache.enabled());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats(), before, "cumulative telemetry survives");
        cache.set_capacity(4);
        assert!(cache.enabled());
        assert_eq!(cache.stats(), before);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut cache = MegaflowCache::with_capacity(0);
        assert!(!cache.enabled());
        insert(&mut cache, &tuple(1, 100), FieldMask::DST_PORT, 1);
        assert!(lookup(&mut cache, &tuple(1, 100), 0, 0).is_none());
        cache.note_repeat_hits(5, true, 0);
        assert_eq!(cache.stats(), MegaflowStats::default());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn bypass_tokens_ride_the_entry() {
        let mut cache = MegaflowCache::with_capacity(4);
        let tokens: Arc<[u64]> = Arc::from(vec![3u64, 0]);
        cache.insert(
            PortId(0),
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            &tuple(40_000, 443),
            FieldMask::DST_PORT,
            decision(1),
            Some(BypassOutcome::Forward(tokens.clone())),
            0,
            0,
            None,
        );
        let hit = lookup(&mut cache, &tuple(5, 443), 0, 0).expect("hit");
        assert_eq!(
            hit.bypass,
            Some(BypassOutcome::Forward(tokens)),
            "forward outcome rides the entry"
        );
        assert_eq!(cache.stats().drop_hits, 0);
        assert_eq!(cache.stats().drop_installs, 0);
    }

    #[test]
    fn drop_entries_count_and_replay_their_outcome() {
        let mut cache = MegaflowCache::with_capacity(4);
        let tokens: Arc<[u64]> = Arc::from(vec![2u64]);
        cache.insert(
            PortId(0),
            MacAddr::derived(1, 1),
            MacAddr::derived(2, 1),
            &tuple(40_000, 22),
            FieldMask::DST_PORT,
            decision(1),
            Some(BypassOutcome::Drop {
                tokens: tokens.clone(),
                reason: "firewall: policy drop".into(),
            }),
            0,
            0,
            None,
        );
        assert_eq!(cache.stats().installs, 1);
        assert_eq!(cache.stats().drop_installs, 1);
        // A brand-new flow of the dropped pattern hits and is counted as a
        // drop hit; repeats credited by the batched path keep the split.
        let hit = lookup(&mut cache, &tuple(51_000, 22), 0, 0).expect("drop hit");
        let Some(BypassOutcome::Drop { tokens: t, reason }) = hit.bypass else {
            panic!("expected a drop outcome");
        };
        assert_eq!(t, tokens);
        assert_eq!(reason, "firewall: policy drop");
        cache.note_repeat_hits(3, true, 0);
        assert_eq!(cache.stats().hits, 4);
        assert_eq!(cache.stats().drop_hits, 4);
        assert_eq!(cache.shard_stats()[0].hits, 4);
    }

    #[test]
    fn fifo_fallback_eviction_keeps_accounting_exact() {
        // The fallback arm of `evict_oldest` (FIFO exhausted while entries
        // remain) is unreachable through the public API — every live entry
        // keeps a current FIFO record — so force it white-box by discarding
        // the FIFO. Repeated fallback evictions must keep `len`, the table
        // contents and the eviction counter exactly in step, pick a
        // deterministic victim, and leave the cache fully operational.
        let mut cache = MegaflowCache::with_capacity(8);
        for n in 0..6u16 {
            insert(&mut cache, &tuple(1, 100 + n), FieldMask::DST_PORT, 1);
        }
        let before = cache.stats();
        cache.fifo.clear();

        // First fallback eviction removes the smallest key (dst port 100).
        cache.evict_oldest();
        assert!(lookup(&mut cache, &tuple(9, 100), 0, 0).is_none());
        assert!(lookup(&mut cache, &tuple(9, 101), 0, 0).is_some());

        // Keep firing the fallback until the cache is empty: no drift.
        for expected_len in (0..5usize).rev() {
            cache.evict_oldest();
            let live: usize = cache.tables.iter().map(|t| t.entries.len()).sum();
            assert_eq!(cache.len(), expected_len, "len tracks the eviction");
            assert_eq!(live, expected_len, "tables agree with len");
        }
        assert_eq!(cache.stats().evictions, before.evictions + 6);

        // With nothing left, a further eviction is a no-op (no counter
        // drift, no panic).
        cache.evict_oldest();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, before.evictions + 6);

        // The cache keeps working afterwards: fresh inserts repopulate the
        // FIFO and the capacity bound holds through normal eviction again.
        for n in 0..20u16 {
            insert(&mut cache, &tuple(2, 300 + n), FieldMask::DST_PORT, 1);
            assert!(cache.len() <= 8);
            let live: usize = cache.tables.iter().map(|t| t.entries.len()).sum();
            assert_eq!(cache.len(), live);
        }
        assert!(lookup(&mut cache, &tuple(9, 319), 0, 0).is_some());
    }

    #[test]
    fn shard_attribution_sums_to_the_aggregates() {
        let mut cache = MegaflowCache::with_capacity(8);
        cache.set_shards(4);
        assert_eq!(cache.shard_count(), 4);
        // Churn enough distinct masked patterns through a small cache to
        // exercise installs, hits, misses, replacements and FIFO evictions.
        for round in 0..3u16 {
            for n in 0..24u16 {
                let t = tuple(40_000 + n, 100 + n % 12);
                if lookup(&mut cache, &t, 0, 0).is_none() {
                    insert(&mut cache, &t, FieldMask::DST_PORT, u32::from(round));
                }
            }
        }
        let stats = cache.stats();
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), stats.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<u64>(),
            cache.len() as u64,
            "occupancy sums to the live entry count"
        );
        assert!(stats.evictions > 0, "the churn exercised eviction");
        assert!(
            shards.iter().filter(|s| s.hits + s.misses > 0).count() > 1,
            "traffic spread over more than one shard"
        );
    }

    #[test]
    fn set_shards_retags_existing_entries() {
        let mut cache = MegaflowCache::with_capacity(16);
        for n in 0..10u16 {
            insert(&mut cache, &tuple(1, 100 + n), FieldMask::DST_PORT, 1);
        }
        cache.set_shards(2);
        let occupancy: u64 = cache.shard_stats().iter().map(|s| s.entries).sum();
        assert_eq!(occupancy, cache.len() as u64);
        // Collapsing back to one shard folds everything onto shard 0.
        cache.set_shards(1);
        assert_eq!(cache.shard_stats().len(), 1);
        assert_eq!(cache.shard_stats()[0].entries, cache.len() as u64);
    }

    #[test]
    fn the_bound_holds_under_churn() {
        let mut cache = MegaflowCache::with_capacity(16);
        for n in 0..10_000u16 {
            insert(
                &mut cache,
                &tuple(1, n % 500),
                FieldMask::DST_PORT,
                u32::from(n),
            );
            assert!(cache.len() <= 16);
            assert!(cache.fifo.len() <= 16 * 4 + 1);
        }
    }
}
