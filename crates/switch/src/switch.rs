//! The per-station software switch.
//!
//! Every GNF station runs one software switch. Client radio interfaces, the
//! uplink towards the operator network and the two veth endpoints of every NF
//! container are all ports on this switch. The switch learns MAC addresses
//! like a normal L2 bridge, counts per-port traffic (the statistics the UI
//! displays) and consults the [`crate::steering::SteeringTable`] to decide
//! whether a frame must detour through an NF chain before being forwarded.
//!
//! ## Fast path / slow path
//!
//! [`SoftwareSwitch::receive`] is split OVS-style: frames that carry a
//! transport five-tuple first consult the exact-match
//! [`crate::flow_cache::FlowCache`]; a hit returns the memoized
//! [`SwitchDecision`] after one hash lookup. On an exact miss the optional
//! megaflow (wildcard) layer ([`crate::megaflow::MegaflowCache`]) is probed:
//! one masked entry covers every new flow matching the same pattern of
//! consulted header fields, and may additionally certify that the steered NF
//! chain can be bypassed. Only when both caches miss does the frame walk the
//! full slow path — steering lookup, MAC table, flood set — which records
//! the fields it consulted so the caller can complete a wildcard entry (see
//! [`MegaflowState`]). Port and steering mutations advance generation
//! counters that lazily invalidate every affected entry in O(1); MAC-table
//! changes (learn/move/age) are caught per flow, because each cached entry
//! re-validates its destination's MAC→port mapping on lookup.

use crate::flow_cache::{FlowCache, FlowCacheStats, FlowKey, DEFAULT_FLOW_CACHE_CAPACITY};
use crate::megaflow::{BypassOutcome, MegaflowCache, MegaflowStats};
use crate::steering::{SteeringRule, SteeringTable};
use gnf_packet::{FieldMask, FiveTuple, Packet, PacketBatch};
use gnf_types::{GnfError, GnfResult, MacAddr, ShardCacheStats, SimTime};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

/// Switch-local port identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u32);

/// What a port connects to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortKind {
    /// The wireless/LAN interface clients attach to.
    ClientAccess,
    /// The uplink towards the operator core / Internet.
    Uplink,
    /// The ingress end of a container's veth pair (traffic entering the NF).
    VethIngress {
        /// Container handle the veth belongs to.
        container: u64,
    },
    /// The egress end of a container's veth pair (traffic leaving the NF).
    VethEgress {
        /// Container handle the veth belongs to.
        container: u64,
    },
}

/// Per-port packet/byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCounters {
    /// Frames received on the port.
    pub rx_packets: u64,
    /// Bytes received on the port.
    pub rx_bytes: u64,
    /// Frames transmitted out of the port.
    pub tx_packets: u64,
    /// Bytes transmitted out of the port.
    pub tx_bytes: u64,
}

/// A switch port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Port {
    /// Port identifier.
    pub id: PortId,
    /// Human-readable name (`wlan0`, `uplink`, `veth-fw-0-in`, ...).
    pub name: String,
    /// What the port connects to.
    pub kind: PortKind,
    /// Traffic counters.
    pub counters: PortCounters,
}

/// Where the switch decided to send a frame.
///
/// Flood port sets are shared (`Arc`) so that broadcasting, cloning a
/// decision into the flow cache and returning a cache hit never allocate a
/// fresh port vector per frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Forwarding {
    /// Send out a single known port.
    Unicast(PortId),
    /// Flood out of every port except the ingress one (destination unknown or
    /// broadcast).
    Flood(Arc<[PortId]>),
}

/// The decision for one received frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchDecision {
    /// The steering rule that matched, if the frame must traverse an NF chain
    /// before forwarding, together with the direction (true = upstream).
    pub steering: Option<(SteeringRule, bool)>,
    /// Where the frame goes after (or instead of) the chain.
    pub forwarding: Forwarding,
}

/// How the megaflow (wildcard) cache layer participated in a classification.
#[derive(Debug, Clone, PartialEq)]
pub enum MegaflowState {
    /// Wildcarding did not participate: non-flow frame, exact-match hit,
    /// decision-only wildcard hit, or megaflow disabled. The caller
    /// processes the steered chain (if any) as usual.
    None,
    /// A wildcard entry certified that the steered NF chain may be bypassed
    /// for this packet: the chain's verdict is `Forward` of the unchanged
    /// packet, and the tokens (one per NF, in traversal order) replay each
    /// NF's statistics via `NfChain::credit_bypass`.
    Bypass(Arc<[u64]>),
    /// A wildcard entry certified that the steered NF chain silently
    /// *drops* this packet: the caller retires it with `reason` before the
    /// chain runs, and the tokens (covering exactly the NFs the packet
    /// would have visited, the dropping NF last) replay their statistics
    /// via `NfChain::credit_bypass_drop`.
    DropBypass {
        /// Replay tokens for the visited NFs, the dropping NF last.
        tokens: Arc<[u64]>,
        /// The certified drop reason, replayed verbatim.
        reason: Cow<'static, str>,
    },
    /// The packet took the full slow path for a *steered* flow. The caller
    /// may complete the seed into a wildcard entry with
    /// [`SoftwareSwitch::install_megaflow`] once the chain has processed the
    /// packet and reported the fields it consulted. Dropping the seed is
    /// always safe (the flow simply stays on the exact/slow path).
    Seed(MegaflowSeed),
}

impl MegaflowState {
    /// Lifts a wildcard hit's certified outcome into the classification
    /// state handed to the caller.
    fn from_bypass(bypass: Option<BypassOutcome>) -> MegaflowState {
        match bypass {
            None => MegaflowState::None,
            Some(BypassOutcome::Forward(tokens)) => MegaflowState::Bypass(tokens),
            Some(BypassOutcome::Drop { tokens, reason }) => {
                MegaflowState::DropBypass { tokens, reason }
            }
        }
    }
}

/// The switch's half of a prospective wildcard cache entry: the exact key
/// parts, the five-tuple, the fields the *switch's* slow path consulted and
/// the validity snapshot the decision was computed under.
#[derive(Debug, Clone, PartialEq)]
pub struct MegaflowSeed {
    in_port: PortId,
    src_mac: MacAddr,
    dst_mac: MacAddr,
    tuple: FiveTuple,
    switch_mask: FieldMask,
    decision: SwitchDecision,
    topology_generation: u64,
    steering_generation: u64,
    dst_mapping: Option<PortId>,
}

impl MegaflowSeed {
    /// The five-tuple fields the switch's slow path consulted (the steering
    /// rule walk; the MAC/port parts of the key are always matched exactly).
    pub fn switch_mask(&self) -> FieldMask {
        self.switch_mask
    }
}

/// What one [`SoftwareSwitch::install_megaflow`] call did, reported back to
/// the caller so the sealing layer (the Agent) can trace seals and evictions
/// itself — the switch stays plain serializable state with no sink inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MegaflowInstall {
    /// False when the megaflow cache is disabled (the install was a no-op).
    pub installed: bool,
    /// The sealed entry's class: `"forward"` / `"drop"` (certified chain
    /// bypass) or `"decision"` (caches the switch decision only; the chain
    /// still runs).
    pub outcome: &'static str,
    /// Entries the FIFO capacity bound evicted to make room in this call.
    pub evicted: u64,
    /// Live wildcard entries after the install.
    pub occupancy: u64,
}

/// The result of classifying one received frame: the forwarding decision
/// plus how the wildcard cache layer was (or can be) involved.
#[derive(Debug, Clone, PartialEq)]
pub struct Classified {
    /// The decision for the frame.
    pub decision: SwitchDecision,
    /// The wildcard-cache aspect of the classification.
    pub megaflow: MegaflowState,
}

/// One run of consecutive same-decision packets within a batch.
///
/// [`SoftwareSwitch::receive_batch`] run-length groups its output: packets
/// of the same flow arriving back to back share one decision (one cache
/// probe, one clone) instead of paying per packet. Expanding the runs in
/// order reproduces exactly the per-packet decision sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRun {
    /// The decision shared by every packet of the run.
    pub decision: SwitchDecision,
    /// How many consecutive packets of the batch the decision covers.
    pub count: usize,
    /// The wildcard-cache aspect shared by every packet of the run (a run is
    /// one flow, so one megaflow entry covers all of it).
    pub megaflow: MegaflowState,
}

/// Which cache level decided a run — repeats must credit the same counters
/// the per-packet path would.
#[derive(Clone, Copy, PartialEq)]
enum RunSource {
    /// Exact hit, or slow path (which installs an exact entry, so
    /// per-packet repeats would exact-hit).
    Exact,
    /// Wildcard hit: per-packet repeats would exact-miss and then
    /// wildcard-hit again (wildcard hits do not promote). `drop_served`
    /// records whether the entry certified a drop, so repeats keep the
    /// drop-hit split exact.
    Megaflow {
        /// The run was served by a certified-drop entry.
        drop_served: bool,
    },
}

/// The per-batch state of an incremental batched receive, created by
/// [`SoftwareSwitch::begin_receive_batch`] and advanced one [`DecisionRun`]
/// at a time by [`SoftwareSwitch::next_decision_run`].
///
/// [`SoftwareSwitch::receive_batch`] drives one internally; the Agent
/// drives its own so megaflow entries sealed after a run are already
/// visible to the next run of the same flush (mid-batch sealing).
#[derive(Debug)]
pub struct BatchCursor {
    in_port: PortId,
    now: SimTime,
    /// The last unicast source MAC learned from this batch: re-learning it
    /// would write the identical `(port, now)` mapping, so it is skipped.
    last_learned: Option<MacAddr>,
}

/// The software switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoftwareSwitch {
    ports: Vec<Port>,
    mac_table: HashMap<MacAddr, (PortId, SimTime)>,
    steering: SteeringTable,
    mac_aging: u64,
    dropped_frames: u64,
    /// Bumped on any port or MAC-mapping change; pairs with the steering
    /// table's generation to validate flow-cache entries.
    topology_generation: u64,
    flow_cache: FlowCache,
    /// The wildcard second-level cache probed on exact-match misses
    /// (disabled — capacity 0 — unless the owner opts in).
    megaflow: MegaflowCache,
    /// Memoized flood port set per ingress port (rebuilt after port changes).
    #[allow(clippy::type_complexity)]
    flood_sets: HashMap<PortId, Arc<[PortId]>>,
    /// The shared empty flood set (hairpin suppression).
    empty_flood: Arc<[PortId]>,
}

/// Default MAC-table aging time in seconds (the classic 300 s bridge default).
pub const DEFAULT_MAC_AGING_SECS: u64 = 300;

impl Default for SoftwareSwitch {
    fn default() -> Self {
        SoftwareSwitch::new()
    }
}

impl SoftwareSwitch {
    /// Creates a switch with a client-access port and an uplink port.
    pub fn new() -> Self {
        Self::with_flow_cache_capacity(DEFAULT_FLOW_CACHE_CAPACITY)
    }

    /// Creates a switch whose flow cache is bounded to `capacity` entries.
    pub fn with_flow_cache_capacity(capacity: usize) -> Self {
        let mut sw = SoftwareSwitch {
            ports: Vec::new(),
            mac_table: HashMap::new(),
            steering: SteeringTable::new(),
            mac_aging: DEFAULT_MAC_AGING_SECS,
            dropped_frames: 0,
            topology_generation: 0,
            flow_cache: FlowCache::with_capacity(capacity),
            megaflow: MegaflowCache::with_capacity(0),
            flood_sets: HashMap::new(),
            empty_flood: Arc::from(Vec::new()),
        };
        sw.add_port("wlan0", PortKind::ClientAccess);
        sw.add_port("uplink0", PortKind::Uplink);
        sw
    }

    /// Adds a port and returns its identifier.
    pub fn add_port(&mut self, name: &str, kind: PortKind) -> PortId {
        let id = PortId(self.ports.len() as u32);
        self.ports.push(Port {
            id,
            name: name.to_string(),
            kind,
            counters: PortCounters::default(),
        });
        self.note_topology_change();
        id
    }

    /// Adds the two veth pairs for a container, returning (ingress, egress).
    pub fn connect_container(&mut self, container: u64, label: &str) -> (PortId, PortId) {
        let ingress = self.add_port(
            &format!("veth-{label}-in"),
            PortKind::VethIngress { container },
        );
        let egress = self.add_port(
            &format!("veth-{label}-out"),
            PortKind::VethEgress { container },
        );
        (ingress, egress)
    }

    /// Removes the veth ports of a container (when its NF is torn down).
    /// Returns how many ports were removed.
    pub fn disconnect_container(&mut self, container: u64) -> usize {
        let before = self.ports.len();
        let removed_ids: Vec<PortId> = self
            .ports
            .iter()
            .filter(|p| {
                matches!(p.kind, PortKind::VethIngress { container: c } | PortKind::VethEgress { container: c } if c == container)
            })
            .map(|p| p.id)
            .collect();
        if removed_ids.is_empty() {
            return 0;
        }
        self.ports.retain(|p| !removed_ids.contains(&p.id));
        // Forget MAC entries learned on removed ports.
        self.mac_table
            .retain(|_, (port, _)| !removed_ids.contains(port));
        self.note_topology_change();
        before - self.ports.len()
    }

    /// The switch's client-access port.
    pub fn client_port(&self) -> PortId {
        self.ports
            .iter()
            .find(|p| p.kind == PortKind::ClientAccess)
            .map(|p| p.id)
            .expect("a switch always has a client access port")
    }

    /// The switch's uplink port.
    pub fn uplink_port(&self) -> PortId {
        self.ports
            .iter()
            .find(|p| p.kind == PortKind::Uplink)
            .map(|p| p.id)
            .expect("a switch always has an uplink port")
    }

    /// The steering table (mutable) for installing/removing redirection rules.
    ///
    /// The table carries its own generation counter, so rule changes made
    /// through this handle invalidate the flow cache automatically.
    pub fn steering_mut(&mut self) -> &mut SteeringTable {
        &mut self.steering
    }

    /// The steering table (read-only).
    pub fn steering(&self) -> &SteeringTable {
        &self.steering
    }

    /// All ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// A port by id.
    pub fn port(&self, id: PortId) -> GnfResult<&Port> {
        self.ports
            .iter()
            .find(|p| p.id == id)
            .ok_or_else(|| GnfError::not_found("switch port", id.0))
    }

    /// Number of frames dropped by the switch itself (unknown ingress port).
    pub fn dropped_frames(&self) -> u64 {
        self.dropped_frames
    }

    /// Aggregate counters over all ports of a kind predicate.
    pub fn aggregate_counters<F: Fn(&Port) -> bool>(&self, predicate: F) -> PortCounters {
        let mut total = PortCounters::default();
        for port in self.ports.iter().filter(|p| predicate(p)) {
            total.rx_packets += port.counters.rx_packets;
            total.rx_bytes += port.counters.rx_bytes;
            total.tx_packets += port.counters.tx_packets;
            total.tx_bytes += port.counters.tx_bytes;
        }
        total
    }

    /// Total traffic through the switch (rx over access + uplink ports).
    pub fn total_rx_bytes(&self) -> u64 {
        self.aggregate_counters(|p| matches!(p.kind, PortKind::ClientAccess | PortKind::Uplink))
            .rx_bytes
    }

    /// Number of MAC-table entries.
    pub fn mac_table_len(&self) -> usize {
        self.mac_table.len()
    }

    /// Flow-cache hit/miss/eviction counters.
    pub fn flow_cache_stats(&self) -> FlowCacheStats {
        self.flow_cache.stats()
    }

    /// Number of flows currently memoized in the fast path.
    pub fn flow_cache_len(&self) -> usize {
        self.flow_cache.len()
    }

    /// Flow-cache occupancy partitioned over `n` virtual shards by flow
    /// hash, independent of the configured execution shards (see
    /// [`FlowCache::occupancy_by_virtual_shard`]).
    pub fn flow_cache_occupancy_by_virtual_shard(&self, n: usize) -> Vec<u64> {
        self.flow_cache.occupancy_by_virtual_shard(n)
    }

    /// Bounds the megaflow (wildcard) cache to `capacity` entries; 0
    /// disables the layer entirely. Resizing drops every wildcard entry
    /// (they repopulate from slow-path traffic) but keeps the cumulative
    /// counters, so telemetry never undercounts across a toggle.
    pub fn set_megaflow_capacity(&mut self, capacity: usize) {
        self.megaflow.set_capacity(capacity);
    }

    /// True when the megaflow (wildcard) cache layer participates in
    /// lookups.
    pub fn megaflow_enabled(&self) -> bool {
        self.megaflow.enabled()
    }

    /// Megaflow hit/miss/install/eviction counters.
    pub fn megaflow_stats(&self) -> MegaflowStats {
        self.megaflow.stats()
    }

    /// Number of wildcard entries currently installed.
    pub fn megaflow_len(&self) -> usize {
        self.megaflow.len()
    }

    /// Number of distinct wildcard masks currently holding entries.
    pub fn megaflow_mask_count(&self) -> usize {
        self.megaflow.mask_count()
    }

    /// Re-partitions both cache levels' statistics attribution over
    /// `shards` RSS shards (clamped to at least 1). Entries and aggregate
    /// counters are untouched — sharding only changes how activity is
    /// attributed, never what the switch does.
    pub fn set_station_shards(&mut self, shards: usize) {
        self.flow_cache.set_shards(shards);
        self.megaflow.set_shards(shards);
    }

    /// Number of RSS shards cache statistics are attributed to.
    pub fn station_shards(&self) -> usize {
        self.flow_cache.shard_count()
    }

    /// Per-shard exact-match cache counters, indexed by shard.
    pub fn flow_cache_shard_stats(&self) -> &[ShardCacheStats] {
        self.flow_cache.shard_stats()
    }

    /// Per-shard megaflow cache counters, indexed by shard.
    pub fn megaflow_shard_stats(&self) -> &[ShardCacheStats] {
        self.megaflow.shard_stats()
    }

    /// Drops every memoized flow — exact-match and wildcard alike (the slow
    /// path repopulates both on demand).
    pub fn flush_flow_cache(&mut self) {
        self.flow_cache.clear();
        self.megaflow.clear();
    }

    /// Invalidates every memoized forwarding decision by bumping the
    /// topology generation: both cache levels lazily discard entries stamped
    /// with an older generation on their next lookup. Used by the chaos
    /// layer's invalidation floods; O(1) regardless of cache size.
    pub fn invalidate_caches(&mut self) {
        self.note_topology_change();
    }

    /// The current topology generation — the stamp new cache entries carry
    /// and old ones are validated against.
    pub fn cache_generation(&self) -> u64 {
        self.topology_generation
    }

    /// Forgets every learned MAC location (a rebooted switch has an empty
    /// MAC table). No generation bump needed: cached flows validate their
    /// destination's MAC mapping on lookup, as with [`age_mac_table`].
    ///
    /// [`age_mac_table`]: SoftwareSwitch::age_mac_table
    pub fn clear_mac_table(&mut self) {
        self.mac_table.clear();
    }

    /// Expires MAC-table entries older than the aging time.
    pub fn age_mac_table(&mut self, now: SimTime) -> usize {
        let aging = self.mac_aging;
        let before = self.mac_table.len();
        self.mac_table
            .retain(|_, (_, seen)| now.duration_since(*seen).as_nanos() < aging * 1_000_000_000);
        // No generation bump: cached flows validate their destination's
        // MAC mapping on lookup, so aged entries invalidate themselves.
        before - self.mac_table.len()
    }

    /// Processes a frame received on `in_port`: learns the source MAC, counts
    /// traffic, consults the flow cache (or, on a miss, steering and the MAC
    /// table) and returns where the frame goes.
    ///
    /// The caller (the station/Agent layer) is responsible for actually
    /// running the NF chain named by the decision and for transmitting the
    /// surviving frame out of the chosen port(s) via [`record_tx`].
    ///
    /// [`record_tx`]: SoftwareSwitch::record_tx
    pub fn receive(
        &mut self,
        packet: &Packet,
        in_port: PortId,
        now: SimTime,
    ) -> GnfResult<SwitchDecision> {
        // Dropping the megaflow state is always safe: a discarded seed just
        // keeps the flow on the exact/slow path, and a discarded bypass
        // means the caller runs the (pure, equivalent) chain normally.
        self.classify(packet, in_port, now).map(|c| c.decision)
    }

    /// [`receive`], additionally exposing the megaflow (wildcard) cache
    /// aspect of the classification: a certified chain bypass on a wildcard
    /// hit, or a seed the caller can complete into a wildcard entry after
    /// running the steered chain. Callers that ignore wildcarding can use
    /// [`receive`] unchanged.
    ///
    /// [`receive`]: SoftwareSwitch::receive
    pub fn classify(
        &mut self,
        packet: &Packet,
        in_port: PortId,
        now: SimTime,
    ) -> GnfResult<Classified> {
        if self.port(in_port).is_err() {
            self.dropped_frames += 1;
            return Err(GnfError::not_found("switch port", in_port.0));
        }
        // Count RX.
        if let Some(port) = self.ports.iter_mut().find(|p| p.id == in_port) {
            port.counters.rx_packets += 1;
            port.counters.rx_bytes += packet.len() as u64;
        }
        // Learn the source MAC on the ingress port. Learning does not touch
        // the flow cache's generations: a learned/moved/aged MAC can only
        // change decisions for flows destined *to* it, and every cached
        // entry re-validates its destination's MAC mapping on lookup — so
        // unrelated flows stay hot through client churn.
        if packet.src_mac().is_unicast() {
            self.mac_table.insert(packet.src_mac(), (in_port, now));
        }

        // Fast path: exact-match lookup for transport flows.
        if let Some(tuple) = packet.five_tuple() {
            let key = FlowKey {
                in_port,
                src_mac: packet.src_mac(),
                dst_mac: packet.dst_mac(),
                tuple,
            };
            let steering_generation = self.steering.generation();
            let dst_mapping = self.mac_table.get(&packet.dst_mac()).map(|(port, _)| *port);
            if let Some(decision) = self.flow_cache.lookup(
                &key,
                self.topology_generation,
                steering_generation,
                dst_mapping,
            ) {
                return Ok(Classified {
                    decision,
                    megaflow: MegaflowState::None,
                });
            }
            // Second level: one wildcard entry covers every new flow of the
            // same masked pattern.
            if let Some(hit) = self.megaflow.lookup(
                in_port,
                key.src_mac,
                key.dst_mac,
                &tuple,
                self.topology_generation,
                steering_generation,
                dst_mapping,
            ) {
                return Ok(Classified {
                    decision: hit.decision,
                    megaflow: MegaflowState::from_bypass(hit.bypass),
                });
            }
            let (decision, switch_mask) = self.slow_path_masked(packet, in_port);
            self.flow_cache.insert(
                key,
                decision.clone(),
                self.topology_generation,
                steering_generation,
                dst_mapping,
            );
            let megaflow =
                self.seed_or_install_megaflow(&key, tuple, switch_mask, &decision, dst_mapping);
            Ok(Classified { decision, megaflow })
        } else {
            // Non-flow frames (ARP, unknown EtherTypes) are rare control
            // traffic; they always take the slow path.
            Ok(Classified {
                decision: self.slow_path(packet, in_port),
                megaflow: MegaflowState::None,
            })
        }
    }

    /// Completes a slow-path seed into a wildcard cache entry.
    ///
    /// `chain` is the steered chain's contribution: `Some((mask, outcome))`
    /// when every NF the matching packets would visit certified the
    /// packet's processing as a pure function of `mask` (the entry then
    /// bypasses the chain — forwarding unchanged or replaying a certified
    /// drop per the [`BypassOutcome`] — with NF statistics replayed from
    /// the tokens), `None` when the chain is opaque (the entry caches the
    /// switch decision only; matching packets still traverse the chain).
    ///
    /// Returns what the install did so the caller can trace seals and
    /// evictions without the switch owning an observability sink (the switch
    /// stays plain serializable state).
    pub fn install_megaflow(
        &mut self,
        seed: MegaflowSeed,
        chain: Option<(FieldMask, BypassOutcome)>,
    ) -> MegaflowInstall {
        let (mask, bypass) = match chain {
            Some((chain_mask, outcome)) => (seed.switch_mask.union(chain_mask), Some(outcome)),
            None => (seed.switch_mask, None),
        };
        let outcome = match &bypass {
            Some(b) if b.is_drop() => "drop",
            Some(_) => "forward",
            None => "decision",
        };
        let installed = self.megaflow.enabled();
        let evictions_before = self.megaflow.stats().evictions;
        self.megaflow.insert(
            seed.in_port,
            seed.src_mac,
            seed.dst_mac,
            &seed.tuple,
            mask,
            seed.decision,
            bypass,
            seed.topology_generation,
            seed.steering_generation,
            seed.dst_mapping,
        );
        MegaflowInstall {
            installed,
            outcome,
            evicted: self.megaflow.stats().evictions - evictions_before,
            occupancy: self.megaflow.len() as u64,
        }
    }

    /// Processes a batch of frames received on `in_port`: the batched
    /// counterpart of [`receive`], observably equivalent to calling it once
    /// per packet (same decisions, same MAC learning, same counters) but
    /// amortizing the per-packet overhead:
    ///
    /// * the ingress port is validated and its RX counters bumped **once per
    ///   batch** instead of once per packet;
    /// * the flow-cache generations are fetched once per lookup but runs of
    ///   consecutive same-flow packets (the common shape of real traffic —
    ///   and of the emulator's coalesced batches) pay **one cache probe and
    ///   one decision clone per run**, with the skipped lookups recorded as
    ///   hits so telemetry matches the per-packet path;
    /// * repeated source-MAC learning within the batch is skipped when the
    ///   mapping cannot have changed (same MAC, same port, same timestamp).
    ///
    /// Returns run-length grouped decisions in arrival order; the counts sum
    /// to the batch length. A whole-batch error is returned only for an
    /// unknown ingress port (every packet is counted as dropped, exactly as
    /// the per-packet path would).
    ///
    /// Callers that act on each run (process the chain, seal megaflow
    /// entries) before classifying the next should drive a
    /// [`BatchCursor`] via [`begin_receive_batch`] /
    /// [`next_decision_run`] instead — this method classifies the whole
    /// batch up front, so an entry sealed from run *N* cannot serve run
    /// *N + 1* of the same flush.
    ///
    /// [`receive`]: SoftwareSwitch::receive
    /// [`begin_receive_batch`]: SoftwareSwitch::begin_receive_batch
    /// [`next_decision_run`]: SoftwareSwitch::next_decision_run
    pub fn receive_batch(
        &mut self,
        batch: &PacketBatch,
        in_port: PortId,
        now: SimTime,
    ) -> GnfResult<Vec<DecisionRun>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let mut cursor = self.begin_receive_batch(batch, in_port, now)?;
        let mut runs: Vec<DecisionRun> = Vec::new();
        let packets = batch.as_slice();
        let mut pos = 0usize;
        while let Some(run) = self.next_decision_run(&mut cursor, &packets[pos..]) {
            pos += run.count;
            runs.push(run);
        }
        Ok(runs)
    }

    /// Starts a batched receive: validates the ingress port and records the
    /// whole batch's RX counters in one add (exactly what [`receive_batch`]
    /// does up front), returning the cursor that classifies the batch one
    /// [`DecisionRun`] at a time via [`next_decision_run`].
    ///
    /// Driving the cursor yourself is what enables **mid-batch sealing**: a
    /// megaflow entry installed after run *N* (e.g. sealed from the chain's
    /// wildcard report) is already visible when run *N + 1* is classified —
    /// exactly as in per-packet processing, where every packet is fully
    /// settled before the next is classified.
    ///
    /// On an unknown ingress port every packet is counted as dropped and the
    /// whole batch fails, as in [`receive_batch`].
    ///
    /// [`receive_batch`]: SoftwareSwitch::receive_batch
    /// [`next_decision_run`]: SoftwareSwitch::next_decision_run
    pub fn begin_receive_batch(
        &mut self,
        batch: &PacketBatch,
        in_port: PortId,
        now: SimTime,
    ) -> GnfResult<BatchCursor> {
        if !batch.is_empty() {
            if self.port(in_port).is_err() {
                self.dropped_frames += batch.len() as u64;
                return Err(GnfError::not_found("switch port", in_port.0));
            }
            let total_bytes = batch.total_bytes();
            if let Some(port) = self.ports.iter_mut().find(|p| p.id == in_port) {
                port.counters.rx_packets += batch.len() as u64;
                port.counters.rx_bytes += total_bytes;
            }
        }
        Ok(BatchCursor {
            in_port,
            now,
            last_learned: None,
        })
    }

    /// Classifies the next run of `remaining` — the not-yet-classified tail
    /// of the batch `cursor` was started with — returning `None` once it is
    /// empty. The caller must consume exactly `run.count` packets from its
    /// batch per returned run, so the tail it passes next time starts at
    /// the first unclassified packet.
    ///
    /// A run covers the longest prefix of consecutive packets sharing the
    /// first packet's flow key: nothing the batch itself does (idempotent
    /// MAC re-learning at one timestamp) can change the decision within a
    /// run, so repeats are credited to whichever cache level served the
    /// first packet, exactly as the per-packet path would score them.
    pub fn next_decision_run(
        &mut self,
        cursor: &mut BatchCursor,
        remaining: &[Packet],
    ) -> Option<DecisionRun> {
        let packet = remaining.first()?;
        let in_port = cursor.in_port;
        let src_mac = packet.src_mac();
        // Re-learning the same MAC within the batch writes the identical
        // (port, now) mapping; skip the redundant hash insert.
        if src_mac.is_unicast() && cursor.last_learned != Some(src_mac) {
            self.mac_table.insert(src_mac, (in_port, cursor.now));
            cursor.last_learned = Some(src_mac);
        }
        let Some(tuple) = packet.five_tuple() else {
            // Non-flow frames always take the slow path, never grouped.
            return Some(DecisionRun {
                decision: self.slow_path(packet, in_port),
                count: 1,
                megaflow: MegaflowState::None,
            });
        };
        let key = FlowKey {
            in_port,
            src_mac,
            dst_mac: packet.dst_mac(),
            tuple,
        };
        let steering_generation = self.steering.generation();
        let dst_mapping = self.mac_table.get(&packet.dst_mac()).map(|(port, _)| *port);
        let (decision, megaflow, source) = if let Some(decision) = self.flow_cache.lookup(
            &key,
            self.topology_generation,
            steering_generation,
            dst_mapping,
        ) {
            (decision, MegaflowState::None, RunSource::Exact)
        } else if let Some(hit) = self.megaflow.lookup(
            in_port,
            key.src_mac,
            key.dst_mac,
            &tuple,
            self.topology_generation,
            steering_generation,
            dst_mapping,
        ) {
            let source = RunSource::Megaflow {
                drop_served: hit.bypass.as_ref().is_some_and(BypassOutcome::is_drop),
            };
            (hit.decision, MegaflowState::from_bypass(hit.bypass), source)
        } else {
            let (decision, switch_mask) = self.slow_path_masked(packet, in_port);
            self.flow_cache.insert(
                key,
                decision.clone(),
                self.topology_generation,
                steering_generation,
                dst_mapping,
            );
            let megaflow =
                self.seed_or_install_megaflow(&key, tuple, switch_mask, &decision, dst_mapping);
            (decision, megaflow, RunSource::Exact)
        };
        // Extend over the consecutive same-flow packets. Their source MAC
        // equals the run's (the key matched), so the learning skip above
        // already covers them.
        let mut count = 1usize;
        let mut repeat_shard = None;
        for pkt in &remaining[1..] {
            if pkt.five_tuple() != Some(tuple)
                || pkt.src_mac() != key.src_mac
                || pkt.dst_mac() != key.dst_mac
            {
                break;
            }
            count += 1;
            // The run shares one flow, so its shard is computed once (and
            // only when a repeat actually occurs — the common single-packet
            // run never pays for the hash).
            let shard = *repeat_shard.get_or_insert_with(|| self.flow_cache.shard_of(&tuple));
            match source {
                RunSource::Exact => self.flow_cache.note_repeat_hits(1, shard),
                RunSource::Megaflow { drop_served } => {
                    self.flow_cache.note_repeat_misses(1, shard);
                    self.megaflow.note_repeat_hits(1, drop_served, shard);
                }
            }
        }
        Some(DecisionRun {
            decision,
            count,
            megaflow,
        })
    }

    /// The megaflow tail of a slow-path classification, shared by
    /// [`classify`] and [`receive_batch`] so the two paths cannot diverge:
    /// unsteered decisions install their wildcard entry right away (the
    /// switch's own mask is the whole story), steered ones hand the caller a
    /// seed to complete after the chain has reported its consulted fields.
    ///
    /// [`classify`]: SoftwareSwitch::classify
    /// [`receive_batch`]: SoftwareSwitch::receive_batch
    fn seed_or_install_megaflow(
        &mut self,
        key: &FlowKey,
        tuple: FiveTuple,
        switch_mask: FieldMask,
        decision: &SwitchDecision,
        dst_mapping: Option<PortId>,
    ) -> MegaflowState {
        if !self.megaflow.enabled() {
            return MegaflowState::None;
        }
        // The slow path never mutates steering, so the generation here is
        // the one the decision was computed under.
        let steering_generation = self.steering.generation();
        if decision.steering.is_none() {
            self.megaflow.insert(
                key.in_port,
                key.src_mac,
                key.dst_mac,
                &tuple,
                switch_mask,
                decision.clone(),
                None,
                self.topology_generation,
                steering_generation,
                dst_mapping,
            );
            MegaflowState::None
        } else {
            MegaflowState::Seed(MegaflowSeed {
                in_port: key.in_port,
                src_mac: key.src_mac,
                dst_mac: key.dst_mac,
                tuple,
                switch_mask,
                decision: decision.clone(),
                topology_generation: self.topology_generation,
                steering_generation,
                dst_mapping,
            })
        }
    }

    /// The full lookup pipeline: steering rules plus the L2 forwarding
    /// decision.
    fn slow_path(&mut self, packet: &Packet, in_port: PortId) -> SwitchDecision {
        self.slow_path_masked(packet, in_port).0
    }

    /// [`slow_path`], additionally returning the five-tuple fields the
    /// steering walk consulted. The L2 forwarding part reads only the MACs
    /// and the port set, which the megaflow cache matches exactly / guards
    /// with generations, so it contributes nothing to the tuple mask.
    ///
    /// [`slow_path`]: SoftwareSwitch::slow_path
    fn slow_path_masked(
        &mut self,
        packet: &Packet,
        in_port: PortId,
    ) -> (SwitchDecision, FieldMask) {
        let mut mask = FieldMask::EMPTY;
        let steering = self.steering.lookup_masked(packet, &mut mask);

        // Standard L2 forwarding decision.
        let forwarding = if packet.dst_mac().is_multicast() {
            Forwarding::Flood(self.flood_ports(in_port))
        } else if let Some((port, _)) = self.mac_table.get(&packet.dst_mac()) {
            if *port == in_port {
                // Destination is on the ingress segment; hairpin suppressed.
                Forwarding::Flood(self.empty_flood.clone())
            } else {
                Forwarding::Unicast(*port)
            }
        } else {
            // Unknown unicast: assume it leaves via the uplink (the common
            // case for Internet-bound client traffic), mirroring a default
            // route rather than flooding the radio side.
            Forwarding::Unicast(self.uplink_port())
        };

        (
            SwitchDecision {
                steering,
                forwarding,
            },
            mask,
        )
    }

    /// Records that a frame was transmitted out of `port`.
    pub fn record_tx(&mut self, port: PortId, bytes: usize) {
        self.record_tx_batch(port, 1, bytes as u64);
    }

    /// Records that `packets` frames totalling `bytes` were transmitted out
    /// of `port` — one port-table walk per batch instead of one per frame.
    pub fn record_tx_batch(&mut self, port: PortId, packets: u64, bytes: u64) {
        if let Some(port) = self.ports.iter_mut().find(|p| p.id == port) {
            port.counters.tx_packets += packets;
            port.counters.tx_bytes += bytes;
        }
    }

    /// The flood set for frames entering on `except`, shared and memoized so
    /// broadcasts do not allocate per frame.
    fn flood_ports(&mut self, except: PortId) -> Arc<[PortId]> {
        if let Some(set) = self.flood_sets.get(&except) {
            return Arc::clone(set);
        }
        let set: Arc<[PortId]> = self
            .ports
            .iter()
            .filter(|p| {
                p.id != except && matches!(p.kind, PortKind::ClientAccess | PortKind::Uplink)
            })
            .map(|p| p.id)
            .collect::<Vec<_>>()
            .into();
        self.flood_sets.insert(except, Arc::clone(&set));
        set
    }

    /// Records a change to the port set: flood sets and memoized flow
    /// decisions are no longer trustworthy.
    fn note_topology_change(&mut self) {
        self.topology_generation += 1;
        self.flood_sets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steering::{SteeringRule, TrafficSelector};
    use gnf_packet::builder;
    use gnf_types::{ChainId, ClientId};
    use std::net::Ipv4Addr;

    fn client_mac() -> MacAddr {
        MacAddr::derived(1, 3)
    }
    fn server_mac() -> MacAddr {
        MacAddr::derived(3, 1)
    }

    fn upstream() -> Packet {
        builder::http_get(
            client_mac(),
            server_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(198, 51, 100, 1),
            40_000,
            "example.com",
            "/",
        )
    }

    fn downstream() -> Packet {
        builder::tcp_data(
            server_mac(),
            client_mac(),
            Ipv4Addr::new(198, 51, 100, 1),
            Ipv4Addr::new(10, 0, 0, 3),
            80,
            40_000,
            b"response",
        )
    }

    #[test]
    fn new_switch_has_access_and_uplink_ports() {
        let sw = SoftwareSwitch::new();
        assert_eq!(sw.ports().len(), 2);
        assert_ne!(sw.client_port(), sw.uplink_port());
    }

    #[test]
    fn unknown_unicast_goes_to_the_uplink_and_macs_are_learned() {
        let mut sw = SoftwareSwitch::new();
        let t = SimTime::from_secs(1);
        let decision = sw.receive(&upstream(), sw.client_port(), t).unwrap();
        assert_eq!(decision.forwarding, Forwarding::Unicast(sw.uplink_port()));
        assert_eq!(sw.mac_table_len(), 1, "client MAC learned");

        // Downstream towards the (now learned) client goes back out the
        // access port.
        let decision = sw.receive(&downstream(), sw.uplink_port(), t).unwrap();
        assert_eq!(decision.forwarding, Forwarding::Unicast(sw.client_port()));
        assert_eq!(sw.mac_table_len(), 2);
    }

    #[test]
    fn invalidate_caches_defeats_warm_entries_and_clear_mac_table_forgets() {
        let mut sw = SoftwareSwitch::new();
        let t = SimTime::from_secs(1);
        sw.receive(&upstream(), sw.client_port(), t).unwrap();
        sw.receive(&upstream(), sw.client_port(), t).unwrap();
        let warm = sw.flow_cache_stats();
        assert_eq!(warm.hits, 1, "second identical frame hits the flow cache");
        assert!(sw.mac_table_len() > 0);

        let gen_before = sw.cache_generation();
        sw.invalidate_caches();
        assert_eq!(sw.cache_generation(), gen_before + 1);

        // The memoized decision is stamped with the old generation, so the
        // next lookup must fall through to the slow path, not hit.
        sw.receive(&upstream(), sw.client_port(), t).unwrap();
        let after = sw.flow_cache_stats();
        assert_eq!(after.hits, warm.hits, "no stale hit after invalidation");
        assert_eq!(after.misses, warm.misses + 1);

        sw.clear_mac_table();
        assert_eq!(sw.mac_table_len(), 0);
    }

    #[test]
    fn broadcast_frames_flood_other_ports() {
        let mut sw = SoftwareSwitch::new();
        let arp = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let decision = sw.receive(&arp, sw.client_port(), SimTime::ZERO).unwrap();
        match decision.forwarding {
            Forwarding::Flood(ports) => {
                assert_eq!(ports.as_ref(), &[sw.uplink_port()]);
            }
            other => panic!("expected flood, got {other:?}"),
        }
    }

    #[test]
    fn flood_sets_are_shared_not_reallocated() {
        let mut sw = SoftwareSwitch::new();
        let arp = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let first = sw.receive(&arp, sw.client_port(), SimTime::ZERO).unwrap();
        let second = sw.receive(&arp, sw.client_port(), SimTime::ZERO).unwrap();
        let (Forwarding::Flood(a), Forwarding::Flood(b)) = (first.forwarding, second.forwarding)
        else {
            panic!("expected floods");
        };
        assert!(Arc::ptr_eq(&a, &b), "flood set must be memoized");
    }

    #[test]
    fn steering_rules_divert_matching_traffic() {
        let mut sw = SoftwareSwitch::new();
        sw.steering_mut().install(SteeringRule {
            client: ClientId::new(3),
            client_mac: client_mac(),
            selector: TrafficSelector::http_only(),
            chain: ChainId::new(42),
        });
        let t = SimTime::from_secs(1);
        let decision = sw.receive(&upstream(), sw.client_port(), t).unwrap();
        let (rule, is_upstream) = decision.steering.expect("HTTP must be steered");
        assert_eq!(rule.chain, ChainId::new(42));
        assert!(is_upstream);

        // DNS from the same client is not diverted by the HTTP-only rule.
        let dns = builder::dns_query(
            client_mac(),
            server_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(8, 8, 8, 8),
            5353,
            1,
            "example.com",
        );
        let decision = sw.receive(&dns, sw.client_port(), t).unwrap();
        assert!(decision.steering.is_none());

        // Downstream HTTP towards the client is steered with the downstream flag.
        let decision = sw.receive(&downstream(), sw.uplink_port(), t).unwrap();
        let (_, is_upstream) = decision.steering.expect("downstream HTTP steered");
        assert!(!is_upstream);
    }

    #[test]
    fn counters_track_rx_and_tx() {
        let mut sw = SoftwareSwitch::new();
        let pkt = upstream();
        let t = SimTime::from_secs(1);
        sw.receive(&pkt, sw.client_port(), t).unwrap();
        sw.record_tx(sw.uplink_port(), pkt.len());
        let access = sw.port(sw.client_port()).unwrap().counters;
        let uplink = sw.port(sw.uplink_port()).unwrap().counters;
        assert_eq!(access.rx_packets, 1);
        assert_eq!(access.rx_bytes, pkt.len() as u64);
        assert_eq!(uplink.tx_packets, 1);
        assert_eq!(sw.total_rx_bytes(), pkt.len() as u64);
    }

    #[test]
    fn container_veth_ports_attach_and_detach() {
        let mut sw = SoftwareSwitch::new();
        let (ing, eg) = sw.connect_container(5, "fw-0");
        assert_ne!(ing, eg);
        assert_eq!(sw.ports().len(), 4);
        assert!(matches!(
            sw.port(ing).unwrap().kind,
            PortKind::VethIngress { container: 5 }
        ));
        assert_eq!(sw.disconnect_container(5), 2);
        assert_eq!(sw.ports().len(), 2);
        assert_eq!(sw.disconnect_container(5), 0);
    }

    #[test]
    fn mac_entries_age_out() {
        let mut sw = SoftwareSwitch::new();
        sw.receive(&upstream(), sw.client_port(), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(sw.mac_table_len(), 1);
        assert_eq!(sw.age_mac_table(SimTime::from_secs(100)), 0);
        assert_eq!(sw.age_mac_table(SimTime::from_secs(1000)), 1);
        assert_eq!(sw.mac_table_len(), 0);
    }

    #[test]
    fn receiving_on_an_unknown_port_is_an_error() {
        let mut sw = SoftwareSwitch::new();
        let err = sw
            .receive(&upstream(), PortId(99), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.category(), "not_found");
        assert_eq!(sw.dropped_frames(), 1);
    }

    #[test]
    fn hairpin_to_the_same_port_is_suppressed() {
        let mut sw = SoftwareSwitch::new();
        let t = SimTime::from_secs(1);
        // Learn both MACs on the client port (two stations behind the same AP).
        sw.receive(&upstream(), sw.client_port(), t).unwrap();
        let reverse = builder::tcp_data(
            server_mac(),
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(10, 0, 0, 3),
            80,
            40_000,
            b"local",
        );
        sw.receive(&reverse, sw.client_port(), t).unwrap();
        // Now a frame to the client arriving on the client port stays there.
        let decision = sw.receive(&reverse, sw.client_port(), t).unwrap();
        assert_eq!(
            decision.forwarding,
            Forwarding::Flood(Arc::from(Vec::new()))
        );
    }

    // ----------------------------------------------------- flow-cache tests

    #[test]
    fn repeated_flows_hit_the_cache() {
        let mut sw = SoftwareSwitch::new();
        let t = SimTime::from_secs(1);
        let pkt = upstream();
        let first = sw.receive(&pkt, sw.client_port(), t).unwrap();
        assert_eq!(sw.flow_cache_stats().misses, 1);
        let second = sw.receive(&pkt, sw.client_port(), t).unwrap();
        assert_eq!(sw.flow_cache_stats().hits, 1);
        assert_eq!(first, second, "cached decision equals slow-path decision");
        assert_eq!(sw.flow_cache_len(), 1);
    }

    #[test]
    fn steering_changes_invalidate_cached_flows() {
        let mut sw = SoftwareSwitch::new();
        let t = SimTime::from_secs(1);
        let pkt = upstream();
        let before = sw.receive(&pkt, sw.client_port(), t).unwrap();
        assert!(before.steering.is_none());
        sw.receive(&pkt, sw.client_port(), t).unwrap();
        assert_eq!(sw.flow_cache_stats().hits, 1);

        // Install a catch-all rule: the cached decision must not survive.
        sw.steering_mut().install(SteeringRule {
            client: ClientId::new(3),
            client_mac: client_mac(),
            selector: TrafficSelector::all(),
            chain: ChainId::new(7),
        });
        let after = sw.receive(&pkt, sw.client_port(), t).unwrap();
        let (rule, _) = after.steering.expect("steering applies immediately");
        assert_eq!(rule.chain, ChainId::new(7));

        // Removing the rule restores the unsteered decision immediately.
        sw.steering_mut()
            .remove_chain(client_mac(), ChainId::new(7));
        let restored = sw.receive(&pkt, sw.client_port(), t).unwrap();
        assert!(restored.steering.is_none());
    }

    #[test]
    fn mac_learning_and_aging_invalidate_cached_flows() {
        let mut sw = SoftwareSwitch::new();
        let pkt = upstream();
        // Before the server MAC is learned, upstream goes to the uplink.
        let decision = sw
            .receive(&pkt, sw.client_port(), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(decision.forwarding, Forwarding::Unicast(sw.uplink_port()));
        // The server talks: its MAC is learned on the uplink port (no change
        // to the decision — it already pointed there), then moves to a veth
        // port, which must re-route the cached flow.
        sw.receive(&downstream(), sw.uplink_port(), SimTime::from_secs(2))
            .unwrap();
        let (veth_in, _) = sw.connect_container(9, "nf");
        sw.receive(&downstream(), veth_in, SimTime::from_secs(3))
            .unwrap();
        let decision = sw
            .receive(&pkt, sw.client_port(), SimTime::from_secs(4))
            .unwrap();
        assert_eq!(
            decision.forwarding,
            Forwarding::Unicast(veth_in),
            "MAC move must re-route the cached flow"
        );

        // Aging the MAC table restores default-route behavior.
        assert!(sw.age_mac_table(SimTime::from_secs(3600)) > 0);
        let decision = sw
            .receive(&pkt, sw.client_port(), SimTime::from_secs(3601))
            .unwrap();
        assert_eq!(decision.forwarding, Forwarding::Unicast(sw.uplink_port()));
    }

    #[test]
    fn cache_capacity_is_bounded() {
        let mut sw = SoftwareSwitch::with_flow_cache_capacity(8);
        let t = SimTime::from_secs(1);
        for port in 0..100u16 {
            let pkt = builder::tcp_syn(
                client_mac(),
                server_mac(),
                Ipv4Addr::new(10, 0, 0, 3),
                Ipv4Addr::new(198, 51, 100, 1),
                40_000 + port,
                443,
            );
            sw.receive(&pkt, sw.client_port(), t).unwrap();
            assert!(sw.flow_cache_len() <= 8);
        }
        assert!(sw.flow_cache_stats().evictions >= 92);
    }

    // ----------------------------------------------------- megaflow tests

    fn new_flow(src_port: u16, dst_port: u16) -> Packet {
        builder::tcp_syn(
            client_mac(),
            server_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(198, 51, 100, 1),
            src_port,
            dst_port,
        )
    }

    #[test]
    fn megaflow_is_disabled_by_default() {
        let mut sw = SoftwareSwitch::new();
        assert!(!sw.megaflow_enabled());
        let t = SimTime::from_secs(1);
        sw.receive(&new_flow(40_000, 443), sw.client_port(), t)
            .unwrap();
        let c = sw
            .classify(&new_flow(41_000, 443), sw.client_port(), t)
            .unwrap();
        assert_eq!(c.megaflow, MegaflowState::None);
        assert_eq!(sw.megaflow_stats(), gnf_types::MegaflowStats::default());
        assert_eq!(sw.megaflow_len(), 0);
    }

    #[test]
    fn megaflow_serves_new_flows_of_a_known_pattern() {
        let mut sw = SoftwareSwitch::new();
        sw.set_megaflow_capacity(64);
        let t = SimTime::from_secs(1);
        // Unsteered flow: the switch installs the wildcard entry itself
        // (there is no chain whose consulted fields would be missing).
        let first = sw
            .receive(&new_flow(40_000, 443), sw.client_port(), t)
            .unwrap();
        assert_eq!(sw.megaflow_len(), 1);
        assert_eq!(sw.megaflow_stats().installs, 1);
        // A brand-new flow of the same shape: exact miss, wildcard hit,
        // identical decision — and no exact entry is promoted.
        let c = sw
            .classify(&new_flow(41_000, 443), sw.client_port(), t)
            .unwrap();
        assert_eq!(c.decision, first);
        assert_eq!(
            c.megaflow,
            MegaflowState::None,
            "no chain, nothing to bypass"
        );
        assert_eq!(sw.megaflow_stats().hits, 1);
        assert_eq!(sw.flow_cache_len(), 1, "wildcard hits do not promote");
        assert_eq!(
            sw.flow_cache_stats().misses,
            2,
            "both packets probed exact first"
        );
    }

    #[test]
    fn steered_slow_path_seeds_and_sealing_enables_bypass() {
        let mut sw = SoftwareSwitch::new();
        sw.set_megaflow_capacity(64);
        sw.steering_mut().install(SteeringRule {
            client: ClientId::new(3),
            client_mac: client_mac(),
            selector: TrafficSelector::all(),
            chain: ChainId::new(42),
        });
        let t = SimTime::from_secs(1);
        let c = sw
            .classify(&new_flow(40_000, 443), sw.client_port(), t)
            .unwrap();
        assert!(c.decision.steering.is_some());
        let MegaflowState::Seed(seed) = c.megaflow else {
            panic!(
                "steered slow path must hand out a seed, got {:?}",
                c.megaflow
            );
        };
        assert!(
            seed.switch_mask().is_empty(),
            "catch-all selector reads no tuple field"
        );
        assert_eq!(
            sw.megaflow_len(),
            0,
            "nothing installed until the seed is sealed"
        );

        // Seal with a chain report: mask + tokens, as the Agent would after
        // every NF certified the packet.
        let tokens: Arc<[u64]> = Arc::from(vec![7u64]);
        sw.install_megaflow(
            seed,
            Some((
                gnf_packet::FieldMask::DST_PORT,
                BypassOutcome::Forward(tokens),
            )),
        );
        assert_eq!(sw.megaflow_len(), 1);

        // A new flow to the same destination port: wildcard hit with the
        // certified bypass attached.
        let c2 = sw
            .classify(&new_flow(41_000, 443), sw.client_port(), t)
            .unwrap();
        assert_eq!(c2.decision, c.decision);
        let MegaflowState::Bypass(tokens) = c2.megaflow else {
            panic!("expected a certified bypass, got {:?}", c2.megaflow);
        };
        assert_eq!(tokens.as_ref(), &[7u64]);
        // A new flow to a different port falls off the masked pattern.
        let c3 = sw
            .classify(&new_flow(41_001, 80), sw.client_port(), t)
            .unwrap();
        assert!(matches!(c3.megaflow, MegaflowState::Seed(_)));
    }

    #[test]
    fn sealing_a_drop_outcome_enables_the_drop_bypass() {
        let mut sw = SoftwareSwitch::new();
        sw.set_megaflow_capacity(64);
        sw.steering_mut().install(SteeringRule {
            client: ClientId::new(3),
            client_mac: client_mac(),
            selector: TrafficSelector::all(),
            chain: ChainId::new(42),
        });
        let t = SimTime::from_secs(1);
        let c = sw
            .classify(&new_flow(40_000, 22), sw.client_port(), t)
            .unwrap();
        let MegaflowState::Seed(seed) = c.megaflow else {
            panic!("steered slow path must hand out a seed");
        };
        // Seal with a certified drop, as the Agent would after the chain
        // silently dropped the packet on a pure evaluation path.
        let tokens: Arc<[u64]> = Arc::from(vec![1u64]);
        sw.install_megaflow(
            seed,
            Some((
                gnf_packet::FieldMask::DST_PORT,
                BypassOutcome::Drop {
                    tokens: tokens.clone(),
                    reason: "firewall: policy drop".into(),
                },
            )),
        );
        assert_eq!(sw.megaflow_stats().drop_installs, 1);

        // A brand-new flow of the dropped pattern: certified drop bypass.
        let c2 = sw
            .classify(&new_flow(41_000, 22), sw.client_port(), t)
            .unwrap();
        let MegaflowState::DropBypass { tokens: t2, reason } = c2.megaflow else {
            panic!("expected a certified drop bypass, got {:?}", c2.megaflow);
        };
        assert_eq!(t2, tokens);
        assert_eq!(reason, "firewall: policy drop");
        assert_eq!(sw.megaflow_stats().drop_hits, 1);
        assert_eq!(sw.megaflow_stats().hits, 1);
    }

    #[test]
    fn incremental_cursor_matches_receive_batch() {
        // Driving begin_receive_batch/next_decision_run by hand must
        // reproduce receive_batch exactly (decisions, runs, counters) when
        // nothing is installed between runs.
        let t = SimTime::from_secs(1);
        let arp = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let packets = vec![
            new_flow(40_000, 443),
            new_flow(40_000, 443),
            new_flow(41_000, 443),
            arp,
            new_flow(40_000, 443),
        ];
        let batch = PacketBatch::from(packets);

        let mut whole = SoftwareSwitch::new();
        whole.set_megaflow_capacity(64);
        let expected = whole.receive_batch(&batch, whole.client_port(), t).unwrap();

        let mut incremental = SoftwareSwitch::new();
        incremental.set_megaflow_capacity(64);
        let port = incremental.client_port();
        let mut cursor = incremental.begin_receive_batch(&batch, port, t).unwrap();
        let slice = batch.as_slice();
        let mut pos = 0usize;
        let mut runs = Vec::new();
        while let Some(run) = incremental.next_decision_run(&mut cursor, &slice[pos..]) {
            pos += run.count;
            runs.push(run);
        }
        assert_eq!(runs, expected);
        assert_eq!(pos, batch.len(), "runs cover the whole batch");
        assert_eq!(incremental.flow_cache_stats(), whole.flow_cache_stats());
        assert_eq!(incremental.megaflow_stats(), whole.megaflow_stats());
        assert_eq!(
            incremental.port(port).unwrap().counters,
            whole.port(whole.client_port()).unwrap().counters
        );
    }

    #[test]
    fn steering_and_topology_changes_invalidate_wildcard_entries() {
        let mut sw = SoftwareSwitch::new();
        sw.set_megaflow_capacity(64);
        let t = SimTime::from_secs(1);
        sw.receive(&new_flow(40_000, 443), sw.client_port(), t)
            .unwrap();
        assert!(sw
            .classify(&new_flow(41_000, 443), sw.client_port(), t)
            .unwrap()
            .decision
            .steering
            .is_none());
        assert_eq!(sw.megaflow_stats().hits, 1);

        // Installing a steering rule must immediately stop wildcard hits.
        sw.steering_mut().install(SteeringRule {
            client: ClientId::new(3),
            client_mac: client_mac(),
            selector: TrafficSelector::all(),
            chain: ChainId::new(7),
        });
        let c = sw
            .classify(&new_flow(42_000, 443), sw.client_port(), t)
            .unwrap();
        assert!(
            c.decision.steering.is_some(),
            "stale wildcard entry must not serve"
        );
        assert_eq!(sw.megaflow_stats().invalidations, 1);

        // A topology change (new port) invalidates the re-learned pattern too.
        let c = sw
            .classify(&new_flow(43_000, 443), sw.client_port(), t)
            .unwrap();
        let MegaflowState::Seed(seed) = c.megaflow else {
            panic!("expected a seed");
        };
        sw.install_megaflow(seed, None);
        assert!(sw
            .classify(&new_flow(44_000, 443), sw.client_port(), t)
            .unwrap()
            .decision
            .steering
            .is_some());
        sw.connect_container(9, "nf");
        let c = sw
            .classify(&new_flow(45_000, 443), sw.client_port(), t)
            .unwrap();
        assert!(
            matches!(c.megaflow, MegaflowState::Seed(_)),
            "entry invalidated by port change"
        );
    }

    #[test]
    fn flush_clears_wildcard_entries_too() {
        let mut sw = SoftwareSwitch::new();
        sw.set_megaflow_capacity(64);
        sw.receive(
            &new_flow(40_000, 443),
            sw.client_port(),
            SimTime::from_secs(1),
        )
        .unwrap();
        assert_eq!(sw.megaflow_len(), 1);
        sw.flush_flow_cache();
        assert_eq!(sw.megaflow_len(), 0);
        assert_eq!(sw.flow_cache_len(), 0);
    }

    #[test]
    fn megaflow_batch_counters_match_per_packet_for_unsteered_traffic() {
        let t = SimTime::from_secs(1);
        // Three new flows of one pattern plus a run of repeats: the wildcard
        // layer serves flows 2 and 3 and every repeat.
        let packets = vec![
            new_flow(40_000, 443),
            new_flow(40_001, 443),
            new_flow(40_002, 443),
            new_flow(40_002, 443),
            new_flow(40_002, 443),
        ];

        let mut per_packet = SoftwareSwitch::new();
        per_packet.set_megaflow_capacity(64);
        let expected: Vec<SwitchDecision> = packets
            .iter()
            .map(|p| per_packet.receive(p, per_packet.client_port(), t).unwrap())
            .collect();

        let mut batched = SoftwareSwitch::new();
        batched.set_megaflow_capacity(64);
        let runs = batched
            .receive_batch(
                &PacketBatch::from(packets.clone()),
                batched.client_port(),
                t,
            )
            .unwrap();
        let expanded: Vec<SwitchDecision> = runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.decision.clone(), r.count))
            .collect();
        assert_eq!(expanded, expected);
        assert_eq!(batched.megaflow_stats(), per_packet.megaflow_stats());
        assert_eq!(batched.flow_cache_stats(), per_packet.flow_cache_stats());
        assert_eq!(batched.megaflow_len(), per_packet.megaflow_len());
        assert_eq!(batched.flow_cache_len(), per_packet.flow_cache_len());
        // Flows 2/3 and the repeats rode the wildcard entry.
        assert_eq!(batched.megaflow_stats().hits, 4);
        assert_eq!(batched.flow_cache_stats().hits, 0);
    }

    // -------------------------------------------------------- batch tests

    #[test]
    fn receive_batch_matches_per_packet_decisions_and_counters() {
        let t = SimTime::from_secs(1);
        // A batch mixing runs of the same flow, a second flow and an ARP.
        let arp = builder::arp_request(
            client_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(10, 0, 0, 1),
        );
        let other_flow = builder::tcp_syn(
            client_mac(),
            server_mac(),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(198, 51, 100, 1),
            41_000,
            443,
        );
        let packets = vec![
            upstream(),
            upstream(),
            upstream(),
            other_flow.clone(),
            arp.clone(),
            upstream(),
            upstream(),
        ];

        let mut per_packet = SoftwareSwitch::new();
        let expected: Vec<SwitchDecision> = packets
            .iter()
            .map(|p| per_packet.receive(p, per_packet.client_port(), t).unwrap())
            .collect();

        let mut batched = SoftwareSwitch::new();
        let runs = batched
            .receive_batch(
                &PacketBatch::from(packets.clone()),
                batched.client_port(),
                t,
            )
            .unwrap();
        assert_eq!(runs.len(), 4, "three runs of flows plus the ARP");
        assert_eq!(runs.iter().map(|r| r.count).sum::<usize>(), packets.len());
        let expanded: Vec<SwitchDecision> = runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.decision.clone(), r.count))
            .collect();
        assert_eq!(expanded, expected);

        // Counters and cache statistics are identical to per-packet receive.
        assert_eq!(batched.flow_cache_stats(), per_packet.flow_cache_stats());
        assert_eq!(
            batched.port(batched.client_port()).unwrap().counters,
            per_packet.port(per_packet.client_port()).unwrap().counters,
        );
        assert_eq!(batched.mac_table_len(), per_packet.mac_table_len());
    }

    #[test]
    fn receive_batch_on_an_unknown_port_drops_the_whole_batch() {
        let mut sw = SoftwareSwitch::new();
        let batch = PacketBatch::from(vec![upstream(), upstream()]);
        let err = sw
            .receive_batch(&batch, PortId(99), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.category(), "not_found");
        assert_eq!(sw.dropped_frames(), 2);
        // An empty batch on a valid port is a no-op.
        assert!(sw
            .receive_batch(&PacketBatch::new(), sw.client_port(), SimTime::ZERO)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn record_tx_batch_aggregates_counters() {
        let mut sw = SoftwareSwitch::new();
        sw.record_tx_batch(sw.uplink_port(), 5, 500);
        let counters = sw.port(sw.uplink_port()).unwrap().counters;
        assert_eq!(counters.tx_packets, 5);
        assert_eq!(counters.tx_bytes, 500);
    }

    #[test]
    fn flush_empties_the_cache() {
        let mut sw = SoftwareSwitch::new();
        sw.receive(&upstream(), sw.client_port(), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(sw.flow_cache_len(), 1);
        sw.flush_flow_cache();
        assert_eq!(sw.flow_cache_len(), 0);
    }
}
